// Continuous telemetry: a background sampler that makes a long-running
// miner observable *while it runs*.
//
// A TelemetrySampler thread wakes on a fixed interval and snapshots the
// MetricsRegistry together with process stats read from /proc (RSS, CPU,
// io bytes, open fds) and the registered RunBudget's headroom. Each sample
// lands in a bounded in-memory ring and is emitted to up to three
// artifacts:
//
//   - a JSONL time-series (one schema-versioned sample per line, appended
//     and flushed live, so a watcher can tail it),
//   - an OpenMetrics 1.0 text exposition file (atomically rewritten each
//     tick; point a Prometheus node_exporter textfile collector at it),
//   - a heartbeat/status file (atomically rewritten each tick) carrying
//     the current phase, progress counters, budget headroom, and
//     segment-cache state — enough for `procmine top` or any external
//     watcher to distinguish "slow" from "hung".
//
// The sampler is pull-only: instrumentation sites keep writing the same
// lock-free sharded counters they always did, and pay nothing extra. With
// no sampler running the only new cost anywhere is the phase marker — one
// relaxed pointer store at coarse phase boundaries. Mined models are
// byte-identical with telemetry on or off.
//
// Status and exposition files are rewritten via WriteFileAtomic, so a
// watcher never reads a torn file even if the miner is SIGKILLed mid-tick.
// The JSONL stream is append-only; only its last line can be partial after
// a crash.

#ifndef PROCMINE_OBS_TELEMETRY_H_
#define PROCMINE_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/budget.h"
#include "util/result.h"

namespace procmine::obs {

/// One point-in-time reading of /proc/self. Fields read from files that do
/// not exist on this system (io accounting, fd dir) are -1, never garbage.
struct ProcSelfStats {
  int64_t rss_bytes = 0;       ///< resident set (statm), 0 when unavailable
  int64_t vm_bytes = 0;        ///< virtual size (statm)
  double cpu_user_seconds = 0.0;  ///< utime (stat), this process only
  double cpu_system_seconds = 0.0;
  int64_t threads = 0;         ///< num_threads (stat)
  int64_t major_faults = 0;    ///< majflt (stat)
  int64_t io_read_bytes = -1;  ///< storage-layer reads (/proc/self/io)
  int64_t io_write_bytes = -1;
  int64_t open_fds = -1;       ///< entries in /proc/self/fd

  double CpuSeconds() const { return cpu_user_seconds + cpu_system_seconds; }
};

/// Reads /proc/self/{statm,stat,io,fd}. Cheap (a few small file reads);
/// never fails — missing files leave their fields at the defaults above.
ProcSelfStats ReadProcSelfStats();

// ---------------------------------------------------------------------------
// Phase surface: one process-wide "what is the run doing right now" marker.
// Set at coarse driver-level boundaries (ingest, collect, reduce, ...), not
// in per-shard hot loops; each transition is a single relaxed store.

/// Sets the current phase. `name` must be a string literal (stored by
/// pointer, never freed); nullptr resets to the idle marker.
void SetCurrentPhase(const char* name);

/// The most recently set phase name ("idle" before any SetCurrentPhase).
const char* CurrentPhaseName();

/// RAII phase marker: sets `name` on construction and restores the previous
/// phase on destruction, so nested phases unwind naturally.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* prev_;
};

// ---------------------------------------------------------------------------

/// Schema version stamped into every JSONL sample and status file.
inline constexpr int kTelemetrySchemaVersion = 1;

/// One sample: everything the sampler read on one tick.
struct TelemetrySample {
  int64_t seq = 0;       ///< 0-based tick number
  int64_t t_ns = 0;      ///< StopWatch::NowNanosSinceProcessStart()
  int64_t unix_ms = 0;   ///< wall clock, for heartbeat freshness
  std::string phase;
  ProcSelfStats process;
  MetricsSnapshot metrics;

  /// Budget picture (valid when has_budget; limits <0 mean unlimited).
  bool has_budget = false;
  RunBudget::Limits budget_limits;
  int64_t budget_elapsed_ms = 0;
  std::string budget_exhausted;  ///< "" while healthy
};

struct TelemetryOptions {
  int64_t interval_ms = 250;
  std::string jsonl_path;        ///< "" = no JSONL time-series
  std::string openmetrics_path;  ///< "" = no OpenMetrics exposition
  std::string status_path;       ///< "" = no heartbeat/status file
  size_t ring_capacity = 1024;   ///< in-memory samples kept
  std::string command;           ///< CLI command name, for the status file
  std::string source;            ///< input path label, for the status file
};

// Serialization (exposed so tests can pin the formats).

/// "segment.cache_hits" -> "procmine_segment_cache_hits": prefixed and
/// sanitized to OpenMetrics charset [a-zA-Z0-9_:].
std::string OpenMetricsName(std::string_view name);

/// Full OpenMetrics 1.0 text exposition for one sample: every registry
/// metric (counters as `_total`, histograms with le-bucketed series) plus
/// the standard process_* metrics and a heartbeat gauge. Ends in "# EOF".
std::string OpenMetricsText(const TelemetrySample& sample);

/// The heartbeat/status JSON document (schema-versioned single object).
std::string StatusJson(const TelemetrySample& sample,
                       const TelemetryOptions& options);

/// One JSONL line (no trailing newline). `prev` supplies the previous
/// sample's counter totals for the "deltas" section; shard-dependent
/// metrics (see ShardDependentMetric) are excluded from deltas because
/// their splits are not comparable across thread layouts.
std::string TelemetrySampleJsonLine(const TelemetrySample& sample,
                                    const MetricsSnapshot* prev);

/// Background sampler. Start() spawns the thread; Stop() (or destruction)
/// takes one final sample so short runs still produce artifacts.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryOptions options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Opens the JSONL stream (truncating) and spawns the sampling thread.
  /// The first sample is taken immediately.
  Status Start();

  /// Signals the thread, joins it, emits one final sample, and closes the
  /// stream. Idempotent. Returns the first emission error, if any.
  Status Stop();

  /// Registers the budget whose headroom the sampler reports; nullptr
  /// unregisters. The pointer must stay valid until unregistered (see
  /// TelemetryBudgetScope). Thread-safe.
  void SetBudget(const RunBudget* budget);

  /// Takes and emits one sample synchronously (also used by the thread).
  void SampleOnce();

  /// Copy of the bounded in-memory ring, oldest first.
  std::vector<TelemetrySample> RingSnapshot() const;

  int64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }
  const TelemetryOptions& options() const { return options_; }

 private:
  void Loop();
  TelemetrySample Collect();
  void Emit(const TelemetrySample& sample, const MetricsSnapshot* prev);

  TelemetryOptions options_;
  std::FILE* jsonl_ = nullptr;

  mutable std::mutex mu_;  // ring_, prev_, budget_, first_error_
  std::deque<TelemetrySample> ring_;
  MetricsSnapshot prev_;
  bool have_prev_ = false;
  const RunBudget* budget_ = nullptr;
  // Last-known budget picture, captured when a budget unregisters, so the
  // final post-command sample still reports what exhausted.
  bool sticky_budget_valid_ = false;
  RunBudget::Limits sticky_limits_;
  int64_t sticky_elapsed_ms_ = 0;
  std::string sticky_exhausted_;
  Status first_error_;  // OK until the first emission failure

  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::thread thread_;
  std::atomic<int64_t> seq_{0};
  std::atomic<int64_t> samples_taken_{0};
};

// ---------------------------------------------------------------------------
// Process-wide sampler used by the CLI: one optional instance, so
// instrumented commands can register their RunBudget without plumbing the
// sampler through every call chain.

/// Starts the global sampler (fails if one is already running or the JSONL
/// path cannot be opened). Does NOT flip SetMetricsEnabled — callers decide.
Status StartGlobalTelemetry(const TelemetryOptions& options);

/// The running global sampler, or nullptr.
TelemetrySampler* GlobalTelemetry();

/// Stops and destroys the global sampler; OK when none is running.
Status StopGlobalTelemetry();

/// RAII: registers `budget` with the global sampler (if any) for this
/// scope, and always unregisters on exit so the sampler never holds a
/// dangling budget pointer.
class TelemetryBudgetScope {
 public:
  explicit TelemetryBudgetScope(const RunBudget* budget) {
    if (TelemetrySampler* t = GlobalTelemetry()) t->SetBudget(budget);
  }
  ~TelemetryBudgetScope() {
    if (TelemetrySampler* t = GlobalTelemetry()) t->SetBudget(nullptr);
  }

  TelemetryBudgetScope(const TelemetryBudgetScope&) = delete;
  TelemetryBudgetScope& operator=(const TelemetryBudgetScope&) = delete;
};

}  // namespace procmine::obs

#define PROCMINE_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define PROCMINE_TELEMETRY_CONCAT(a, b) PROCMINE_TELEMETRY_CONCAT_IMPL(a, b)

/// Marks the rest of the enclosing scope as phase `name` (string literal).
#define PROCMINE_PHASE(name)                                              \
  ::procmine::obs::ScopedPhase PROCMINE_TELEMETRY_CONCAT(procmine_phase_, \
                                                         __LINE__)(name)

#endif  // PROCMINE_OBS_TELEMETRY_H_
