#include "obs/metrics.h"

#include <algorithm>

#include "util/strings.h"

namespace procmine::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t Counter::Total() const {
  int64_t total = 0;
  for (const internal::ShardCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::ShardCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::string name, std::vector<int64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  PROCMINE_CHECK(!bounds_.empty());
  PROCMINE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(int64_t value) {
  if (!MetricsEnabled()) return;
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[internal::ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < counts.size(); ++b) {
      counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

int64_t Histogram::TotalCount() const {
  std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

double MetricsSnapshot::HistogramValue::Percentile(double q) const {
  if (total_count <= 0 || bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total_count);
  int64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(seen) + static_cast<double>(counts[b]) >= rank) {
      if (b >= bounds.size()) break;  // overflow bucket: clamp below
      const double lo = b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
      const double hi = static_cast<double>(bounds[b]);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[b];
  }
  return static_cast<double>(bounds.back());
}

int64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendJsonEscaped(&out, counters[i].name);
    out += StrFormat("\": %lld", static_cast<long long>(counters[i].value));
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendJsonEscaped(&out, gauges[i].name);
    out += StrFormat("\": %lld", static_cast<long long>(gauges[i].value));
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendJsonEscaped(&out, h.name);
    out += "\": {\"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      out += StrFormat("%s%lld", b ? ", " : "",
                       static_cast<long long>(h.bounds[b]));
    }
    out += "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      out += StrFormat("%s%lld", b ? ", " : "",
                       static_cast<long long>(h.counts[b]));
    }
    out += StrFormat(
        "], \"count\": %lld, \"sum\": %lld, \"p50\": %.6g, \"p95\": %.6g, "
        "\"p99\": %.6g}",
        static_cast<long long>(h.total_count), static_cast<long long>(h.sum),
        h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  size_t width = 0;
  for (const CounterValue& c : counters) width = std::max(width, c.name.size());
  for (const GaugeValue& g : gauges) width = std::max(width, g.name.size());
  for (const HistogramValue& h : histograms) {
    width = std::max(width, h.name.size());
  }
  std::string out;
  for (const CounterValue& c : counters) {
    out += StrFormat("%-*s %lld\n", static_cast<int>(width), c.name.c_str(),
                     static_cast<long long>(c.value));
  }
  for (const GaugeValue& g : gauges) {
    out += StrFormat("%-*s %lld\n", static_cast<int>(width), g.name.c_str(),
                     static_cast<long long>(g.value));
  }
  for (const HistogramValue& h : histograms) {
    out += StrFormat(
        "%-*s count=%lld sum=%lld p50=%.6g p95=%.6g p99=%.6g\n",
        static_cast<int>(width), h.name.c_str(),
        static_cast<long long>(h.total_count), static_cast<long long>(h.sum),
        h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(
                          std::string(name), std::move(bounds))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  // std::map iterates in name order, so the snapshot is deterministic.
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Total()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->bounds(),
                                   histogram->BucketCounts(),
                                   histogram->TotalCount(), histogram->Sum()});
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace procmine::obs
