#include "obs/report.h"

#include <algorithm>
#include <memory>
#include <set>

#include "graph/dot.h"
#include "mine/noise.h"
#include "mine/relations.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace procmine::obs {

namespace {

const char* AlgorithmName(MinerAlgorithm algorithm) {
  switch (algorithm) {
    case MinerAlgorithm::kSpecialDag:
      return "special_dag";
    case MinerAlgorithm::kGeneralDag:
      return "general_dag";
    case MinerAlgorithm::kCyclic:
      return "cyclic";
    case MinerAlgorithm::kAuto:
      break;
  }
  return "auto";
}

// >= 5 distinct thresholds: 1, 2, the mined T, the Section 6 optimum, and
// quarter points of m, padded with small consecutive values if the log is
// tiny. Sorted ascending.
std::vector<int64_t> DefaultSweep(int64_t m, int64_t mined_threshold,
                                  double epsilon) {
  std::set<int64_t> picks;
  auto add = [&picks, m](int64_t t) {
    picks.insert(std::clamp<int64_t>(t, 1, std::max<int64_t>(m, 1)));
  };
  add(1);
  add(2);
  add(mined_threshold);
  if (epsilon > 0.0 && m > 0) {
    add(OptimalNoiseThreshold(m, std::min(epsilon, 0.499)));
  }
  add(m / 4);
  add(m / 2);
  add(3 * m / 4);
  // Pad to >= 5 distinct thresholds. Unclamped: a log with m < 5 executions
  // cannot yield 5 values inside [1, m], and the bounds are total above m
  // (spurious -> 0, lost -> 1), so oversized thresholds are well-defined.
  for (int64_t t = 3; static_cast<int64_t>(picks.size()) < 5; ++t) {
    picks.insert(t);
  }
  return std::vector<int64_t>(picks.begin(), picks.end());
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

const char* BoolName(bool b) { return b ? "true" : "false"; }

}  // namespace

Result<RunReport> BuildRunReport(const EventLog& log,
                                 const RunReportOptions& options) {
  PROCMINE_SPAN("report.build");
  if (log.num_executions() == 0) {
    return Status::InvalidArgument("log is empty");
  }

  RunReport report;
  MinerAlgorithm algorithm = options.algorithm == MinerAlgorithm::kAuto
                                 ? ProcessMiner::SelectAlgorithm(log)
                                 : options.algorithm;
  report.algorithm = AlgorithmName(algorithm);
  report.noise_threshold = options.noise_threshold;
  report.num_executions = static_cast<int64_t>(log.num_executions());
  report.num_activities = static_cast<int64_t>(log.num_activities());

  if (options.ingestion != nullptr) {
    report.has_ingestion = true;
    report.ingestion = *options.ingestion;
    // The raw rejected bytes belong in the quarantine sidecar, not the
    // report; keep the JSON bounded by carrying only the aggregates.
    report.ingestion.quarantined.clear();
  }

  ProvenanceRecorder recorder;
  MinerOptions miner_options;
  miner_options.algorithm = algorithm;
  miner_options.noise_threshold = options.noise_threshold;
  miner_options.num_threads = options.num_threads;
  miner_options.chunk_size = options.chunk_size;
  miner_options.provenance = &recorder;
  miner_options.budget = options.budget;
  miner_options.degradation = &report.degradation;
  PROCMINE_ASSIGN_OR_RETURN(report.model,
                            ProcessMiner(miner_options).Mine(log));

  report.edges = recorder.Edges();
  report.activity_names = recorder.names();
  report.occurrence_labeled = recorder.has_base_mapping();
  if (report.occurrence_labeled) {
    report.base_endpoints.reserve(report.edges.size());
    for (const EdgeProvenance& p : report.edges) {
      report.base_endpoints.emplace_back(recorder.base_activity(p.edge.from),
                                         recorder.base_activity(p.edge.to));
    }
  }

  // Exhausted budgets skip the audit phases rather than failing the report:
  // the partial model is still emitted, and the degradation record names the
  // first phase that was cut.
  if (!BudgetCut(options.budget, &report.degradation, "report.conformance",
                 "conformance audit skipped; per-execution verdicts are "
                 "absent")) {
    PROCMINE_SPAN("report.conformance");
    ConformanceChecker checker(&report.model);
    // Compute the log relations once here — sharded across the same worker
    // budget the miner used — and hand them to the checker instead of letting
    // CheckLog rebuild them on one thread. The verdicts are identical either
    // way; Relations::Compute is thread-count invariant.
    const int audit_threads = ResolveThreadCount(options.num_threads);
    std::unique_ptr<ThreadPool> audit_pool;
    if (audit_threads > 1 &&
        log.num_executions() >= ThreadPool::kSmallInputInlineThreshold) {
      audit_pool = std::make_unique<ThreadPool>(audit_threads);
    }
    Relations relations =
        Relations::Compute(log, audit_pool.get(), options.chunk_size);
    report.conformance =
        checker.CheckLog(log, /*record_verdicts=*/true, &relations);
  }

  if (!BudgetCut(options.budget, &report.degradation, "report.sensitivity",
                 "noise sensitivity sweep skipped; the table is empty")) {
    PROCMINE_SPAN("report.sensitivity");
    report.epsilon = EstimateNoiseRate(log);
    const int64_t m = report.num_executions;
    std::vector<int64_t> sweep =
        options.sweep.empty()
            ? DefaultSweep(m, options.noise_threshold, report.epsilon)
            : options.sweep;
    std::sort(sweep.begin(), sweep.end());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
    report.sensitivity.reserve(sweep.size());
    for (int64_t t : sweep) {
      NoiseSensitivityRow row;
      row.threshold = t;
      row.edges_kept = recorder.CountWithSupportAtLeast(t);
      row.edges_dropped = recorder.num_candidates() - row.edges_kept;
      row.spurious_bound =
          report.epsilon > 0.0 ? SpuriousEdgeBound(m, t, report.epsilon) : 0.0;
      row.lost_bound = FalseDependencyBound(m, t);
      row.unstable =
          std::max(row.spurious_bound, row.lost_bound) > options.unstable_cutoff;
      report.sensitivity.push_back(row);
    }
  }

  // Shard-dependent metrics (kShardDependentMetrics) are dropped from the
  // embedded snapshot so report bytes stay identical for every --threads
  // value; timing histograms are excluded by the same predicate.
  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  for (const auto& c : snapshot.counters) {
    if (!ShardDependentMetric(c.name)) report.metrics.counters.push_back(c);
  }
  report.metrics.gauges = snapshot.gauges;
  for (const auto& h : snapshot.histograms) {
    if (!ShardDependentMetric(h.name)) report.metrics.histograms.push_back(h);
  }
  return report;
}

std::string RunReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"algorithm\": ";
  AppendQuoted(&out, algorithm);
  out += StrFormat(",\n  \"noise_threshold\": %lld",
                   static_cast<long long>(noise_threshold));
  out += StrFormat(",\n  \"num_executions\": %lld",
                   static_cast<long long>(num_executions));
  out += StrFormat(",\n  \"num_activities\": %lld",
                   static_cast<long long>(num_activities));
  out += StrFormat(",\n  \"occurrence_labeled\": %s",
                   BoolName(occurrence_labeled));
  out += StrFormat(",\n  \"epsilon\": %.6g,\n", epsilon);

  out += StrFormat("  \"degraded\": %s,\n", BoolName(degradation.degraded));
  if (degradation.degraded) {
    out += "  \"degradation\": {\"resource\": ";
    AppendQuoted(&out, std::string(BudgetResourceName(degradation.resource)));
    out += ", \"cut_phase\": ";
    AppendQuoted(&out, degradation.cut_phase);
    out += ", \"dropped\": ";
    AppendQuoted(&out, degradation.dropped);
    out += "},\n";
  } else {
    out += "  \"degradation\": null,\n";
  }

  if (has_ingestion) {
    out += "  \"ingestion\": {\n    \"policy\": ";
    AppendQuoted(&out, std::string(RecoveryPolicyName(ingestion.policy)));
    out += StrFormat(
        ",\n    \"lines_total\": %lld,\n    \"events_parsed\": %lld,\n"
        "    \"lines_skipped\": %lld,\n    \"executions_dropped\": %lld,\n"
        "    \"salvage_attempted\": %s,\n    \"salvaged_executions\": %lld,\n"
        "    \"salvage_dropped_bytes\": %lld,\n    \"error_classes\": {",
        static_cast<long long>(ingestion.lines_total),
        static_cast<long long>(ingestion.events_parsed),
        static_cast<long long>(ingestion.lines_skipped),
        static_cast<long long>(ingestion.executions_dropped),
        BoolName(ingestion.salvage_attempted),
        static_cast<long long>(ingestion.salvaged_executions),
        static_cast<long long>(ingestion.salvage_dropped_bytes));
    for (size_t i = 0; i < ingestion.error_classes.size(); ++i) {
      if (i != 0) out += ", ";
      AppendQuoted(&out, ingestion.error_classes[i].first);
      out += StrFormat(": %lld",
                       static_cast<long long>(ingestion.error_classes[i].second));
    }
    out += "}\n  },\n";
  } else {
    out += "  \"ingestion\": null,\n";
  }

  out += "  \"model\": {\n    \"activities\": [";
  const std::vector<std::string>& model_names = model.names();
  for (size_t i = 0; i < model_names.size(); ++i) {
    if (i != 0) out += ", ";
    AppendQuoted(&out, model_names[i]);
  }
  out += "],\n    \"edges\": [";
  std::vector<Edge> model_edges = model.graph().Edges();
  for (size_t i = 0; i < model_edges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"from\": ";
    AppendQuoted(&out, model.name(model_edges[i].from));
    out += ", \"to\": ";
    AppendQuoted(&out, model.name(model_edges[i].to));
    out += "}";
  }
  out += model_edges.empty() ? "]\n  },\n" : "\n    ]\n  },\n";

  auto provenance_name = [this](NodeId v) -> const std::string& {
    static const std::string kUnknown = "?";
    if (static_cast<size_t>(v) < activity_names.size()) {
      return activity_names[static_cast<size_t>(v)];
    }
    return kUnknown;
  };
  out += "  \"edges\": [";
  for (size_t i = 0; i < edges.size(); ++i) {
    const EdgeProvenance& p = edges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"from\": ";
    AppendQuoted(&out, provenance_name(p.edge.from));
    out += ", \"to\": ";
    AppendQuoted(&out, provenance_name(p.edge.to));
    out += StrFormat(
        ", \"support\": %lld, \"first_witness\": %lld, "
        "\"last_witness\": %lld, \"status\": \"%s\"",
        static_cast<long long>(p.support),
        static_cast<long long>(p.first_witness),
        static_cast<long long>(p.last_witness),
        std::string(ToString(p.reason)).c_str());
    if (occurrence_labeled && i < base_endpoints.size()) {
      const auto& [base_from, base_to] = base_endpoints[i];
      out += ", \"base_from\": ";
      AppendQuoted(&out, model.name(base_from));
      out += ", \"base_to\": ";
      AppendQuoted(&out, model.name(base_to));
    }
    out += "}";
  }
  out += edges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"conformance\": {\n";
  out += StrFormat("    \"conformal\": %s,\n",
                   BoolName(conformance.conformal()));
  out += StrFormat("    \"dependency_complete\": %s,\n",
                   BoolName(conformance.dependency_complete));
  out += StrFormat("    \"irredundant\": %s,\n",
                   BoolName(conformance.irredundant));
  out += StrFormat("    \"execution_complete\": %s,\n",
                   BoolName(conformance.execution_complete));
  out += "    \"verdicts\": [";
  for (size_t i = 0; i < conformance.verdicts.size(); ++i) {
    const ExecutionVerdict& v = conformance.verdicts[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"execution\": ";
    AppendQuoted(&out, v.execution);
    out += StrFormat(", \"consistent\": %s", BoolName(v.consistent));
    if (!v.consistent) {
      out += ", \"violation\": ";
      AppendQuoted(&out, v.violation);
      out += StrFormat(", \"first_violation_event\": %lld",
                       static_cast<long long>(v.first_violation_event));
    }
    out += "}";
  }
  out += conformance.verdicts.empty() ? "]\n  },\n" : "\n    ]\n  },\n";

  out += "  \"sensitivity\": [";
  for (size_t i = 0; i < sensitivity.size(); ++i) {
    const NoiseSensitivityRow& row = sensitivity[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"threshold\": %lld, \"edges_kept\": %lld, "
        "\"edges_dropped\": %lld, \"spurious_bound\": %.6g, "
        "\"lost_bound\": %.6g, \"unstable\": %s}",
        static_cast<long long>(row.threshold),
        static_cast<long long>(row.edges_kept),
        static_cast<long long>(row.edges_dropped), row.spurious_bound,
        row.lost_bound, BoolName(row.unstable));
  }
  out += sensitivity.empty() ? "],\n" : "\n  ],\n";

  out += "  \"metrics\": ";
  std::string metrics_json = metrics.ToJson();
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  out += metrics_json;
  out += "\n}\n";
  return out;
}

std::string RunReport::ToAnnotatedDot() const {
  DirectedGraph g(static_cast<NodeId>(activity_names.size()));
  DotOptions dot;
  dot.graph_name = "run_report";
  for (const EdgeProvenance& p : edges) {
    if (p.kept()) {
      g.AddEdge(p.edge.from, p.edge.to);
      dot.edge_attributes.emplace_back(
          p.edge, StrFormat("label=\"%lld\"",
                            static_cast<long long>(p.support)));
    } else {
      dot.extra_edges.emplace_back(
          p.edge,
          StrFormat("style=dashed, color=gray, fontcolor=gray, "
                    "label=\"%s (%lld)\"",
                    std::string(ToString(p.reason)).c_str(),
                    static_cast<long long>(p.support)));
    }
  }
  return ToDot(g, activity_names, dot);
}

std::string RunReport::SensitivityTableText() const {
  std::string out = StrFormat("%6s %10s %13s %15s %12s %s\n", "T", "kept",
                              "dropped", "spurious_bound", "lost_bound",
                              "stability");
  for (const NoiseSensitivityRow& row : sensitivity) {
    out += StrFormat("%6lld %10lld %13lld %15.3g %12.3g %s%s\n",
                     static_cast<long long>(row.threshold),
                     static_cast<long long>(row.edges_kept),
                     static_cast<long long>(row.edges_dropped),
                     row.spurious_bound, row.lost_bound,
                     row.unstable ? "UNSTABLE" : "ok",
                     row.threshold == noise_threshold ? "  <- mined T" : "");
  }
  return out;
}

std::string RunReport::SummaryText() const {
  int64_t kept = 0;
  int64_t below = 0;
  int64_t two_cycle = 0;
  int64_t intra_scc = 0;
  int64_t reduced = 0;
  for (const EdgeProvenance& p : edges) {
    switch (p.reason) {
      case DropReason::kKept:
        ++kept;
        break;
      case DropReason::kBelowThreshold:
        ++below;
        break;
      case DropReason::kTwoCycle:
        ++two_cycle;
        break;
      case DropReason::kIntraScc:
        ++intra_scc;
        break;
      case DropReason::kTransitiveReduction:
        ++reduced;
        break;
    }
  }
  int64_t inconsistent = 0;
  for (const ExecutionVerdict& v : conformance.verdicts) {
    if (!v.consistent) ++inconsistent;
  }
  std::string out = StrFormat(
      "algorithm            %s\n"
      "executions           %lld\n"
      "activities           %lld\n"
      "noise threshold (T)  %lld\n"
      "estimated epsilon    %.6g\n"
      "candidate edges      %lld\n"
      "  kept               %lld\n"
      "  below_threshold    %lld\n"
      "  two_cycle          %lld\n"
      "  intra_scc          %lld\n"
      "  transitive_reduct. %lld\n"
      "conformal            %s\n"
      "inconsistent execs   %lld / %lld\n",
      algorithm.c_str(), static_cast<long long>(num_executions),
      static_cast<long long>(num_activities),
      static_cast<long long>(noise_threshold), epsilon,
      static_cast<long long>(edges.size()), static_cast<long long>(kept),
      static_cast<long long>(below), static_cast<long long>(two_cycle),
      static_cast<long long>(intra_scc), static_cast<long long>(reduced),
      BoolName(conformance.conformal()),
      static_cast<long long>(inconsistent),
      static_cast<long long>(conformance.verdicts.size()));
  int64_t unstable_lo = -1;
  int64_t unstable_hi = -1;
  for (const NoiseSensitivityRow& row : sensitivity) {
    if (!row.unstable) continue;
    if (unstable_lo < 0) unstable_lo = row.threshold;
    unstable_hi = row.threshold;
  }
  if (unstable_lo >= 0) {
    out += StrFormat("unstable T band      [%lld, %lld]\n",
                     static_cast<long long>(unstable_lo),
                     static_cast<long long>(unstable_hi));
  } else {
    out += "unstable T band      none\n";
  }
  if (degradation.degraded) {
    out += StrFormat("DEGRADED             %s budget exhausted at %s\n",
                     std::string(BudgetResourceName(degradation.resource))
                         .c_str(),
                     degradation.cut_phase.c_str());
    out += StrFormat("  dropped            %s\n", degradation.dropped.c_str());
  }
  if (has_ingestion && ingestion.AnyLoss()) {
    out += ingestion.SummaryText();
  }
  return out;
}

}  // namespace procmine::obs
