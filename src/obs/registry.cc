#include "obs/registry.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "util/atomic_file.h"
#include "util/crc32c.h"
#include "util/json.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace procmine::obs {

namespace {

constexpr int64_t kSnapshotSchema = 1;
constexpr const char kNoParent[] = "none";

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

std::string HashHex(std::string_view bytes) {
  return StrFormat("%08x", Crc32c(bytes));
}

// Creates `dir` and any missing parents (mkdir -p semantics).
Status MakeDirs(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty registry directory");
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    partial.assign(dir, 0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(StrFormat("mkdir %s: %s", partial.c_str(),
                                       std::strerror(errno)));
    }
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError(
        StrFormat("registry path %s is not a directory", dir.c_str()));
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  PROCMINE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  return std::string(file.data());
}

Result<std::string> ParseName(const json::Value& strings, size_t index) {
  const json::Value& v = strings.items()[index];
  if (!v.is_string()) {
    return Status::InvalidArgument("snapshot: non-string activity name");
  }
  return v.AsString();
}

}  // namespace

std::string ModelSnapshot::ToJson() const {
  std::string out;
  out.reserve(512 + edges.size() * 64);
  out += "{\n";
  out += StrFormat("  \"snapshot_schema\": %lld,\n",
                   static_cast<long long>(kSnapshotSchema));
  out += StrFormat("  \"version\": %lld,\n", static_cast<long long>(version));
  out += "  \"parent_hash\": ";
  AppendQuoted(&out, parent_hash.empty() ? std::string(kNoParent)
                                         : parent_hash);
  out += ",\n";
  out += "  \"window\": {\n";
  out += StrFormat("    \"index\": %lld,\n",
                   static_cast<long long>(window.index));
  out += StrFormat("    \"first_execution\": %lld,\n",
                   static_cast<long long>(window.first_execution));
  out += StrFormat("    \"last_execution\": %lld,\n",
                   static_cast<long long>(window.last_execution));
  out += StrFormat("    \"num_executions\": %lld,\n",
                   static_cast<long long>(window.num_executions));
  out += "    \"first_name\": ";
  AppendQuoted(&out, window.first_name);
  out += ",\n    \"last_name\": ";
  AppendQuoted(&out, window.last_name);
  out += "\n  },\n";
  out += StrFormat("  \"noise_threshold\": %lld,\n",
                   static_cast<long long>(noise_threshold));
  out += StrFormat("  \"epsilon\": %.6g,\n", epsilon);
  out += "  \"activities\": [";
  for (size_t i = 0; i < activities.size(); ++i) {
    if (i > 0) out += ", ";
    AppendQuoted(&out, activities[i]);
  }
  out += "],\n";
  out += "  \"edges\": [";
  for (size_t i = 0; i < edges.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"from\": ";
    AppendQuoted(&out, edges[i].from);
    out += ", \"to\": ";
    AppendQuoted(&out, edges[i].to);
    out += StrFormat(", \"support\": %lld}",
                     static_cast<long long>(edges[i].support));
  }
  out += edges.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Result<ModelSnapshot> ModelSnapshot::FromJson(std::string_view text) {
  PROCMINE_ASSIGN_OR_RETURN(json::Value root, json::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("snapshot: document is not an object");
  }
  PROCMINE_ASSIGN_OR_RETURN(int64_t schema, root.GetInt("snapshot_schema"));
  if (schema != kSnapshotSchema) {
    return Status::InvalidArgument(
        StrFormat("snapshot: unsupported snapshot_schema %lld",
                  static_cast<long long>(schema)));
  }
  ModelSnapshot snap;
  PROCMINE_ASSIGN_OR_RETURN(snap.version, root.GetInt("version"));
  PROCMINE_ASSIGN_OR_RETURN(snap.parent_hash, root.GetString("parent_hash"));
  const json::Value* window = root.Find("window");
  if (window == nullptr || !window->is_object()) {
    return Status::InvalidArgument("snapshot: missing window object");
  }
  PROCMINE_ASSIGN_OR_RETURN(snap.window.index, window->GetInt("index"));
  PROCMINE_ASSIGN_OR_RETURN(snap.window.first_execution,
                            window->GetInt("first_execution"));
  PROCMINE_ASSIGN_OR_RETURN(snap.window.last_execution,
                            window->GetInt("last_execution"));
  PROCMINE_ASSIGN_OR_RETURN(snap.window.num_executions,
                            window->GetInt("num_executions"));
  PROCMINE_ASSIGN_OR_RETURN(snap.window.first_name,
                            window->GetString("first_name"));
  PROCMINE_ASSIGN_OR_RETURN(snap.window.last_name,
                            window->GetString("last_name"));
  PROCMINE_ASSIGN_OR_RETURN(snap.noise_threshold,
                            root.GetInt("noise_threshold"));
  PROCMINE_ASSIGN_OR_RETURN(snap.epsilon, root.GetDouble("epsilon"));

  const json::Value* activities = root.Find("activities");
  if (activities == nullptr || !activities->is_array()) {
    return Status::InvalidArgument("snapshot: missing activities array");
  }
  snap.activities.reserve(activities->items().size());
  for (size_t i = 0; i < activities->items().size(); ++i) {
    PROCMINE_ASSIGN_OR_RETURN(std::string name, ParseName(*activities, i));
    snap.activities.push_back(std::move(name));
  }
  if (!std::is_sorted(snap.activities.begin(), snap.activities.end())) {
    return Status::InvalidArgument("snapshot: activities not sorted");
  }

  const json::Value* edges = root.Find("edges");
  if (edges == nullptr || !edges->is_array()) {
    return Status::InvalidArgument("snapshot: missing edges array");
  }
  snap.edges.reserve(edges->items().size());
  for (const json::Value& item : edges->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("snapshot: non-object edge");
    }
    SnapshotEdge edge;
    PROCMINE_ASSIGN_OR_RETURN(edge.from, item.GetString("from"));
    PROCMINE_ASSIGN_OR_RETURN(edge.to, item.GetString("to"));
    PROCMINE_ASSIGN_OR_RETURN(edge.support, item.GetInt("support"));
    if (!std::binary_search(snap.activities.begin(), snap.activities.end(),
                            edge.from) ||
        !std::binary_search(snap.activities.begin(), snap.activities.end(),
                            edge.to)) {
      return Status::InvalidArgument(StrFormat(
          "snapshot: edge %s -> %s references an unlisted activity",
          edge.from.c_str(), edge.to.c_str()));
    }
    snap.edges.push_back(std::move(edge));
  }
  auto edge_less = [](const SnapshotEdge& a, const SnapshotEdge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  };
  if (!std::is_sorted(snap.edges.begin(), snap.edges.end(), edge_less)) {
    return Status::InvalidArgument("snapshot: edges not sorted");
  }
  return snap;
}

ProcessGraph ModelSnapshot::ToProcessGraph() const {
  // Vertex ids follow the (sorted) activities list so isolated activities
  // survive the round-trip; FromNamedEdges would drop them.
  std::unordered_map<std::string, NodeId> ids;
  ids.reserve(activities.size());
  for (size_t i = 0; i < activities.size(); ++i) {
    ids.emplace(activities[i], static_cast<NodeId>(i));
  }
  DirectedGraph graph(static_cast<NodeId>(activities.size()));
  for (const SnapshotEdge& edge : edges) {
    graph.AddEdge(ids.at(edge.from), ids.at(edge.to));
  }
  return ProcessGraph(std::move(graph), activities);
}

Result<ModelRegistry> ModelRegistry::Open(const std::string& dir) {
  PROCMINE_RETURN_NOT_OK(MakeDirs(dir));
  ModelRegistry registry(dir);
  // Walk the contiguous chain v1, v2, ... and stop at the first version
  // that is missing, unparseable, or breaks the parent-hash chain. A crash
  // can only lose the newest (partially published) version, never corrupt
  // the prefix, so this recovers exactly the durable history.
  std::string parent_hash = kNoParent;
  for (int64_t v = 1;; ++v) {
    auto bytes = ReadWholeFile(registry.VersionPath(v));
    if (!bytes.ok()) break;
    auto snap = ModelSnapshot::FromJson(*bytes);
    if (!snap.ok()) break;
    if (snap->version != v || snap->parent_hash != parent_hash) break;
    parent_hash = HashHex(*bytes);
    registry.latest_version_ = v;
    registry.latest_hash_ = parent_hash;
  }
  return registry;
}

Result<int64_t> ModelRegistry::Append(ModelSnapshot snapshot) {
  snapshot.version = latest_version_ + 1;
  snapshot.parent_hash = latest_hash_;
  const std::string bytes = snapshot.ToJson();
  const std::string path = VersionPath(snapshot.version);
  PROCMINE_RETURN_NOT_OK(WriteFileAtomic(path, bytes));
  // The snapshot is durable from here on; CURRENT is an advisory pointer,
  // so in-memory state advances before (and regardless of) its update.
  latest_version_ = snapshot.version;
  latest_hash_ = HashHex(bytes);
  PROCMINE_RETURN_NOT_OK(WriteFileAtomic(
      dir_ + "/CURRENT",
      StrFormat("%lld %s\n", static_cast<long long>(latest_version_),
                latest_hash_.c_str())));
  return latest_version_;
}

Result<ModelSnapshot> ModelRegistry::Load(int64_t version) const {
  if (version < 1 || version > latest_version_) {
    return Status::NotFound(
        StrFormat("registry %s has no version %lld (latest %lld)",
                  dir_.c_str(), static_cast<long long>(version),
                  static_cast<long long>(latest_version_)));
  }
  PROCMINE_ASSIGN_OR_RETURN(std::string bytes,
                            ReadWholeFile(VersionPath(version)));
  PROCMINE_ASSIGN_OR_RETURN(ModelSnapshot snap,
                            ModelSnapshot::FromJson(bytes));
  if (snap.version != version) {
    return Status::DataLoss(
        StrFormat("registry %s: file %s claims version %lld", dir_.c_str(),
                  VersionPath(version).c_str(),
                  static_cast<long long>(snap.version)));
  }
  return snap;
}

Result<ModelSnapshot> ModelRegistry::LoadLatest() const {
  if (empty()) {
    return Status::NotFound(
        StrFormat("registry %s is empty", dir_.c_str()));
  }
  return Load(latest_version_);
}

Result<ModelDiff> ModelRegistry::DiffVersions(int64_t from_version,
                                              int64_t to_version) const {
  PROCMINE_ASSIGN_OR_RETURN(ModelSnapshot from, Load(from_version));
  PROCMINE_ASSIGN_OR_RETURN(ModelSnapshot to, Load(to_version));
  return DiffModels(from.ToProcessGraph(), to.ToProcessGraph());
}

std::vector<int64_t> ModelRegistry::Versions() const {
  std::vector<int64_t> versions;
  versions.reserve(static_cast<size_t>(latest_version_));
  for (int64_t v = 1; v <= latest_version_; ++v) versions.push_back(v);
  return versions;
}

std::string ModelRegistry::VersionPath(int64_t version) const {
  return StrFormat("%s/v%06lld.json", dir_.c_str(),
                   static_cast<long long>(version));
}

}  // namespace procmine::obs
