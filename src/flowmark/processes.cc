#include "flowmark/processes.h"

#include "util/logging.h"

namespace procmine {

namespace {

/// Builds a definition from a named edge list, gives every activity one
/// uniform output parameter in [0, 100), and checks the vertex/edge counts
/// against the Table 3 row being simulated.
ProcessDefinition MakeDefinition(
    const std::vector<std::pair<std::string, std::string>>& edges,
    int64_t expect_vertices, int64_t expect_edges) {
  ProcessGraph graph = ProcessGraph::FromNamedEdges(edges);
  PROCMINE_CHECK_EQ(static_cast<int64_t>(graph.num_activities()),
                    expect_vertices);
  PROCMINE_CHECK_EQ(graph.graph().num_edges(), expect_edges);
  ProcessDefinition def(std::move(graph));
  for (NodeId v = 0; v < def.num_activities(); ++v) {
    def.SetOutputSpec(v, OutputSpec::Uniform(1, 0, 99));
  }
  PROCMINE_CHECK(def.Validate().ok());
  return def;
}

/// Shorthand for a one-parameter threshold condition o[0] op value.
Condition C(CmpOp op, int64_t value) {
  return Condition::Compare(0, op, value);
}

}  // namespace

ProcessDefinition MakeUploadAndNotify() {
  ProcessDefinition def = MakeDefinition(
      {
          {"Start", "Validate"},
          {"Validate", "Upload"},
          {"Upload", "Notify_Admin"},
          {"Upload", "Notify_User"},
          {"Notify_Admin", "Log_Result"},
          {"Notify_User", "Log_Result"},
          {"Log_Result", "End"},
      },
      /*expect_vertices=*/7, /*expect_edges=*/7);
  // Large uploads page the admin, small ones mail the user; exactly one
  // branch fires, so Log_Result always runs (OR join).
  const ProcessGraph& g = def.process_graph();
  NodeId upload = g.FindActivity("Upload").ValueOrDie();
  def.SetCondition(upload, g.FindActivity("Notify_Admin").ValueOrDie(),
                   C(CmpOp::kGe, 50));
  def.SetCondition(upload, g.FindActivity("Notify_User").ValueOrDie(),
                   C(CmpOp::kLt, 50));
  return def;
}

ProcessDefinition MakeStressSleep() {
  ProcessDefinition def = MakeDefinition(
      {
          {"Start", "Prep_CPU"},
          {"Start", "Prep_IO"},
          {"Start", "Prep_Mem"},
          {"Prep_CPU", "Work_1"},
          {"Prep_CPU", "Work_2"},
          {"Prep_IO", "Work_2"},
          {"Prep_IO", "Work_3"},
          {"Prep_Mem", "Work_3"},
          {"Prep_Mem", "Work_4"},
          {"Work_1", "Check_1"},
          {"Work_1", "Check_2"},
          {"Work_2", "Check_1"},
          {"Work_2", "Check_2"},
          {"Work_3", "Check_2"},
          {"Work_3", "Check_3"},
          {"Work_4", "Check_2"},
          {"Work_4", "Check_3"},
          {"Check_1", "Report_1"},
          {"Check_2", "Report_1"},
          {"Check_2", "Report_2"},
          {"Check_3", "Report_2"},
          {"Report_1", "End"},
          {"Report_2", "End"},
      },
      /*expect_vertices=*/14, /*expect_edges=*/23);
  // All edges unconditional: every execution exercises all 14 activities in
  // varying parallel orders — the stress shape.
  return def;
}

ProcessDefinition MakePendBlock() {
  ProcessDefinition def = MakeDefinition(
      {
          {"Start", "Check"},
          {"Check", "Pend"},
          {"Check", "Block"},
          {"Check", "Resolve"},
          {"Pend", "Resolve"},
          {"Block", "Resolve"},
          {"Resolve", "End"},
      },
      /*expect_vertices=*/6, /*expect_edges=*/7);
  const ProcessGraph& g = def.process_graph();
  NodeId check = g.FindActivity("Check").ValueOrDie();
  // Low scores pend, high scores block, the middle band resolves directly.
  def.SetCondition(check, g.FindActivity("Pend").ValueOrDie(),
                   C(CmpOp::kLt, 33));
  def.SetCondition(check, g.FindActivity("Block").ValueOrDie(),
                   C(CmpOp::kGe, 66));
  def.SetCondition(check, g.FindActivity("Resolve").ValueOrDie(),
                   Condition::And(C(CmpOp::kGe, 33), C(CmpOp::kLt, 66)));
  return def;
}

ProcessDefinition MakeLocalSwap() {
  ProcessDefinition def = MakeDefinition(
      {
          {"Start", "Init"},
          {"Init", "Lock"},
          {"Lock", "Read_Src"},
          {"Read_Src", "Read_Dst"},
          {"Read_Dst", "Swap"},
          {"Swap", "Verify"},
          {"Verify", "Write_Src"},
          {"Write_Src", "Write_Dst"},
          {"Write_Dst", "Unlock"},
          {"Unlock", "Log"},
          {"Log", "End"},
      },
      /*expect_vertices=*/12, /*expect_edges=*/11);
  return def;  // strictly sequential: all conditions true
}

ProcessDefinition MakeUwiPilot() {
  ProcessDefinition def = MakeDefinition(
      {
          {"Start", "Register"},
          {"Register", "Review"},
          {"Review", "Approve"},
          {"Review", "Reject"},
          {"Approve", "Finalize"},
          {"Reject", "Finalize"},
          {"Finalize", "End"},
      },
      /*expect_vertices=*/7, /*expect_edges=*/7);
  const ProcessGraph& g = def.process_graph();
  NodeId review = g.FindActivity("Review").ValueOrDie();
  def.SetCondition(review, g.FindActivity("Approve").ValueOrDie(),
                   C(CmpOp::kGe, 40));
  def.SetCondition(review, g.FindActivity("Reject").ValueOrDie(),
                   C(CmpOp::kLt, 40));
  return def;
}

std::vector<FlowmarkProcess> AllFlowmarkProcesses() {
  std::vector<FlowmarkProcess> all;
  all.push_back({"Upload_and_Notify", MakeUploadAndNotify(), 7, 7, 134, 792,
                 11.5});
  all.push_back({"StressSleep", MakeStressSleep(), 14, 23, 160, 3685, 111.7});
  all.push_back({"Pend_Block", MakePendBlock(), 6, 7, 121, 505, 6.3});
  all.push_back({"Local_Swap", MakeLocalSwap(), 12, 11, 24, 463, 5.7});
  all.push_back({"UWI_Pilot", MakeUwiPilot(), 7, 7, 134, 779, 11.8});
  return all;
}

}  // namespace procmine
