// Simulated Flowmark processes — the Section 8.2 evaluation substrate.
//
// The paper mined logs from a real IBM Flowmark installation (five processes,
// Table 3). Those logs are proprietary, so this module defines five process
// definitions with exactly the vertex and edge counts Table 3 reports
// (7v/7e, 14v/23e, 6v/7e, 12v/11e, 7v/7e); the engine executes them for the
// paper's execution counts and the miner must recover each underlying graph
// ("In every case, our algorithm was able to recover the underlying
// process"). Figures 8-12 are regenerated as DOT files from the mined
// graphs.

#ifndef PROCMINE_FLOWMARK_PROCESSES_H_
#define PROCMINE_FLOWMARK_PROCESSES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workflow/process_definition.h"

namespace procmine {

/// One Table 3 row: the simulated definition plus the paper's reported
/// workload characteristics.
struct FlowmarkProcess {
  std::string name;
  ProcessDefinition definition;
  int64_t paper_vertices;      ///< Table 3 "Number of vertices"
  int64_t paper_edges;         ///< Table 3 "Number of edges"
  int64_t paper_executions;    ///< Table 3 "Number of executions"
  int64_t paper_log_kb;        ///< Table 3 "Size of the log" (KB)
  double paper_seconds;        ///< Table 3 "Execution time" (s)
};

/// Upload_and_Notify: 7 activities, 7 edges — an upload followed by one of
/// two notifications (size-dependent), merged into a result log.
ProcessDefinition MakeUploadAndNotify();

/// StressSleep: 14 activities, 23 edges — a three-way parallel fan-out of
/// workers, checkers and reporters (the stress-test shape of the name).
ProcessDefinition MakeStressSleep();

/// Pend_Block: 6 activities, 7 edges — a check that pends, blocks, or skips
/// straight to resolution.
ProcessDefinition MakePendBlock();

/// Local_Swap: 12 activities, 11 edges — a strictly sequential swap
/// transaction (chain).
ProcessDefinition MakeLocalSwap();

/// UWI_Pilot: 7 activities, 7 edges — register/review with an
/// approve-or-reject branch.
ProcessDefinition MakeUwiPilot();

/// All five processes with their Table 3 characteristics, in the paper's
/// row order.
std::vector<FlowmarkProcess> AllFlowmarkProcesses();

}  // namespace procmine

#endif  // PROCMINE_FLOWMARK_PROCESSES_H_
