#include "classify/decision_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/logging.h"

namespace procmine {

namespace {

double Gini(int64_t positive, int64_t total) {
  if (total == 0) return 0.0;
  double p = static_cast<double>(positive) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

struct BestSplit {
  bool found = false;
  int feature = -1;
  int64_t threshold = 0;
  double gain = 0.0;
};

/// Finds the impurity-minimizing (feature, threshold) over the rows in
/// `rows`. O(F * R log R).
BestSplit FindBestSplit(const Dataset& data, const std::vector<size_t>& rows,
                        double min_gain) {
  int64_t total = static_cast<int64_t>(rows.size());
  int64_t total_pos = 0;
  for (size_t r : rows) total_pos += data.label(r) ? 1 : 0;
  double parent_impurity = Gini(total_pos, total);

  BestSplit best;
  std::vector<std::pair<int64_t, bool>> column(rows.size());
  for (int f = 0; f < data.num_features(); ++f) {
    for (size_t i = 0; i < rows.size(); ++i) {
      column[i] = {data.features(rows[i])[static_cast<size_t>(f)],
                   data.label(rows[i])};
    }
    std::sort(column.begin(), column.end());
    // Sweep: candidate thresholds between distinct consecutive values.
    int64_t left_n = 0, left_pos = 0;
    for (size_t i = 0; i + 1 < column.size(); ++i) {
      ++left_n;
      left_pos += column[i].second ? 1 : 0;
      if (column[i].first == column[i + 1].first) continue;
      int64_t right_n = total - left_n;
      int64_t right_pos = total_pos - left_pos;
      double weighted =
          (static_cast<double>(left_n) * Gini(left_pos, left_n) +
           static_cast<double>(right_n) * Gini(right_pos, right_n)) /
          static_cast<double>(total);
      double gain = parent_impurity - weighted;
      if (gain > best.gain + 1e-15 && gain >= min_gain) {
        best.found = true;
        best.feature = f;
        best.threshold = column[i].first;  // goes left if value <= threshold
        best.gain = gain;
      }
    }
  }
  return best;
}

}  // namespace

DecisionTree DecisionTree::Train(const Dataset& data,
                                 const DecisionTreeOptions& options) {
  DecisionTree tree;

  // Recursive builder over row-index subsets; returns node index.
  std::function<int32_t(const std::vector<size_t>&, int)> build =
      [&](const std::vector<size_t>& rows, int depth) -> int32_t {
    Node node;
    node.num_samples = static_cast<int64_t>(rows.size());
    for (size_t r : rows) node.num_positive += data.label(r) ? 1 : 0;
    node.prediction = node.num_positive * 2 >= node.num_samples &&
                      node.num_samples > 0;

    bool pure = node.num_positive == 0 || node.num_positive == node.num_samples;
    if (!pure && depth < options.max_depth &&
        node.num_samples >= options.min_samples_split) {
      BestSplit split = FindBestSplit(data, rows, options.min_gain);
      if (split.found) {
        std::vector<size_t> left_rows, right_rows;
        for (size_t r : rows) {
          if (data.features(r)[static_cast<size_t>(split.feature)] <=
              split.threshold) {
            left_rows.push_back(r);
          } else {
            right_rows.push_back(r);
          }
        }
        PROCMINE_CHECK(!left_rows.empty() && !right_rows.empty());
        if (static_cast<int64_t>(left_rows.size()) <
                options.min_samples_leaf ||
            static_cast<int64_t>(right_rows.size()) <
                options.min_samples_leaf) {
          node.is_leaf = true;
          tree.nodes_.push_back(node);
          return static_cast<int32_t>(tree.nodes_.size() - 1);
        }
        node.is_leaf = false;
        node.feature = split.feature;
        node.threshold = split.threshold;
        int32_t self = static_cast<int32_t>(tree.nodes_.size());
        tree.nodes_.push_back(node);
        int32_t left = build(left_rows, depth + 1);
        int32_t right = build(right_rows, depth + 1);
        tree.nodes_[static_cast<size_t>(self)].left = left;
        tree.nodes_[static_cast<size_t>(self)].right = right;
        return self;
      }
    }
    node.is_leaf = true;
    tree.nodes_.push_back(node);
    return static_cast<int32_t>(tree.nodes_.size() - 1);
  };

  std::vector<size_t> all(data.size());
  for (size_t i = 0; i < data.size(); ++i) all[i] = i;
  build(all, 0);
  return tree;
}

bool DecisionTree::Predict(const std::vector<int64_t>& features) const {
  int32_t idx = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.is_leaf) return node.prediction;
    int64_t value = static_cast<size_t>(node.feature) < features.size()
                        ? features[static_cast<size_t>(node.feature)]
                        : 0;
    idx = value <= node.threshold ? node.left : node.right;
  }
}

std::string DecisionTree::ToString() const {
  std::ostringstream out;
  std::function<void(int32_t, int)> print = [&](int32_t idx, int indent) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    if (node.is_leaf) {
      out << pad << "predict " << (node.prediction ? "true" : "false")
          << "  [" << node.num_positive << "/" << node.num_samples << "]\n";
      return;
    }
    out << pad << "if o[" << node.feature << "] <= " << node.threshold
        << ":\n";
    print(node.left, indent + 1);
    out << pad << "else:\n";
    print(node.right, indent + 1);
  };
  if (!nodes_.empty()) print(0, 0);
  return out.str();
}

int DecisionTree::depth() const {
  std::function<int(int32_t)> walk = [&](int32_t idx) -> int {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.is_leaf) return 1;
    return 1 + std::max(walk(node.left), walk(node.right));
  };
  return nodes_.empty() ? 0 : walk(0);
}

int64_t DecisionTree::num_leaves() const {
  int64_t n = 0;
  for (const Node& node : nodes_) n += node.is_leaf ? 1 : 0;
  return n;
}

DecisionTree PruneReducedError(const DecisionTree& tree,
                               const Dataset& validation) {
  if (tree.nodes_.empty()) return tree;

  // Route every validation row and tally per-node (reached, positive).
  const size_t n = tree.nodes_.size();
  std::vector<int64_t> reached(n, 0), positive(n, 0);
  for (size_t r = 0; r < validation.size(); ++r) {
    const std::vector<int64_t>& features = validation.features(r);
    bool label = validation.label(r);
    int32_t idx = tree.root();
    for (;;) {
      ++reached[static_cast<size_t>(idx)];
      positive[static_cast<size_t>(idx)] += label ? 1 : 0;
      const DecisionTree::Node& node = tree.nodes_[static_cast<size_t>(idx)];
      if (node.is_leaf) break;
      int64_t value = static_cast<size_t>(node.feature) < features.size()
                          ? features[static_cast<size_t>(node.feature)]
                          : 0;
      idx = value <= node.threshold ? node.left : node.right;
    }
  }

  // Bottom-up: decide for each node whether its subtree survives; returns
  // the subtree's validation error count (after pruning decisions below).
  std::vector<bool> collapse(n, false);
  std::function<int64_t(int32_t)> resolve = [&](int32_t idx) -> int64_t {
    const DecisionTree::Node& node = tree.nodes_[static_cast<size_t>(idx)];
    int64_t here_reached = reached[static_cast<size_t>(idx)];
    int64_t here_positive = positive[static_cast<size_t>(idx)];
    // Error if this node were a leaf predicting its TRAINING majority.
    int64_t leaf_error =
        node.prediction ? here_reached - here_positive : here_positive;
    if (node.is_leaf) return leaf_error;
    int64_t subtree_error = resolve(node.left) + resolve(node.right);
    if (leaf_error <= subtree_error) {
      collapse[static_cast<size_t>(idx)] = true;
      return leaf_error;
    }
    return subtree_error;
  };
  resolve(tree.root());

  // Re-pack surviving nodes.
  DecisionTree pruned;
  std::function<int32_t(int32_t)> copy = [&](int32_t idx) -> int32_t {
    DecisionTree::Node node = tree.nodes_[static_cast<size_t>(idx)];
    if (collapse[static_cast<size_t>(idx)]) {
      node.is_leaf = true;
      node.left = node.right = -1;
      node.feature = -1;
    }
    int32_t self = static_cast<int32_t>(pruned.nodes_.size());
    pruned.nodes_.push_back(node);
    if (!node.is_leaf) {
      int32_t left = copy(tree.nodes_[static_cast<size_t>(idx)].left);
      int32_t right = copy(tree.nodes_[static_cast<size_t>(idx)].right);
      pruned.nodes_[static_cast<size_t>(self)].left = left;
      pruned.nodes_[static_cast<size_t>(self)].right = right;
    }
    return self;
  };
  copy(tree.root());
  return pruned;
}

}  // namespace procmine
