// Dataset: labeled integer feature vectors for the condition learner.
//
// Section 7 of the paper: "the training set for f_(u,v) is defined as
// follows. For each execution of the process that u and v appear, the point
// (o(u), 1) is inserted. For each execution of the process that u but not v
// appears, the point (o(u), 0) is inserted." Features are the int64 output
// parameters of activity u.

#ifndef PROCMINE_CLASSIFY_DATASET_H_
#define PROCMINE_CLASSIFY_DATASET_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace procmine {

/// Binary-labeled dataset over fixed-width int64 feature vectors.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(int num_features) : num_features_(num_features) {}

  int num_features() const { return num_features_; }
  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Appends an example. features.size() must equal num_features().
  void Add(std::vector<int64_t> features, bool label);

  const std::vector<int64_t>& features(size_t i) const {
    return features_[i];
  }
  bool label(size_t i) const { return labels_[i] != 0; }

  int64_t num_positive() const;
  int64_t num_negative() const {
    return static_cast<int64_t>(size()) - num_positive();
  }

  /// Randomly partitions into train (first) and test (second) sets; the test
  /// set receives ~test_fraction of the rows.
  std::pair<Dataset, Dataset> Split(double test_fraction, uint64_t seed) const;

 private:
  int num_features_ = 0;
  std::vector<std::vector<int64_t>> features_;
  std::vector<int8_t> labels_;
};

}  // namespace procmine

#endif  // PROCMINE_CLASSIFY_DATASET_H_
