// Classifier evaluation: accuracy, confusion counts, and k-fold cross
// validation over a Dataset.

#ifndef PROCMINE_CLASSIFY_EVALUATION_H_
#define PROCMINE_CLASSIFY_EVALUATION_H_

#include <cstdint>

#include "classify/dataset.h"
#include "classify/decision_tree.h"

namespace procmine {

struct Confusion {
  int64_t true_positive = 0;
  int64_t true_negative = 0;
  int64_t false_positive = 0;
  int64_t false_negative = 0;

  int64_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  double Accuracy() const {
    return total() == 0
               ? 1.0
               : static_cast<double>(true_positive + true_negative) /
                     static_cast<double>(total());
  }
  double Precision() const {
    int64_t p = true_positive + false_positive;
    return p == 0 ? 1.0
                  : static_cast<double>(true_positive) /
                        static_cast<double>(p);
  }
  double Recall() const {
    int64_t p = true_positive + false_negative;
    return p == 0 ? 1.0
                  : static_cast<double>(true_positive) /
                        static_cast<double>(p);
  }
};

/// Evaluates `tree` on every row of `data`.
Confusion Evaluate(const DecisionTree& tree, const Dataset& data);

/// Mean k-fold cross-validated accuracy of trees trained with `options`.
double CrossValidateAccuracy(const Dataset& data,
                             const DecisionTreeOptions& options, int folds,
                             uint64_t seed);

}  // namespace procmine

#endif  // PROCMINE_CLASSIFY_EVALUATION_H_
