// DecisionTree: a from-scratch CART-style binary decision tree over int64
// features — the [WK91] classifier substrate of Section 7. Splits are
// axis-aligned thresholds (feature <= t), chosen to minimize weighted Gini
// impurity; leaves predict the majority class.

#ifndef PROCMINE_CLASSIFY_DECISION_TREE_H_
#define PROCMINE_CLASSIFY_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "classify/dataset.h"

namespace procmine {

struct DecisionTreeOptions {
  int max_depth = 8;
  int64_t min_samples_split = 2;
  /// Both children of a split must keep at least this many samples.
  int64_t min_samples_leaf = 1;
  /// A split must reduce impurity by at least this much.
  double min_gain = 1e-9;
};

/// Trained binary decision tree.
class DecisionTree {
 public:
  /// One tree node; children indexed into the flat node array.
  struct Node {
    bool is_leaf = true;
    bool prediction = false;       ///< leaves
    int feature = -1;              ///< internal: split feature
    int64_t threshold = 0;         ///< internal: goes left if f <= threshold
    int32_t left = -1;
    int32_t right = -1;
    int64_t num_samples = 0;
    int64_t num_positive = 0;
  };

  /// Learns a tree from `data`. An empty dataset yields a single
  /// false-predicting leaf.
  static DecisionTree Train(const Dataset& data,
                            const DecisionTreeOptions& options = {});

  bool Predict(const std::vector<int64_t>& features) const;

  /// Indented if/else rendering for inspection.
  std::string ToString() const;

  const std::vector<Node>& nodes() const { return nodes_; }
  int32_t root() const { return 0; }
  int depth() const;
  int64_t num_leaves() const;

 private:
  friend DecisionTree PruneReducedError(const DecisionTree&, const Dataset&);
  std::vector<Node> nodes_;
};

/// Reduced-error pruning: bottom-up, every internal node whose subtree does
/// not beat a majority leaf on `validation` is collapsed. Returns the
/// pruned tree (node indices are re-packed); never increases validation
/// error, and typically simplifies the extracted rules substantially.
DecisionTree PruneReducedError(const DecisionTree& tree,
                               const Dataset& validation);

}  // namespace procmine

#endif  // PROCMINE_CLASSIFY_DECISION_TREE_H_
