#include "classify/rules.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace procmine {

std::string ConjunctiveRule::ToString() const {
  if (literals.empty()) return "true";
  std::ostringstream out;
  for (size_t i = 0; i < literals.size(); ++i) {
    if (i > 0) out << " and ";
    const RuleLiteral& lit = literals[i];
    out << "o[" << lit.feature << "] " << (lit.is_le ? "<=" : ">") << " "
        << lit.threshold;
  }
  return out.str();
}

namespace {

/// Collapses repeated bounds on one feature to the tightest upper (<=) and
/// lower (>) bound.
std::vector<RuleLiteral> Simplify(const std::vector<RuleLiteral>& path) {
  std::map<int, int64_t> upper;  // feature -> min of <= thresholds
  std::map<int, int64_t> lower;  // feature -> max of > thresholds
  for (const RuleLiteral& lit : path) {
    if (lit.is_le) {
      auto [it, inserted] = upper.emplace(lit.feature, lit.threshold);
      if (!inserted) it->second = std::min(it->second, lit.threshold);
    } else {
      auto [it, inserted] = lower.emplace(lit.feature, lit.threshold);
      if (!inserted) it->second = std::max(it->second, lit.threshold);
    }
  }
  std::vector<RuleLiteral> out;
  for (const auto& [feature, t] : lower) {
    out.push_back(RuleLiteral{feature, false, t});
  }
  for (const auto& [feature, t] : upper) {
    out.push_back(RuleLiteral{feature, true, t});
  }
  std::sort(out.begin(), out.end(), [](const RuleLiteral& a,
                                       const RuleLiteral& b) {
    if (a.feature != b.feature) return a.feature < b.feature;
    return a.is_le < b.is_le;
  });
  return out;
}

}  // namespace

std::vector<ConjunctiveRule> ExtractPositiveRules(const DecisionTree& tree) {
  std::vector<ConjunctiveRule> rules;
  std::vector<RuleLiteral> path;
  std::function<void(int32_t)> walk = [&](int32_t idx) {
    const DecisionTree::Node& node = tree.nodes()[static_cast<size_t>(idx)];
    if (node.is_leaf) {
      if (node.prediction) {
        ConjunctiveRule rule;
        rule.literals = Simplify(path);
        rule.support = node.num_samples;
        rule.positives = node.num_positive;
        rules.push_back(std::move(rule));
      }
      return;
    }
    path.push_back(RuleLiteral{node.feature, true, node.threshold});
    walk(node.left);
    path.back().is_le = false;
    walk(node.right);
    path.pop_back();
  };
  if (!tree.nodes().empty()) walk(tree.root());
  return rules;
}

std::string RuleSetToString(const std::vector<ConjunctiveRule>& rules) {
  if (rules.empty()) return "false";
  std::ostringstream out;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << " or ";
    if (rules.size() > 1 && !rules[i].literals.empty()) {
      out << "(" << rules[i].ToString() << ")";
    } else {
      out << rules[i].ToString();
    }
  }
  return out.str();
}

}  // namespace procmine
