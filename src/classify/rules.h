// Rule extraction: flattens a decision tree into disjunctive-normal-form
// rules — Section 7: "the use of a decision tree classifier will give a set
// of simple rules that classify when a given activity is taken or not."
// Each root-to-positive-leaf path becomes one conjunctive rule.

#ifndef PROCMINE_CLASSIFY_RULES_H_
#define PROCMINE_CLASSIFY_RULES_H_

#include <string>
#include <vector>

#include "classify/decision_tree.h"

namespace procmine {

/// One literal of a conjunctive rule: o[feature] <= threshold or
/// o[feature] > threshold.
struct RuleLiteral {
  int feature;
  bool is_le;  ///< true: <=, false: >
  int64_t threshold;
};

/// A conjunction of literals implying a positive prediction.
struct ConjunctiveRule {
  std::vector<RuleLiteral> literals;
  int64_t support = 0;       ///< training rows reaching the leaf
  int64_t positives = 0;     ///< positive training rows at the leaf

  std::string ToString() const;
};

/// Extracts the positive-leaf rules of `tree`, redundant literals merged
/// (multiple bounds on the same feature collapse to the tightest ones).
std::vector<ConjunctiveRule> ExtractPositiveRules(const DecisionTree& tree);

/// Renders the whole rule set as a DNF string, e.g.
/// "(o[0] > 5 and o[1] <= 2) or (o[0] <= 3)". An empty rule set renders as
/// "false"; a rule with no literals as "true".
std::string RuleSetToString(const std::vector<ConjunctiveRule>& rules);

}  // namespace procmine

#endif  // PROCMINE_CLASSIFY_RULES_H_
