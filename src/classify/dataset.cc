#include "classify/dataset.h"

#include "util/logging.h"

namespace procmine {

void Dataset::Add(std::vector<int64_t> features, bool label) {
  PROCMINE_CHECK_EQ(static_cast<int>(features.size()), num_features_);
  features_.push_back(std::move(features));
  labels_.push_back(label ? 1 : 0);
}

int64_t Dataset::num_positive() const {
  int64_t n = 0;
  for (int8_t l : labels_) n += l;
  return n;
}

std::pair<Dataset, Dataset> Dataset::Split(double test_fraction,
                                           uint64_t seed) const {
  Dataset train(num_features_);
  Dataset test(num_features_);
  Rng rng(seed);
  for (size_t i = 0; i < size(); ++i) {
    Dataset& target = rng.Bernoulli(test_fraction) ? test : train;
    target.Add(features_[i], labels_[i] != 0);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace procmine
