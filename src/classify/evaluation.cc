#include "classify/evaluation.h"

#include <vector>

#include "util/logging.h"

namespace procmine {

Confusion Evaluate(const DecisionTree& tree, const Dataset& data) {
  Confusion c;
  for (size_t i = 0; i < data.size(); ++i) {
    bool predicted = tree.Predict(data.features(i));
    bool actual = data.label(i);
    if (predicted && actual) ++c.true_positive;
    if (predicted && !actual) ++c.false_positive;
    if (!predicted && actual) ++c.false_negative;
    if (!predicted && !actual) ++c.true_negative;
  }
  return c;
}

double CrossValidateAccuracy(const Dataset& data,
                             const DecisionTreeOptions& options, int folds,
                             uint64_t seed) {
  PROCMINE_CHECK_GE(folds, 2);
  if (data.empty()) return 1.0;

  // Random fold assignment.
  Rng rng(seed);
  std::vector<int> fold_of(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    fold_of[i] = static_cast<int>(rng.Uniform(static_cast<uint64_t>(folds)));
  }

  int64_t correct = 0;
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train(data.num_features());
    Dataset test(data.num_features());
    for (size_t i = 0; i < data.size(); ++i) {
      (fold_of[i] == fold ? test : train).Add(data.features(i),
                                              data.label(i));
    }
    if (test.empty()) continue;
    DecisionTree tree = DecisionTree::Train(train, options);
    Confusion c = Evaluate(tree, test);
    correct += c.true_positive + c.true_negative;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace procmine
