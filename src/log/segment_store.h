// Spillable columnar execution store: EventLog-shaped data at out-of-core
// scale.
//
// A store is a directory of immutable segment files plus a MANIFEST.pms
// index. Each segment packs a run of executions into block-columnar form
// (per-block columns: names, instance counts, activity ids as varints,
// zigzag delta-encoded start times, zigzag durations, sparse outputs) with
// a fixed-size footer carrying the payload byte range and a crc32c. Blocks
// are independently decodable, so a torn tail costs the torn block, not the
// segment — salvage reuses the binary-log recovery taxonomy
// (truncated_body / checksum_mismatch / semantic_error).
//
// Writing: SegmentedLogWriter accumulates executions (remapping activity
// ids into the store's own dictionary), seals a segment when it reaches
// the target event count — or earlier, when the RunBudget memory probe
// crosses its high-water mark, which is what turns "out of memory" into
// "spill and keep going". Segment files and the manifest are written with
// WriteFileAtomic, so a crash leaves either a complete store or a clearly
// incomplete one (no manifest), never a torn artifact.
//
// Reading: SegmentStore maps the manifest, exposes the global activity
// dictionary, and decodes segments on demand into per-segment EventLogs
// (each carrying a copy of the full dictionary, so num_activities() and
// every activity id match the in-memory log). A bounded LRU cache keeps
// the hot segments resident; everything else lives on disk until touched.
// The miners iterate these windows and accumulate — models come out
// byte-identical to the in-memory path (see mine/ooc_miner.h).

#ifndef PROCMINE_LOG_SEGMENT_STORE_H_
#define PROCMINE_LOG_SEGMENT_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/event_log.h"
#include "log/recovery.h"
#include "util/budget.h"
#include "util/result.h"

namespace procmine {

/// The manifest file that marks a directory as a segment store.
inline constexpr std::string_view kSegmentManifestName = "MANIFEST.pms";

/// True when `path` is a directory containing a MANIFEST.pms.
bool IsSegmentStoreDir(const std::string& path);

/// Knobs shared by the writer and the reader.
struct SegmentStoreOptions {
  /// Raw events (two per activity instance) per segment before it is
  /// sealed and spilled to disk.
  int64_t target_segment_events = 1 << 20;

  /// Executions per column block inside a segment: the unit of independent
  /// decode, and therefore the unit of loss under salvage.
  int64_t block_executions = 1024;

  /// Reader: decoded bytes kept resident before LRU eviction kicks in.
  /// At least one segment always stays resident.
  int64_t max_resident_bytes = 256ll << 20;

  /// Writer: when set, an amortized RSS probe against this budget's
  /// high-water mark seals the open segment early (spill instead of
  /// degrade). Not owned.
  RunBudget* budget = nullptr;

  /// Fraction of max_memory_bytes at which the writer spills.
  double memory_high_water = 0.8;

  /// Reader: what to do with torn or corrupt segments. kStrict fails the
  /// load; kSkip/kQuarantine salvage the clean-block prefix and account
  /// the loss in an IngestionReport.
  RecoveryPolicy recovery = RecoveryPolicy::kStrict;
};

/// One sealed segment, as indexed by the manifest.
struct SegmentInfo {
  std::string file;        ///< filename relative to the store directory
  int64_t executions = 0;
  int64_t events = 0;      ///< raw events: 2 x activity instances
  int64_t disk_bytes = 0;
  uint32_t crc32c = 0;     ///< payload checksum, as stored in the footer
};

/// Resource picture of a store (segment count, on-disk vs resident bytes,
/// cache traffic, compression) for `procmine stats` and the post-mine
/// footprint line.
struct SegmentStoreFootprint {
  int64_t segments = 0;
  int64_t executions = 0;
  int64_t events = 0;
  int64_t disk_bytes = 0;
  int64_t resident_segments = 0;
  int64_t resident_bytes = 0;       ///< decoded bytes currently cached
  int64_t peak_resident_bytes = 0;
  int64_t max_resident_bytes = 0;   ///< the configured cache bound
  int64_t loads = 0;                ///< segment decodes (cache misses)
  int64_t cache_hits = 0;           ///< Segment() calls served resident
  int64_t evictions = 0;
  int64_t estimated_memory_bytes = 0;  ///< decoded size of the whole store

  /// Decoded-size : on-disk-size ratio (0 when empty).
  double CompressionRatio() const {
    return disk_bytes > 0
               ? static_cast<double>(estimated_memory_bytes) /
                     static_cast<double>(disk_bytes)
               : 0.0;
  }
};

namespace segment_internal {

/// Encodes `execs` (ids already in the store dictionary) into one segment's
/// bytes: magic, column blocks of `block_executions`, footer.
std::string EncodeSegment(const std::vector<Execution>& execs,
                          int64_t block_executions);

/// Strict decode: verifies the footer byte range and crc32c, then every
/// block. Activity ids must be < `num_activities`; instance intervals must
/// be well-formed. DataLoss on any violation.
Result<std::vector<Execution>> DecodeSegment(std::string_view bytes,
                                             ActivityId num_activities);

/// Best-effort decode for torn or corrupt segments: returns the
/// clean-block prefix and accounts the loss. The execution-level drop is
/// the caller's to compute (declared counts live in the manifest's
/// SegmentInfo, not in the segment bytes).
struct SalvageResult {
  std::vector<Execution> executions;
  bool clean = true;           ///< whole segment decoded and checksummed
  std::string error_class;     ///< first failure: truncated_body /
                               ///< checksum_mismatch / semantic_error
  int64_t dropped_bytes = 0;   ///< bytes at and after the first failure
};
SalvageResult SalvageSegment(std::string_view bytes,
                             ActivityId num_activities);

/// Footer-only integrity probe: verifies magic, the footer's payload byte
/// range, and the crc32c over the payload — without decoding any block.
/// `procmine stats --verify-crc` uses this to report damage cheaply.
Status VerifySegmentChecksum(std::string_view bytes);

}  // namespace segment_internal

/// Streams executions into a segment-store directory under a memory bound.
/// Single-threaded; move-only.
class SegmentedLogWriter {
 public:
  /// Creates (or reuses) `dir` and starts an empty store. Fails if a
  /// manifest is already present (stores are immutable once finished).
  static Result<SegmentedLogWriter> Create(const std::string& dir,
                                           const SegmentStoreOptions& options =
                                               SegmentStoreOptions());

  SegmentedLogWriter(SegmentedLogWriter&&) = default;
  SegmentedLogWriter& operator=(SegmentedLogWriter&&) = default;

  /// Appends one execution, interning its activity names from `dict` into
  /// the store's own dictionary. Seals the open segment when it reaches
  /// target_segment_events, or early when the budget's RSS probe crosses
  /// the high-water mark.
  Status Append(const Execution& exec, const ActivityDictionary& dict);

  /// Appends every execution of `log` in order.
  Status AppendLog(const EventLog& log);

  /// Seals and writes the open segment (no-op when it is empty).
  Status Seal();

  /// Seals the tail and writes the manifest. The store is readable only
  /// after Finish() returns OK. No appends afterwards.
  Status Finish();

  const ActivityDictionary& dictionary() const { return dict_; }
  int64_t executions() const { return total_executions_; }
  /// Raw events appended so far (2 x instances).
  int64_t events() const { return total_events_; }
  int64_t segments_sealed() const {
    return static_cast<int64_t>(segments_.size());
  }
  int64_t disk_bytes() const { return disk_bytes_; }
  /// Seals forced by the memory high-water probe (vs. the size target).
  int64_t spill_seals() const { return spill_seals_; }

 private:
  SegmentedLogWriter(std::string dir, const SegmentStoreOptions& options)
      : dir_(std::move(dir)), options_(options) {}

  std::string dir_;
  SegmentStoreOptions options_;
  ActivityDictionary dict_;
  // Remap cache key: the source dictionary's address. Addresses can be
  // reused after a source dies, so Append re-validates cached entries
  // against the names before trusting them.
  const ActivityDictionary* last_source_ = nullptr;
  std::vector<ActivityId> remap_;
  std::vector<Execution> pending_;
  int64_t pending_events_ = 0;
  std::vector<SegmentInfo> segments_;
  int64_t total_executions_ = 0;
  int64_t total_events_ = 0;
  int64_t disk_bytes_ = 0;
  int64_t spill_seals_ = 0;
  ProbeTicker probe_{1024};
  bool finished_ = false;
};

/// Read side: manifest + on-demand segment decode behind a bounded LRU
/// cache. Call Segment(i) from one thread at a time (the windowed miners
/// fan out *within* a decoded window, not across loads).
class SegmentStore {
 public:
  static Result<SegmentStore> Open(const std::string& dir,
                                   const SegmentStoreOptions& options =
                                       SegmentStoreOptions());

  SegmentStore(SegmentStore&&) = default;
  SegmentStore& operator=(SegmentStore&&) = default;

  const ActivityDictionary& dictionary() const { return dict_; }
  const std::vector<SegmentInfo>& segments() const { return segments_; }
  size_t num_segments() const { return segments_.size(); }
  int64_t num_executions() const { return total_executions_; }
  /// Raw events in the store (2 x instances).
  int64_t num_events() const { return total_events_; }
  int64_t disk_bytes() const { return disk_bytes_; }

  /// The decoded window for segment `index`: an EventLog whose dictionary
  /// is a copy of the full store dictionary (so ids and num_activities()
  /// match the in-memory log everywhere). Served from the resident cache
  /// when possible; a miss decodes the file and may evict least-recently
  /// used segments to stay under max_resident_bytes. The returned log
  /// stays valid even if evicted (shared ownership). Under kSkip /
  /// kQuarantine a torn segment yields its salvaged prefix and the loss is
  /// recorded in report().
  Result<std::shared_ptr<const EventLog>> Segment(size_t index);

  /// Decodes the whole store into one in-memory EventLog (for the small
  /// paths: convert, diff, report). Honors the recovery policy.
  Result<EventLog> Materialize();

  /// Salvage/recovery accounting accumulated by Segment() loads.
  const IngestionReport& report() const { return report_; }

  SegmentStoreFootprint Footprint() const;

 private:
  SegmentStore(std::string dir, const SegmentStoreOptions& options)
      : dir_(std::move(dir)), options_(options) {}

  struct Resident {
    std::shared_ptr<const EventLog> log;
    int64_t bytes = 0;
    std::list<size_t>::iterator lru_pos;
  };

  void EvictDownTo(int64_t budget_bytes);

  std::string dir_;
  SegmentStoreOptions options_;
  ActivityDictionary dict_;
  std::vector<SegmentInfo> segments_;
  int64_t total_executions_ = 0;
  int64_t total_events_ = 0;
  int64_t disk_bytes_ = 0;

  std::unordered_map<size_t, Resident> resident_;
  /// Per-segment flag: salvage/loss already counted into report_. A corrupt
  /// segment that is evicted and reloaded on a later mining pass must not
  /// be accounted twice.
  std::vector<bool> salvage_reported_;
  std::list<size_t> lru_;  ///< front = most recent
  int64_t resident_bytes_ = 0;
  int64_t peak_resident_bytes_ = 0;
  int64_t loads_ = 0;
  int64_t cache_hits_ = 0;
  int64_t evictions_ = 0;
  IngestionReport report_;
};

}  // namespace procmine

#endif  // PROCMINE_LOG_SEGMENT_STORE_H_
