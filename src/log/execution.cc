#include "log/execution.h"

#include "util/logging.h"

namespace procmine {

Execution Execution::FromSequence(std::string name,
                                  const std::vector<ActivityId>& sequence) {
  Execution exec(std::move(name));
  int64_t t = 0;
  for (ActivityId a : sequence) {
    exec.Append(ActivityInstance{a, t, t, {}});
    ++t;
  }
  return exec;
}

void Execution::Append(ActivityInstance instance) {
  PROCMINE_CHECK_GE(instance.activity, 0);
  PROCMINE_CHECK_LE(instance.start, instance.end);
  if (!instances_.empty()) {
    PROCMINE_CHECK_LE(instances_.back().start, instance.start);
  }
  instances_.push_back(std::move(instance));
}

std::vector<ActivityId> Execution::Sequence() const {
  std::vector<ActivityId> seq;
  seq.reserve(instances_.size());
  for (const auto& inst : instances_) seq.push_back(inst.activity);
  return seq;
}

bool Execution::Contains(ActivityId activity) const {
  for (const auto& inst : instances_) {
    if (inst.activity == activity) return true;
  }
  return false;
}

int64_t Execution::CountOf(ActivityId activity) const {
  int64_t n = 0;
  for (const auto& inst : instances_) n += (inst.activity == activity);
  return n;
}

}  // namespace procmine
