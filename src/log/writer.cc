#include "log/writer.h"

#include <sstream>

#include "util/atomic_file.h"
#include "util/failpoint.h"

namespace procmine {

namespace {
void AppendEvent(const Event& e, std::ostringstream* out) {
  (*out) << e.process_instance << ' ' << e.activity << ' '
         << (e.type == EventType::kStart ? "START" : "END") << ' '
         << e.timestamp;
  for (int64_t o : e.output) (*out) << ' ' << o;
  (*out) << '\n';
}
}  // namespace

std::string LogWriter::ToString(const EventLog& log) {
  std::ostringstream out;
  for (const Event& e : log.ToEvents()) AppendEvent(e, &out);
  return out.str();
}

std::string LogWriter::ToCsv(const EventLog& log) {
  std::ostringstream out;
  out << "process_instance,activity,type,timestamp,output\n";
  for (const Event& e : log.ToEvents()) {
    out << e.process_instance << ',' << e.activity << ','
        << (e.type == EventType::kStart ? "START" : "END") << ','
        << e.timestamp << ',';
    out << '"';
    for (size_t i = 0; i < e.output.size(); ++i) {
      if (i > 0) out << ';';
      out << e.output[i];
    }
    out << '"' << '\n';
  }
  return out.str();
}

namespace {
Status WriteStringToFile(const std::string& content, const std::string& path) {
  if (auto fp = PROCMINE_FAILPOINT("log_writer.write"); fp) {
    return fp.ToStatus("log_writer.write");
  }
  return WriteFileAtomic(path, content);
}
}  // namespace

Status LogWriter::WriteFile(const EventLog& log, const std::string& path) {
  return WriteStringToFile(ToString(log), path);
}

Status LogWriter::WriteCsvFile(const EventLog& log, const std::string& path) {
  return WriteStringToFile(ToCsv(log), path);
}

int64_t LogWriter::SerializedBytes(const EventLog& log) {
  return static_cast<int64_t>(ToString(log).size());
}

}  // namespace procmine
