// Log transformations: the preprocessing toolbox in front of the miner —
// projecting onto activity subsets, filtering executions, sampling,
// splitting and merging logs. All transforms preserve the activity
// dictionary (and therefore ActivityIds) unless stated otherwise.

#ifndef PROCMINE_LOG_TRANSFORM_H_
#define PROCMINE_LOG_TRANSFORM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "log/event_log.h"
#include "util/result.h"

namespace procmine {

/// Keeps only the executions for which `predicate` returns true.
EventLog FilterExecutions(
    const EventLog& log,
    const std::function<bool(const Execution&)>& predicate);

/// Keeps only instances of the named activities (projection); executions
/// that become empty are dropped. Unknown names fail with NotFound.
Result<EventLog> ProjectActivities(const EventLog& log,
                                   const std::vector<std::string>& keep);

/// Removes all instances of the named activities; executions that become
/// empty are dropped. Unknown names fail with NotFound.
Result<EventLog> DropActivities(const EventLog& log,
                                const std::vector<std::string>& drop);

/// Uniform random sample (without replacement) of `count` executions; if
/// `count` >= size, the whole log is returned. Deterministic per seed.
EventLog SampleExecutions(const EventLog& log, size_t count, uint64_t seed);

/// First `count` executions (head) — useful for convergence curves.
EventLog TakeExecutions(const EventLog& log, size_t count);

/// Splits into [0, pivot) and [pivot, size) execution ranges.
std::pair<EventLog, EventLog> SplitLog(const EventLog& log, size_t pivot);

/// Concatenates logs; dictionaries are unified by name. Execution names are
/// kept as-is (duplicates allowed).
EventLog MergeLogs(const std::vector<const EventLog*>& logs);

/// Deduplicates executions with identical activity sequences (keeping the
/// first of each), returning the deduplicated log and filling
/// `multiplicity` (if non-null) with the count per kept execution. Useful
/// because Algorithm 2's marking pass only depends on distinct sequences.
EventLog DeduplicateSequences(const EventLog& log,
                              std::vector<int64_t>* multiplicity = nullptr);

}  // namespace procmine

#endif  // PROCMINE_LOG_TRANSFORM_H_
