#include "log/activity_dictionary.h"

#include "util/logging.h"

namespace procmine {

ActivityId ActivityDictionary::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  ActivityId id = static_cast<ActivityId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

Result<ActivityId> ActivityDictionary::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown activity: '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& ActivityDictionary::Name(ActivityId id) const {
  PROCMINE_CHECK(id >= 0 && id < size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace procmine
