// Compact binary serialization of EventLogs.
//
// Large installations log millions of events (the paper's 10000-execution
// logs ran to 107 MB of Flowmark text); this format stores the same content
// at a fraction of the size: a dictionary header (each activity name once),
// varint-coded activity ids, delta-coded timestamps, and a CRC-32C footer so
// torn or corrupted files are detected instead of silently mis-mined.
//
// Layout (all integers varint unless noted):
//   "PMLG"                        magic (4 bytes)
//   version                       currently 1
//   activity_count, then per activity: length-prefixed name
//   execution_count, then per execution:
//     length-prefixed instance name
//     instance_count, then per instance:
//       activity_id
//       start (zigzag delta from previous instance's start)
//       duration (end - start, unsigned)
//       output_count, then zigzag output values
//   crc32c of everything after the magic   fixed32

#ifndef PROCMINE_LOG_BINARY_LOG_H_
#define PROCMINE_LOG_BINARY_LOG_H_

#include <string>

#include "log/event_log.h"
#include "log/recovery.h"
#include "util/result.h"

namespace procmine {

/// Serializes `log` to the binary format.
std::string EncodeBinaryLog(const EventLog& log);

/// Parses a binary log. Fails with DataLoss on corruption (bad magic,
/// truncation, checksum mismatch) and InvalidArgument on semantic errors.
Result<EventLog> DecodeBinaryLog(std::string_view data);

/// Recovery knobs for binary decoding.
struct BinaryDecodeOptions {
  /// Under kSkip / kQuarantine a file that fails the strict decode is
  /// salvaged: every complete execution before the corruption / truncation
  /// point is recovered, the remainder is dropped, and the outcome is
  /// recorded in `report` (salvage_attempted, salvaged_executions,
  /// salvage_dropped_bytes, plus an error class: truncated_body,
  /// checksum_mismatch, bad_dictionary, or semantic_error). A file whose
  /// magic or dictionary cannot be read has no salvageable prefix and fails
  /// with the strict error even in recovery mode.
  RecoveryPolicy recovery = RecoveryPolicy::kStrict;
  IngestionReport* report = nullptr;
};

/// DecodeBinaryLog with a recovery policy; kStrict is exactly the strict
/// overload above.
Result<EventLog> DecodeBinaryLog(std::string_view data,
                                 const BinaryDecodeOptions& options);

/// Writes the encoded log atomically (temp file + fsync + rename): a crash
/// mid-write never leaves a torn .bin at `path`.
Status WriteBinaryLogFile(const EventLog& log, const std::string& path);
Result<EventLog> ReadBinaryLogFile(const std::string& path);

/// ReadBinaryLogFile with a recovery policy (see BinaryDecodeOptions).
Result<EventLog> ReadBinaryLogFile(const std::string& path,
                                   const BinaryDecodeOptions& options);

}  // namespace procmine

#endif  // PROCMINE_LOG_BINARY_LOG_H_
