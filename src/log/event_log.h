// EventLog: a dictionary-encoded set of process executions — the input to
// every miner.

#ifndef PROCMINE_LOG_EVENT_LOG_H_
#define PROCMINE_LOG_EVENT_LOG_H_

#include <string>
#include <vector>

#include "log/activity_dictionary.h"
#include "log/event.h"
#include "log/execution.h"
#include "util/result.h"

namespace procmine {

/// A contiguous range of execution indices [begin, end) — the unit of work
/// the parallel mining paths hand to one thread-pool shard.
struct ExecutionSpan {
  size_t begin = 0;
  size_t end = 0;
};

/// A log of m executions of one process, with a shared activity dictionary.
class EventLog {
 public:
  EventLog() = default;

  /// Builds a log from compact test notation: one string per execution, one
  /// character per (instantaneous) activity. "ABCE" means A then B then C
  /// then E. This is the notation the paper's examples use.
  static EventLog FromCompactStrings(const std::vector<std::string>& execs);

  /// Builds a log from activity-name sequences (instantaneous activities).
  static EventLog FromSequences(
      const std::vector<std::vector<std::string>>& execs);

  /// Assembles a log from raw event records: groups by process instance,
  /// pairs START/END events (FIFO per activity name, so repeated activities
  /// in cyclic processes pair correctly), and orders instances by start
  /// time. Fails on unmatched or ill-ordered events.
  static Result<EventLog> FromEvents(const std::vector<Event>& events);

  ActivityDictionary& dictionary() { return dict_; }
  const ActivityDictionary& dictionary() const { return dict_; }

  void AddExecution(Execution exec) { executions_.push_back(std::move(exec)); }

  size_t num_executions() const { return executions_.size(); }
  const Execution& execution(size_t i) const { return executions_[i]; }
  const std::vector<Execution>& executions() const { return executions_; }

  /// Number of distinct activities seen.
  ActivityId num_activities() const { return dict_.size(); }

  /// Contiguous [begin, end) execution-index ranges covering the whole log,
  /// balanced by total instance count so parallel shards get comparable
  /// work even when execution lengths are skewed. Returns at most
  /// `num_shards` non-empty spans (fewer when the log is small); shard
  /// boundaries are deterministic for a given (log, num_shards).
  std::vector<ExecutionSpan> Shards(size_t num_shards) const;

  /// Total number of activity instances across all executions (each instance
  /// is two raw events).
  int64_t TotalInstances() const;

  /// Flattens back to raw event records (sorted by instance then time).
  std::vector<Event> ToEvents() const;

 private:
  ActivityDictionary dict_;
  std::vector<Execution> executions_;
};

}  // namespace procmine

#endif  // PROCMINE_LOG_EVENT_LOG_H_
