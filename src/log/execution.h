// Execution: one dictionary-encoded process execution, as a list of activity
// instances with (start, end) intervals.
//
// The paper's algorithms are defined on the relation "u terminates before v
// starts"; keeping intervals (instead of a flattened sequence) implements
// Section 2's observation that overlapping activities are necessarily
// independent and must not produce an edge. Instantaneous sequence logs are
// the degenerate case start == end.

#ifndef PROCMINE_LOG_EXECUTION_H_
#define PROCMINE_LOG_EXECUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "log/activity_dictionary.h"

namespace procmine {

/// One activity occurrence within an execution.
struct ActivityInstance {
  ActivityId activity = -1;
  int64_t start = 0;
  int64_t end = 0;
  std::vector<int64_t> output;  ///< output parameters recorded at END
};

/// One complete process execution: activity instances ordered by start time.
class Execution {
 public:
  Execution() = default;
  explicit Execution(std::string name) : name_(std::move(name)) {}

  /// Builds an instantaneous execution from an activity-id sequence:
  /// the i-th activity gets start == end == i.
  static Execution FromSequence(std::string name,
                                const std::vector<ActivityId>& sequence);

  const std::string& name() const { return name_; }

  /// Appends an instance. Instances must be appended in start-time order;
  /// enforced with a check.
  void Append(ActivityInstance instance);

  size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }

  const ActivityInstance& operator[](size_t i) const { return instances_[i]; }
  const std::vector<ActivityInstance>& instances() const { return instances_; }

  /// The activity ids in start order (repeats preserved).
  std::vector<ActivityId> Sequence() const;

  /// True iff instance i terminates strictly before instance j starts —
  /// the precedence relation of Algorithm 1/2 step 2.
  bool TerminatesBefore(size_t i, size_t j) const {
    return instances_[i].end < instances_[j].start;
  }

  /// True iff some instance of `activity` occurs.
  bool Contains(ActivityId activity) const;

  /// Number of instances of `activity`.
  int64_t CountOf(ActivityId activity) const;

 private:
  std::string name_;
  std::vector<ActivityInstance> instances_;
};

}  // namespace procmine

#endif  // PROCMINE_LOG_EXECUTION_H_
