#include "log/binary_log.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace procmine {

namespace {
constexpr char kMagic[] = "PMLG";
constexpr uint64_t kVersion = 1;

/// Decodes one execution record at *cursor with the strict semantic checks.
/// On failure *cursor is unspecified; salvage callers snapshot it first.
Result<Execution> DecodeOneExecution(std::string_view* cursor,
                                     uint64_t activity_count) {
  PROCMINE_ASSIGN_OR_RETURN(std::string_view name, GetLengthPrefixed(cursor));
  Execution exec{std::string(name)};
  PROCMINE_ASSIGN_OR_RETURN(uint64_t instance_count, GetVarint64(cursor));
  int64_t previous_start = 0;
  for (uint64_t i = 0; i < instance_count; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(uint64_t activity, GetVarint64(cursor));
    if (activity >= activity_count) {
      return Status::InvalidArgument(StrFormat(
          "activity id %llu out of dictionary range",
          static_cast<unsigned long long>(activity)));
    }
    PROCMINE_ASSIGN_OR_RETURN(int64_t start_delta, GetVarintSigned64(cursor));
    PROCMINE_ASSIGN_OR_RETURN(uint64_t duration, GetVarint64(cursor));
    ActivityInstance inst;
    inst.activity = static_cast<ActivityId>(activity);
    inst.start = previous_start + start_delta;
    previous_start = inst.start;
    inst.end = inst.start + static_cast<int64_t>(duration);
    if (inst.start > inst.end ||
        (!exec.empty() && exec[exec.size() - 1].start > inst.start)) {
      return Status::InvalidArgument("instances out of start order");
    }
    PROCMINE_ASSIGN_OR_RETURN(uint64_t output_count, GetVarint64(cursor));
    if (output_count > cursor->size()) {  // cheap sanity before allocating
      return Status::DataLoss("output count exceeds remaining input");
    }
    inst.output.reserve(output_count);
    for (uint64_t o = 0; o < output_count; ++o) {
      PROCMINE_ASSIGN_OR_RETURN(int64_t value, GetVarintSigned64(cursor));
      inst.output.push_back(value);
    }
    exec.Append(std::move(inst));
  }
  return exec;
}

/// Best-effort decode of a file that failed the strict pass: keeps every
/// complete execution before the first undecodable byte. Returns
/// `strict_error` unchanged when even the header/dictionary is unreadable —
/// there is no salvageable prefix then.
Result<EventLog> SalvageBinaryLog(std::string_view data,
                                  const Status& strict_error,
                                  const BinaryDecodeOptions& options) {
  if (data.size() < 4 || data.substr(0, 4) != std::string_view(kMagic, 4)) {
    return strict_error;
  }
  // Greedy re-decode over everything after the magic. For a truncated file
  // the CRC footer is gone (the strict pass misreads trailing data bytes as
  // one), so no footer is split off here; whatever the executions do not
  // consume counts as dropped.
  std::string_view cursor = data.substr(4);
  auto version = GetVarint64(&cursor);
  if (!version.ok() || *version != kVersion) return strict_error;
  EventLog log;
  auto activity_count = GetVarint64(&cursor);
  if (!activity_count.ok()) return strict_error;
  for (uint64_t i = 0; i < *activity_count; ++i) {
    auto name = GetLengthPrefixed(&cursor);
    if (!name.ok() ||
        static_cast<uint64_t>(log.dictionary().Intern(*name)) != i) {
      return strict_error;  // unusable dictionary: ids would be meaningless
    }
  }
  auto execution_count = GetVarint64(&cursor);
  if (!execution_count.ok()) return strict_error;
  Status stop;  // why the greedy loop gave up (OK = decoded them all)
  for (uint64_t e = 0; e < *execution_count; ++e) {
    std::string_view mark = cursor;
    auto exec = DecodeOneExecution(&cursor, *activity_count);
    if (!exec.ok()) {
      stop = exec.status();
      cursor = mark;  // drop from the start of the bad execution
      break;
    }
    log.AddExecution(std::move(*exec));
  }

  if (options.report != nullptr) {
    std::string_view error_class;
    if (!stop.ok()) {
      error_class = stop.code() == StatusCode::kDataLoss ? "truncated_body"
                                                         : "semantic_error";
    } else if (strict_error.message().find("checksum mismatch") !=
               std::string::npos) {
      error_class = "checksum_mismatch";
    } else {
      error_class = "semantic_error";
    }
    options.report->salvage_attempted = true;
    options.report->salvaged_executions =
        static_cast<int64_t>(log.num_executions());
    options.report->salvage_dropped_bytes =
        static_cast<int64_t>(cursor.size());
    options.report->AddErrorClass(error_class);
    if (options.recovery == RecoveryPolicy::kQuarantine) {
      QuarantineRecord record;
      record.byte_offset = static_cast<int64_t>(data.size() - cursor.size());
      record.error_class = std::string(error_class);
      record.raw = strict_error.message();
      options.report->quarantined.push_back(std::move(record));
    }
  }
  return log;
}

}  // namespace

std::string EncodeBinaryLog(const EventLog& log) {
  std::string body;
  PutVarint64(&body, kVersion);

  PutVarint64(&body, static_cast<uint64_t>(log.num_activities()));
  for (const std::string& name : log.dictionary().names()) {
    PutLengthPrefixed(&body, name);
  }

  PutVarint64(&body, log.num_executions());
  for (const Execution& exec : log.executions()) {
    PutLengthPrefixed(&body, exec.name());
    PutVarint64(&body, exec.size());
    int64_t previous_start = 0;
    for (const ActivityInstance& inst : exec.instances()) {
      PutVarint64(&body, static_cast<uint64_t>(inst.activity));
      PutVarintSigned64(&body, inst.start - previous_start);
      previous_start = inst.start;
      PutVarint64(&body, static_cast<uint64_t>(inst.end - inst.start));
      PutVarint64(&body, inst.output.size());
      for (int64_t value : inst.output) PutVarintSigned64(&body, value);
    }
  }

  std::string out(kMagic, 4);
  out += body;
  PutFixed32(&out, Crc32c(body));
  return out;
}

Result<EventLog> DecodeBinaryLog(std::string_view data) {
  if (data.size() < 8 || data.substr(0, 4) != std::string_view(kMagic, 4)) {
    return Status::DataLoss("not a procmine binary log (bad magic)");
  }
  std::string_view body = data.substr(4, data.size() - 8);
  std::string_view footer = data.substr(data.size() - 4);
  PROCMINE_ASSIGN_OR_RETURN(uint32_t stored_crc, GetFixed32(&footer));
  uint32_t actual_crc = Crc32c(body);
  if (stored_crc != actual_crc) {
    return Status::DataLoss(
        StrFormat("checksum mismatch: stored %08x, computed %08x",
                  stored_crc, actual_crc));
  }

  std::string_view cursor = body;
  PROCMINE_ASSIGN_OR_RETURN(uint64_t version, GetVarint64(&cursor));
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported binary log version %llu",
                  static_cast<unsigned long long>(version)));
  }

  EventLog log;
  PROCMINE_ASSIGN_OR_RETURN(uint64_t activity_count, GetVarint64(&cursor));
  for (uint64_t i = 0; i < activity_count; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(std::string_view name,
                              GetLengthPrefixed(&cursor));
    ActivityId id = log.dictionary().Intern(name);
    if (static_cast<uint64_t>(id) != i) {
      return Status::InvalidArgument("duplicate activity name in dictionary");
    }
  }

  PROCMINE_ASSIGN_OR_RETURN(uint64_t execution_count, GetVarint64(&cursor));
  for (uint64_t e = 0; e < execution_count; ++e) {
    PROCMINE_ASSIGN_OR_RETURN(Execution exec,
                              DecodeOneExecution(&cursor, activity_count));
    log.AddExecution(std::move(exec));
  }
  if (!cursor.empty()) {
    return Status::DataLoss(StrFormat(
        "%zu trailing bytes after the last execution", cursor.size()));
  }
  return log;
}

Result<EventLog> DecodeBinaryLog(std::string_view data,
                                 const BinaryDecodeOptions& options) {
  Result<EventLog> strict = DecodeBinaryLog(data);
  if (strict.ok() || options.recovery == RecoveryPolicy::kStrict) {
    return strict;
  }
  return SalvageBinaryLog(data, strict.status(), options);
}

Status WriteBinaryLogFile(const EventLog& log, const std::string& path) {
  if (auto fp = PROCMINE_FAILPOINT("binary_log.write"); fp) {
    return fp.ToStatus("binary_log.write");
  }
  return WriteFileAtomic(path, EncodeBinaryLog(log));
}

Result<EventLog> ReadBinaryLogFile(const std::string& path) {
  return ReadBinaryLogFile(path, BinaryDecodeOptions{});
}

Result<EventLog> ReadBinaryLogFile(const std::string& path,
                                   const BinaryDecodeOptions& options) {
  PROCMINE_SPAN("log.read_binary");
  // Decode straight out of the mapping: the varint cursor walks the page
  // cache and only the dictionary strings and outputs are copied.
  PROCMINE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  static obs::Counter* bytes =
      obs::MetricsRegistry::Get().GetCounter("log.bytes_read");
  bytes->Add(static_cast<int64_t>(file.size()));
  Result<EventLog> log = DecodeBinaryLog(file.data(), options);
  if (log.ok()) {
    static obs::Counter* read =
        obs::MetricsRegistry::Get().GetCounter("log.executions_read");
    read->Add(static_cast<int64_t>(log->num_executions()));
  }
  return log;
}

}  // namespace procmine
