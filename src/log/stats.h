// Descriptive statistics over an EventLog (execution counts, lengths,
// activity frequencies) — used by the bench harnesses to report workload
// characteristics alongside results.

#ifndef PROCMINE_LOG_STATS_H_
#define PROCMINE_LOG_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "log/event_log.h"

namespace procmine {

struct LogStats {
  int64_t num_executions = 0;
  int64_t num_activities = 0;       ///< distinct activity names
  int64_t total_instances = 0;      ///< activity occurrences (= events / 2)
  int64_t min_length = 0;           ///< shortest execution (instances)
  int64_t max_length = 0;           ///< longest execution
  double mean_length = 0.0;
  int64_t serialized_bytes = 0;     ///< text-format log size
  /// occurrences[a] = number of executions containing activity id a.
  std::vector<int64_t> executions_containing;

  std::string ToString(const ActivityDictionary& dict) const;
};

/// Computes statistics in one pass over the log.
LogStats ComputeLogStats(const EventLog& log);

}  // namespace procmine

#endif  // PROCMINE_LOG_STATS_H_
