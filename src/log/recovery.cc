#include "log/recovery.h"

#include <algorithm>

#include "util/atomic_file.h"
#include "util/strings.h"

namespace procmine {

std::string_view RecoveryPolicyName(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kStrict:
      return "strict";
    case RecoveryPolicy::kSkip:
      return "skip";
    case RecoveryPolicy::kQuarantine:
      return "quarantine";
  }
  return "strict";
}

Result<RecoveryPolicy> ParseRecoveryPolicy(std::string_view name) {
  if (name == "strict") return RecoveryPolicy::kStrict;
  if (name == "skip") return RecoveryPolicy::kSkip;
  if (name == "quarantine") return RecoveryPolicy::kQuarantine;
  return Status::InvalidArgument(
      StrFormat("unknown recovery policy '%s' (want strict, skip, or "
                "quarantine)",
                std::string(name).c_str()));
}

void IngestionReport::AddErrorClass(std::string_view error_class,
                                    int64_t count) {
  auto it = std::lower_bound(
      error_classes.begin(), error_classes.end(), error_class,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != error_classes.end() && it->first == error_class) {
    it->second += count;
  } else {
    error_classes.insert(it, {std::string(error_class), count});
  }
}

void IngestionReport::Merge(const IngestionReport& other) {
  lines_total += other.lines_total;
  events_parsed += other.events_parsed;
  lines_skipped += other.lines_skipped;
  executions_dropped += other.executions_dropped;
  salvage_attempted = salvage_attempted || other.salvage_attempted;
  salvaged_executions += other.salvaged_executions;
  salvage_dropped_bytes += other.salvage_dropped_bytes;
  for (const auto& [error_class, count] : other.error_classes) {
    AddErrorClass(error_class, count);
  }
  quarantined.insert(quarantined.end(), other.quarantined.begin(),
                     other.quarantined.end());
}

namespace {

// Escapes tabs/newlines/backslashes so each quarantine record stays on one
// line and the raw bytes round-trip.
void AppendEscapedRaw(std::string* out, std::string_view raw) {
  for (char c : raw) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        out->push_back(c);
    }
  }
}

}  // namespace

std::string IngestionReport::QuarantineText() const {
  std::string out = "# procmine quarantine v1\n";
  out += "# offset\tline\tclass\traw\n";
  for (const QuarantineRecord& record : quarantined) {
    out += StrFormat("%lld\t%lld\t", static_cast<long long>(record.byte_offset),
                     static_cast<long long>(record.line));
    out += record.error_class;
    out.push_back('\t');
    AppendEscapedRaw(&out, record.raw);
    out.push_back('\n');
  }
  return out;
}

std::string IngestionReport::SummaryText() const {
  if (!AnyLoss()) return "";
  std::string out;
  auto classes_suffix = [this]() {
    if (error_classes.empty()) return std::string();
    std::string s = " (";
    bool first = true;
    for (const auto& [error_class, count] : error_classes) {
      if (!first) s += ", ";
      first = false;
      s += StrFormat("%s: %lld", error_class.c_str(),
                     static_cast<long long>(count));
    }
    s += ")";
    return s;
  };
  if (lines_skipped > 0 || executions_dropped > 0) {
    out += StrFormat("recovery=%s: skipped %lld lines, dropped %lld executions",
                     std::string(RecoveryPolicyName(policy)).c_str(),
                     static_cast<long long>(lines_skipped),
                     static_cast<long long>(executions_dropped));
    out += classes_suffix();
    out.push_back('\n');
  }
  if (salvage_attempted) {
    out += StrFormat(
        "salvage: recovered %lld executions, discarded %lld trailing bytes\n",
        static_cast<long long>(salvaged_executions),
        static_cast<long long>(salvage_dropped_bytes));
  }
  return out;
}

Status WriteQuarantineFile(const std::string& path,
                           const IngestionReport& report) {
  return WriteFileAtomic(path, report.QuarantineText());
}

}  // namespace procmine
