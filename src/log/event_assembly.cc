#include "log/event_assembly.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/strings.h"

namespace procmine {

namespace {

/// FIFO of open START events for one activity, reused across instances.
/// pop-from-front is an index bump; Reset() reclaims the storage.
struct OpenStarts {
  struct Pending {
    int64_t timestamp;
    size_t seq;  // position in the instance's time-sorted record order
  };
  std::vector<Pending> queue;
  size_t head = 0;

  bool empty() const { return head == queue.size(); }
  void Reset() {
    queue.clear();
    head = 0;
  }
};

/// Stable sort tuned for per-execution event counts: executions are almost
/// always small, and std::stable_sort allocates a merge buffer per call —
/// insertion sort (inherently stable) avoids that for the common case.
template <typename T, typename Less>
void StableSortSmall(std::vector<T>* v, Less less) {
  if (v->size() > 64) {
    std::stable_sort(v->begin(), v->end(), less);
    return;
  }
  for (size_t i = 1; i < v->size(); ++i) {
    T value = std::move((*v)[i]);
    size_t j = i;
    while (j > 0 && less(value, (*v)[j - 1])) {
      (*v)[j] = std::move((*v)[j - 1]);
      --j;
    }
    (*v)[j] = std::move(value);
  }
}

}  // namespace

Result<EventLog> AssembleEventLog(const CompactEventBatch& batch) {
  return AssembleEventLog(batch, AssemblyRecovery{});
}

Result<EventLog> AssembleEventLog(const CompactEventBatch& batch,
                                  const AssemblyRecovery& recovery) {
  PROCMINE_SPAN("log.assemble");
  const size_t num_instances = batch.instance_names.size();
  const size_t num_activities = batch.activity_names.size();

  // Group event indices by process instance with a stable counting sort:
  // grouped[group_begin[i] .. group_begin[i+1]) are instance i's events in
  // log order.
  std::vector<uint32_t> group_begin(num_instances + 1, 0);
  for (const CompactEvent& e : batch.events) {
    ++group_begin[static_cast<size_t>(e.instance) + 1];
  }
  std::partial_sum(group_begin.begin(), group_begin.end(),
                   group_begin.begin());
  std::vector<uint32_t> grouped(batch.events.size());
  {
    std::vector<uint32_t> cursor(group_begin.begin(), group_begin.end() - 1);
    for (uint32_t i = 0; i < batch.events.size(); ++i) {
      grouped[cursor[static_cast<size_t>(batch.events[i].instance)]++] = i;
    }
  }

  // Instances are emitted in name order (the std::map order of the original
  // grouping); ties cannot occur since names are interned uniquely.
  std::vector<int32_t> by_name(num_instances);
  std::iota(by_name.begin(), by_name.end(), 0);
  std::sort(by_name.begin(), by_name.end(), [&](int32_t a, int32_t b) {
    return batch.instance_names[static_cast<size_t>(a)] <
           batch.instance_names[static_cast<size_t>(b)];
  });

  EventLog log;
  // Activity interning is deferred until an END event pairs, so dictionary
  // ids are assigned in pairing order — the same order FromEvents always
  // produced. temp_to_final memoizes one Intern per distinct activity.
  std::vector<ActivityId> temp_to_final(num_activities, -1);
  std::vector<OpenStarts> open(num_activities);
  std::vector<int32_t> touched;  // activity ids with a non-Reset() queue
  std::vector<uint32_t> order;   // one instance's events, time-sorted
  std::vector<ActivityInstance> instances;

  for (int32_t inst_id : by_name) {
    const uint32_t begin = group_begin[static_cast<size_t>(inst_id)];
    const uint32_t end = group_begin[static_cast<size_t>(inst_id) + 1];
    if (begin == end) continue;
    std::string_view inst_name =
        batch.instance_names[static_cast<size_t>(inst_id)];

    order.assign(grouped.begin() + begin, grouped.begin() + end);
    StableSortSmall(&order, [&](uint32_t a, uint32_t b) {
      const CompactEvent& x = batch.events[a];
      const CompactEvent& y = batch.events[b];
      if (x.timestamp != y.timestamp) return x.timestamp < y.timestamp;
      // START before END at equal timestamps, so an instantaneous
      // activity pairs with itself.
      return x.type < y.type;
    });

    auto release_queues = [&]() {
      for (int32_t a : touched) open[static_cast<size_t>(a)].Reset();
      touched.clear();
    };

    instances.clear();
    std::string_view fail_class;  // empty = this instance paired cleanly
    std::string fail_detail;
    for (size_t seq = 0; seq < order.size(); ++seq) {
      const CompactEvent& e = batch.events[order[seq]];
      OpenStarts& fifo = open[static_cast<size_t>(e.activity)];
      if (e.type == EventType::kStart) {
        if (fifo.queue.empty()) touched.push_back(e.activity);
        fifo.queue.push_back({e.timestamp, seq});
        continue;
      }
      if (fifo.empty()) {
        fail_class = "end_without_start";
        fail_detail = StrFormat(
            "execution '%s': END without START for activity '%s'",
            std::string(inst_name).c_str(),
            std::string(batch.activity_names[static_cast<size_t>(e.activity)])
                .c_str());
        break;
      }
      ActivityInstance inst;
      inst.activity = e.activity;  // temp id; remapped below
      inst.start = fifo.queue[fifo.head++].timestamp;
      inst.end = e.timestamp;
      inst.output.assign(
          batch.outputs.begin() + e.output_begin,
          batch.outputs.begin() + e.output_begin + e.output_count);
      instances.push_back(std::move(inst));
    }
    if (fail_class.empty()) {
      // Report the earliest START (in time-sorted order) left unmatched.
      size_t first_seq = order.size();
      int32_t first_activity = -1;
      for (int32_t a : touched) {
        const OpenStarts& fifo = open[static_cast<size_t>(a)];
        if (!fifo.empty() && fifo.queue[fifo.head].seq < first_seq) {
          first_seq = fifo.queue[fifo.head].seq;
          first_activity = a;
        }
      }
      if (first_activity >= 0) {
        fail_class = "start_without_end";
        fail_detail = StrFormat(
            "execution '%s': START without END for activity '%s'",
            std::string(inst_name).c_str(),
            std::string(
                batch.activity_names[static_cast<size_t>(first_activity)])
                .c_str());
      }
    }
    release_queues();
    if (!fail_class.empty()) {
      if (recovery.policy == RecoveryPolicy::kStrict) {
        return Status::InvalidArgument(fail_detail);
      }
      if (recovery.report != nullptr) {
        ++recovery.report->executions_dropped;
        recovery.report->AddErrorClass(fail_class);
        if (recovery.policy == RecoveryPolicy::kQuarantine) {
          QuarantineRecord record;
          record.error_class = std::string(fail_class);
          record.raw = std::move(fail_detail);
          recovery.report->quarantined.push_back(std::move(record));
        }
      }
      continue;  // drop the whole execution
    }

    for (ActivityInstance& inst : instances) {
      ActivityId& final_id = temp_to_final[static_cast<size_t>(inst.activity)];
      if (final_id < 0) {
        final_id = log.dictionary().Intern(
            batch.activity_names[static_cast<size_t>(inst.activity)]);
      }
      inst.activity = final_id;
    }
    StableSortSmall(&instances,
                    [](const ActivityInstance& a, const ActivityInstance& b) {
                      return a.start < b.start;
                    });
    Execution exec{std::string(inst_name)};
    for (ActivityInstance& inst : instances) exec.Append(std::move(inst));
    log.AddExecution(std::move(exec));
  }
  return log;
}

}  // namespace procmine
