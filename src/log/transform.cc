#include "log/transform.h"

#include <map>
#include <unordered_set>

#include "util/random.h"

namespace procmine {

namespace {

/// New log sharing `source`'s dictionary.
EventLog WithSameDictionary(const EventLog& source) {
  EventLog log;
  for (const std::string& name : source.dictionary().names()) {
    log.dictionary().Intern(name);
  }
  return log;
}

/// Rebuilds an execution keeping only instances passing `keep`; false if
/// the result would be empty.
bool FilterInstances(const Execution& exec,
                     const std::function<bool(const ActivityInstance&)>& keep,
                     Execution* out) {
  *out = Execution(exec.name());
  for (const ActivityInstance& inst : exec.instances()) {
    if (keep(inst)) out->Append(inst);
  }
  return !out->empty();
}

Result<std::unordered_set<ActivityId>> ResolveNames(
    const EventLog& log, const std::vector<std::string>& names) {
  std::unordered_set<ActivityId> ids;
  for (const std::string& name : names) {
    PROCMINE_ASSIGN_OR_RETURN(ActivityId id, log.dictionary().Find(name));
    ids.insert(id);
  }
  return ids;
}

}  // namespace

EventLog FilterExecutions(
    const EventLog& log,
    const std::function<bool(const Execution&)>& predicate) {
  EventLog out = WithSameDictionary(log);
  for (const Execution& exec : log.executions()) {
    if (predicate(exec)) out.AddExecution(exec);
  }
  return out;
}

Result<EventLog> ProjectActivities(const EventLog& log,
                                   const std::vector<std::string>& keep) {
  PROCMINE_ASSIGN_OR_RETURN(auto ids, ResolveNames(log, keep));
  EventLog out = WithSameDictionary(log);
  for (const Execution& exec : log.executions()) {
    Execution filtered;
    if (FilterInstances(
            exec,
            [&](const ActivityInstance& inst) {
              return ids.count(inst.activity) > 0;
            },
            &filtered)) {
      out.AddExecution(std::move(filtered));
    }
  }
  return out;
}

Result<EventLog> DropActivities(const EventLog& log,
                                const std::vector<std::string>& drop) {
  PROCMINE_ASSIGN_OR_RETURN(auto ids, ResolveNames(log, drop));
  EventLog out = WithSameDictionary(log);
  for (const Execution& exec : log.executions()) {
    Execution filtered;
    if (FilterInstances(
            exec,
            [&](const ActivityInstance& inst) {
              return ids.count(inst.activity) == 0;
            },
            &filtered)) {
      out.AddExecution(std::move(filtered));
    }
  }
  return out;
}

EventLog SampleExecutions(const EventLog& log, size_t count, uint64_t seed) {
  if (count >= log.num_executions()) return log;
  // Partial Fisher-Yates over the index vector.
  std::vector<size_t> indices(log.num_executions());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(rng.Uniform(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  std::sort(indices.begin(), indices.begin() + static_cast<ptrdiff_t>(count));
  EventLog out = WithSameDictionary(log);
  for (size_t i = 0; i < count; ++i) {
    out.AddExecution(log.execution(indices[i]));
  }
  return out;
}

EventLog TakeExecutions(const EventLog& log, size_t count) {
  EventLog out = WithSameDictionary(log);
  for (size_t i = 0; i < count && i < log.num_executions(); ++i) {
    out.AddExecution(log.execution(i));
  }
  return out;
}

std::pair<EventLog, EventLog> SplitLog(const EventLog& log, size_t pivot) {
  EventLog head = WithSameDictionary(log);
  EventLog tail = WithSameDictionary(log);
  for (size_t i = 0; i < log.num_executions(); ++i) {
    (i < pivot ? head : tail).AddExecution(log.execution(i));
  }
  return {std::move(head), std::move(tail)};
}

EventLog MergeLogs(const std::vector<const EventLog*>& logs) {
  EventLog out;
  for (const EventLog* log : logs) {
    // Remap ids by name into the merged dictionary.
    std::vector<ActivityId> remap(
        static_cast<size_t>(log->num_activities()));
    for (ActivityId a = 0; a < log->num_activities(); ++a) {
      remap[static_cast<size_t>(a)] =
          out.dictionary().Intern(log->dictionary().Name(a));
    }
    for (const Execution& exec : log->executions()) {
      Execution remapped(exec.name());
      for (ActivityInstance inst : exec.instances()) {
        inst.activity = remap[static_cast<size_t>(inst.activity)];
        remapped.Append(std::move(inst));
      }
      out.AddExecution(std::move(remapped));
    }
  }
  return out;
}

EventLog DeduplicateSequences(const EventLog& log,
                              std::vector<int64_t>* multiplicity) {
  EventLog out = WithSameDictionary(log);
  std::map<std::vector<ActivityId>, size_t> position;
  std::vector<int64_t> counts;
  for (const Execution& exec : log.executions()) {
    std::vector<ActivityId> key = exec.Sequence();
    auto [it, inserted] = position.emplace(std::move(key), counts.size());
    if (inserted) {
      out.AddExecution(exec);
      counts.push_back(1);
    } else {
      ++counts[it->second];
    }
  }
  if (multiplicity != nullptr) *multiplicity = std::move(counts);
  return out;
}

}  // namespace procmine
