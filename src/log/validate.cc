#include "log/validate.h"

#include <map>
#include <unordered_map>

#include "util/strings.h"

namespace procmine {

std::string ToString(LogIssue::Kind kind) {
  switch (kind) {
    case LogIssue::Kind::kEndWithoutStart:
      return "END without START";
    case LogIssue::Kind::kStartWithoutEnd:
      return "START without END";
    case LogIssue::Kind::kNegativeDuration:
      return "negative duration";
    case LogIssue::Kind::kSimultaneousStart:
      return "simultaneous starts";
    case LogIssue::Kind::kEmptyExecution:
      return "empty execution";
  }
  return "unknown";
}

std::vector<LogIssue> ValidateEvents(const std::vector<Event>& events) {
  std::vector<LogIssue> issues;
  // open[instance][activity] = number of unmatched STARTs.
  std::map<std::string, std::unordered_map<std::string, int64_t>> open;
  for (const Event& e : events) {
    auto& counts = open[e.process_instance];
    if (e.type == EventType::kStart) {
      ++counts[e.activity];
    } else {
      if (counts[e.activity] == 0) {
        issues.push_back({LogIssue::Kind::kEndWithoutStart,
                          e.process_instance,
                          "activity '" + e.activity + "'"});
      } else {
        --counts[e.activity];
      }
    }
  }
  for (const auto& [instance, counts] : open) {
    for (const auto& [activity, n] : counts) {
      if (n > 0) {
        issues.push_back({LogIssue::Kind::kStartWithoutEnd, instance,
                          StrFormat("activity '%s' (%lld unmatched)",
                                    activity.c_str(),
                                    static_cast<long long>(n))});
      }
    }
  }
  return issues;
}

std::vector<LogIssue> ValidateLog(const EventLog& log) {
  std::vector<LogIssue> issues;
  for (const Execution& exec : log.executions()) {
    if (exec.empty()) {
      issues.push_back({LogIssue::Kind::kEmptyExecution, exec.name(), ""});
      continue;
    }
    for (size_t i = 0; i < exec.size(); ++i) {
      const ActivityInstance& inst = exec[i];
      if (inst.end < inst.start) {
        issues.push_back(
            {LogIssue::Kind::kNegativeDuration, exec.name(),
             "activity '" + log.dictionary().Name(inst.activity) + "'"});
      }
      if (i > 0 && exec[i - 1].start == inst.start) {
        issues.push_back(
            {LogIssue::Kind::kSimultaneousStart, exec.name(),
             StrFormat("'%s' and '%s' at t=%lld",
                       log.dictionary().Name(exec[i - 1].activity).c_str(),
                       log.dictionary().Name(inst.activity).c_str(),
                       static_cast<long long>(inst.start))});
      }
    }
  }
  return issues;
}

}  // namespace procmine
