#include "log/validate.h"

#include <algorithm>
#include <numeric>
#include <string_view>
#include <unordered_map>

#include "util/strings.h"

namespace procmine {

std::string ToString(LogIssue::Kind kind) {
  switch (kind) {
    case LogIssue::Kind::kEndWithoutStart:
      return "END without START";
    case LogIssue::Kind::kStartWithoutEnd:
      return "START without END";
    case LogIssue::Kind::kNegativeDuration:
      return "negative duration";
    case LogIssue::Kind::kSimultaneousStart:
      return "simultaneous starts";
    case LogIssue::Kind::kEmptyExecution:
      return "empty execution";
  }
  return "unknown";
}

std::vector<LogIssue> ValidateEvents(const std::vector<Event>& events) {
  std::vector<LogIssue> issues;
  // Intern instance names (heterogeneous string_view lookup, no key copies)
  // and track unmatched-START counts per (instance, activity). Activities
  // per instance are few, so a first-seen-ordered vector beats a nested
  // hash map and keeps the report deterministic.
  struct InstanceState {
    std::string_view name;
    std::vector<std::pair<std::string_view, int64_t>> counts;
  };
  std::unordered_map<std::string_view, size_t> instance_ids;
  std::vector<InstanceState> instances;
  instance_ids.reserve(events.size() / 4 + 1);
  for (const Event& e : events) {
    auto [it, inserted] = instance_ids.emplace(e.process_instance,
                                               instances.size());
    if (inserted) instances.push_back({e.process_instance, {}});
    auto& counts = instances[it->second].counts;
    auto slot = std::find_if(counts.begin(), counts.end(), [&](const auto& c) {
      return c.first == e.activity;
    });
    if (slot == counts.end()) {
      counts.emplace_back(e.activity, 0);
      slot = counts.end() - 1;
    }
    if (e.type == EventType::kStart) {
      ++slot->second;
    } else if (slot->second == 0) {
      issues.push_back({LogIssue::Kind::kEndWithoutStart, e.process_instance,
                        "activity '" + e.activity + "'"});
    } else {
      --slot->second;
    }
  }
  // Unmatched STARTs, instances in name order (activities in first-seen
  // order within each instance).
  std::vector<size_t> by_name(instances.size());
  std::iota(by_name.begin(), by_name.end(), 0);
  std::sort(by_name.begin(), by_name.end(), [&](size_t a, size_t b) {
    return instances[a].name < instances[b].name;
  });
  for (size_t i : by_name) {
    for (const auto& [activity, n] : instances[i].counts) {
      if (n > 0) {
        issues.push_back({LogIssue::Kind::kStartWithoutEnd,
                          std::string(instances[i].name),
                          StrFormat("activity '%s' (%lld unmatched)",
                                    std::string(activity).c_str(),
                                    static_cast<long long>(n))});
      }
    }
  }
  return issues;
}

std::vector<LogIssue> ValidateLog(const EventLog& log) {
  std::vector<LogIssue> issues;
  for (const Execution& exec : log.executions()) {
    if (exec.empty()) {
      issues.push_back({LogIssue::Kind::kEmptyExecution, exec.name(), ""});
      continue;
    }
    for (size_t i = 0; i < exec.size(); ++i) {
      const ActivityInstance& inst = exec[i];
      if (inst.end < inst.start) {
        issues.push_back(
            {LogIssue::Kind::kNegativeDuration, exec.name(),
             "activity '" + log.dictionary().Name(inst.activity) + "'"});
      }
      if (i > 0 && exec[i - 1].start == inst.start) {
        issues.push_back(
            {LogIssue::Kind::kSimultaneousStart, exec.name(),
             StrFormat("'%s' and '%s' at t=%lld",
                       log.dictionary().Name(exec[i - 1].activity).c_str(),
                       log.dictionary().Name(inst.activity).c_str(),
                       static_cast<long long>(inst.start))});
      }
    }
  }
  return issues;
}

}  // namespace procmine
