// Raw workflow event records, Definition 2 of the paper:
//   (P, A, E, T, O) with P = process-execution name, A = activity name,
//   E in {START, END}, T = timestamp, O = activity output (END events only).

#ifndef PROCMINE_LOG_EVENT_H_
#define PROCMINE_LOG_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace procmine {

/// Type of a logged event.
enum class EventType : int8_t { kStart = 0, kEnd = 1 };

/// One raw log record, in string space (before dictionary encoding).
struct Event {
  std::string process_instance;  ///< P: which execution this belongs to
  std::string activity;          ///< A: activity name
  EventType type;                ///< E: START or END
  int64_t timestamp;             ///< T: logical or wall-clock time
  std::vector<int64_t> output;   ///< O: activity output, END events only
};

}  // namespace procmine

#endif  // PROCMINE_LOG_EVENT_H_
