#include "log/streaming_reader.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace procmine {

namespace {

/// Accumulates the events of one process instance and assembles the
/// Execution when the group ends.
class InstanceAssembler {
 public:
  explicit InstanceAssembler(std::string name) : name_(std::move(name)) {}

  /// On failure *error_class names the reject bucket (end_without_start,
  /// negative_duration) for recovery-mode accounting.
  Status Add(ActivityId activity, bool is_start, int64_t timestamp,
             std::vector<int64_t> output, ActivityDictionary* dict,
             std::string_view* error_class) {
    if (is_start) {
      open_[activity].push_back(timestamp);
      return Status::OK();
    }
    auto it = open_.find(activity);
    if (it == open_.end() || it->second.empty()) {
      *error_class = "end_without_start";
      return Status::InvalidArgument(
          StrFormat("execution '%s': END without START for '%s'",
                    name_.c_str(), dict->Name(activity).c_str()));
    }
    ActivityInstance inst;
    inst.activity = activity;
    inst.start = it->second.front();
    it->second.pop_front();
    inst.end = timestamp;
    inst.output = std::move(output);
    if (inst.end < inst.start) {
      *error_class = "negative_duration";
      return Status::InvalidArgument(
          StrFormat("execution '%s': negative duration for '%s'",
                    name_.c_str(), dict->Name(activity).c_str()));
    }
    instances_.push_back(std::move(inst));
    return Status::OK();
  }

  Result<Execution> Finish(const ActivityDictionary& dict,
                           std::string_view* error_class) {
    for (const auto& [activity, queue] : open_) {
      if (!queue.empty()) {
        *error_class = "start_without_end";
        return Status::InvalidArgument(
            StrFormat("execution '%s': START without END for '%s'",
                      name_.c_str(), dict.Name(activity).c_str()));
      }
    }
    std::stable_sort(instances_.begin(), instances_.end(),
                     [](const ActivityInstance& a, const ActivityInstance& b) {
                       return a.start < b.start;
                     });
    Execution exec(name_);
    for (ActivityInstance& inst : instances_) exec.Append(std::move(inst));
    return exec;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::unordered_map<ActivityId, std::deque<int64_t>> open_;
  std::vector<ActivityInstance> instances_;
};

/// Line-at-a-time scan state, shared by the istream loop and the mmap file
/// path: ProcessLine per input line (views may alias caller storage; they
/// are consumed before return), then Finish once at end of input.
class StreamParser {
 public:
  StreamParser(const ExecutionCallback& callback, const StreamOptions& options)
      : callback_(callback), options_(options) {
    fields_.reserve(8);
    if (options_.report != nullptr) {
      options_.report->policy = options_.recovery;
    }
  }

  /// `offset` is the line's byte offset in the source (for quarantine
  /// records); -1 when the source is not byte-addressed (istream).
  Status ProcessLine(std::string_view line, int64_t offset = -1) {
    ++stats_.lines;
    if (options_.report != nullptr) ++options_.report->lines_total;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return Status::OK();
    SplitWhitespaceViews(trimmed, &fields_);
    if (fields_.size() < 4) {
      if (SkipLine("short_line", line, offset)) return Status::OK();
      return Status::InvalidArgument(
          StrFormat("line %lld: expected at least 4 fields",
                    static_cast<long long>(stats_.lines)));
    }
    std::string_view instance = fields_[0];
    bool is_start = fields_[2] == "START";
    if (!is_start && fields_[2] != "END") {
      if (SkipLine("bad_event_type", line, offset)) return Status::OK();
      return Status::InvalidArgument(
          StrFormat("line %lld: bad event type '%s'",
                    static_cast<long long>(stats_.lines),
                    std::string(fields_[2]).c_str()));
    }
    auto timestamp = ParseInt64(fields_[3]);
    if (!timestamp.ok()) {
      if (SkipLine("bad_timestamp", line, offset)) return Status::OK();
      return Status::InvalidArgument(
          StrFormat("line %lld: bad timestamp",
                    static_cast<long long>(stats_.lines)));
    }
    std::vector<int64_t> output;
    for (size_t i = 4; i < fields_.size(); ++i) {
      auto value = ParseInt64(fields_[i]);
      if (!value.ok()) {
        if (SkipLine("bad_output", line, offset)) return Status::OK();
        return value.status();
      }
      output.push_back(*value);
    }

    if (current_ == nullptr || current_->name() != instance) {
      if (finished_.count(std::string(instance)) > 0) {
        if (SkipLine("non_contiguous_instance", line, offset)) {
          return Status::OK();
        }
        return Status::InvalidArgument(StrFormat(
            "line %lld: events of instance '%s' are not contiguous",
            static_cast<long long>(stats_.lines),
            std::string(instance).c_str()));
      }
      PROCMINE_RETURN_NOT_OK(FinishCurrent());
      current_ = std::make_unique<InstanceAssembler>(std::string(instance));
      poison_class_ = {};
      poison_detail_.clear();
    }
    if (!poison_class_.empty()) return Status::OK();  // drop poisoned group
    if (options_.report != nullptr) ++options_.report->events_parsed;
    ++stats_.events;
    std::string_view error_class;
    Status added = current_->Add(dict_.Intern(fields_[1]), is_start,
                                 *timestamp, std::move(output), &dict_,
                                 &error_class);
    if (!added.ok() && options_.recovery != RecoveryPolicy::kStrict) {
      // The execution is unusable, but its group must still be consumed to
      // keep contiguity tracking intact — poison it instead of returning.
      poison_class_ = error_class;
      poison_detail_ = added.message();
      return Status::OK();
    }
    return added;
  }

  Result<StreamingStats> Finish() {
    PROCMINE_RETURN_NOT_OK(FinishCurrent());
    return stats_;
  }

 private:
  /// Recovery-mode line drop: returns true when the line was skipped
  /// (recorded in the report), false when strict semantics apply.
  bool SkipLine(std::string_view error_class, std::string_view line,
                int64_t offset) {
    if (options_.recovery == RecoveryPolicy::kStrict) return false;
    if (options_.report != nullptr) {
      ++options_.report->lines_skipped;
      options_.report->AddErrorClass(error_class);
      if (options_.recovery == RecoveryPolicy::kQuarantine) {
        QuarantineRecord record;
        record.byte_offset = offset;
        record.line = stats_.lines;
        record.error_class = std::string(error_class);
        record.raw = std::string(line);
        options_.report->quarantined.push_back(std::move(record));
      }
    }
    return true;
  }

  /// Drops the current execution (recovery) instead of failing the scan.
  void DropCurrent(std::string_view error_class, std::string detail) {
    if (options_.report != nullptr) {
      ++options_.report->executions_dropped;
      options_.report->AddErrorClass(error_class);
      if (options_.recovery == RecoveryPolicy::kQuarantine) {
        QuarantineRecord record;
        record.error_class = std::string(error_class);
        record.raw = std::move(detail);
        options_.report->quarantined.push_back(std::move(record));
      }
    }
  }

  Status FinishCurrent() {
    if (current_ == nullptr) return Status::OK();
    finished_.insert(current_->name());
    if (!poison_class_.empty()) {  // failed during Add: already classified
      DropCurrent(poison_class_, std::move(poison_detail_));
      current_.reset();
      poison_class_ = {};
      poison_detail_.clear();
      return Status::OK();
    }
    std::string_view error_class;
    auto exec = current_->Finish(dict_, &error_class);
    if (!exec.ok()) {
      if (options_.recovery == RecoveryPolicy::kStrict) return exec.status();
      DropCurrent(error_class, exec.status().message());
      current_.reset();
      return Status::OK();
    }
    current_.reset();
    ++stats_.executions;
    return callback_(*exec, dict_);
  }

  const ExecutionCallback& callback_;
  StreamOptions options_;
  StreamingStats stats_;
  ActivityDictionary dict_;
  std::unordered_set<std::string> finished_;
  std::unique_ptr<InstanceAssembler> current_;
  std::string_view poison_class_;  // non-empty: current_ is condemned
  std::string poison_detail_;
  std::vector<std::string_view> fields_;
};

}  // namespace

Result<StreamingStats> StreamLog(std::istream* input,
                                 const ExecutionCallback& callback) {
  return StreamLog(input, callback, StreamOptions{});
}

Result<StreamingStats> StreamLog(std::istream* input,
                                 const ExecutionCallback& callback,
                                 const StreamOptions& options) {
  StreamParser parser(callback, options);
  std::string line;
  while (std::getline(*input, line)) {
    PROCMINE_RETURN_NOT_OK(parser.ProcessLine(line));
  }
  if (input->bad()) return Status::IOError("stream read failed");
  return parser.Finish();
}

Result<StreamingStats> StreamLogFile(const std::string& path,
                                     const ExecutionCallback& callback) {
  return StreamLogFile(path, callback, StreamOptions{});
}

Result<StreamingStats> StreamLogFile(const std::string& path,
                                     const ExecutionCallback& callback,
                                     const StreamOptions& options) {
  PROCMINE_SPAN("log.stream_mmap");
  PROCMINE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  StreamParser parser(callback, options);
  std::string_view data = file.data();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) eol = data.size();
    PROCMINE_RETURN_NOT_OK(parser.ProcessLine(data.substr(pos, eol - pos),
                                              static_cast<int64_t>(pos)));
    pos = eol + 1;
  }
  return parser.Finish();
}

}  // namespace procmine
