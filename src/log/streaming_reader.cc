#include "log/streaming_reader.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace procmine {

namespace {

/// Accumulates the events of one process instance and assembles the
/// Execution when the group ends.
class InstanceAssembler {
 public:
  explicit InstanceAssembler(std::string name) : name_(std::move(name)) {}

  Status Add(ActivityId activity, bool is_start, int64_t timestamp,
             std::vector<int64_t> output, ActivityDictionary* dict) {
    if (is_start) {
      open_[activity].push_back(timestamp);
      return Status::OK();
    }
    auto it = open_.find(activity);
    if (it == open_.end() || it->second.empty()) {
      return Status::InvalidArgument(
          StrFormat("execution '%s': END without START for '%s'",
                    name_.c_str(), dict->Name(activity).c_str()));
    }
    ActivityInstance inst;
    inst.activity = activity;
    inst.start = it->second.front();
    it->second.pop_front();
    inst.end = timestamp;
    inst.output = std::move(output);
    if (inst.end < inst.start) {
      return Status::InvalidArgument(
          StrFormat("execution '%s': negative duration for '%s'",
                    name_.c_str(), dict->Name(activity).c_str()));
    }
    instances_.push_back(std::move(inst));
    return Status::OK();
  }

  Result<Execution> Finish(const ActivityDictionary& dict) {
    for (const auto& [activity, queue] : open_) {
      if (!queue.empty()) {
        return Status::InvalidArgument(
            StrFormat("execution '%s': START without END for '%s'",
                      name_.c_str(), dict.Name(activity).c_str()));
      }
    }
    std::stable_sort(instances_.begin(), instances_.end(),
                     [](const ActivityInstance& a, const ActivityInstance& b) {
                       return a.start < b.start;
                     });
    Execution exec(name_);
    for (ActivityInstance& inst : instances_) exec.Append(std::move(inst));
    return exec;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::unordered_map<ActivityId, std::deque<int64_t>> open_;
  std::vector<ActivityInstance> instances_;
};

/// Line-at-a-time scan state, shared by the istream loop and the mmap file
/// path: ProcessLine per input line (views may alias caller storage; they
/// are consumed before return), then Finish once at end of input.
class StreamParser {
 public:
  explicit StreamParser(const ExecutionCallback& callback)
      : callback_(callback) {
    fields_.reserve(8);
  }

  Status ProcessLine(std::string_view line) {
    ++stats_.lines;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return Status::OK();
    SplitWhitespaceViews(trimmed, &fields_);
    if (fields_.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("line %lld: expected at least 4 fields",
                    static_cast<long long>(stats_.lines)));
    }
    std::string_view instance = fields_[0];
    bool is_start = fields_[2] == "START";
    if (!is_start && fields_[2] != "END") {
      return Status::InvalidArgument(
          StrFormat("line %lld: bad event type '%s'",
                    static_cast<long long>(stats_.lines),
                    std::string(fields_[2]).c_str()));
    }
    auto timestamp = ParseInt64(fields_[3]);
    if (!timestamp.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: bad timestamp",
                    static_cast<long long>(stats_.lines)));
    }
    std::vector<int64_t> output;
    for (size_t i = 4; i < fields_.size(); ++i) {
      PROCMINE_ASSIGN_OR_RETURN(int64_t value, ParseInt64(fields_[i]));
      output.push_back(value);
    }

    if (current_ == nullptr || current_->name() != instance) {
      if (finished_.count(std::string(instance)) > 0) {
        return Status::InvalidArgument(StrFormat(
            "line %lld: events of instance '%s' are not contiguous",
            static_cast<long long>(stats_.lines),
            std::string(instance).c_str()));
      }
      PROCMINE_RETURN_NOT_OK(FinishCurrent());
      current_ = std::make_unique<InstanceAssembler>(std::string(instance));
    }
    ++stats_.events;
    return current_->Add(dict_.Intern(fields_[1]), is_start, *timestamp,
                         std::move(output), &dict_);
  }

  Result<StreamingStats> Finish() {
    PROCMINE_RETURN_NOT_OK(FinishCurrent());
    return stats_;
  }

 private:
  Status FinishCurrent() {
    if (current_ == nullptr) return Status::OK();
    PROCMINE_ASSIGN_OR_RETURN(Execution exec, current_->Finish(dict_));
    finished_.insert(current_->name());
    current_.reset();
    ++stats_.executions;
    return callback_(exec, dict_);
  }

  const ExecutionCallback& callback_;
  StreamingStats stats_;
  ActivityDictionary dict_;
  std::unordered_set<std::string> finished_;
  std::unique_ptr<InstanceAssembler> current_;
  std::vector<std::string_view> fields_;
};

}  // namespace

Result<StreamingStats> StreamLog(std::istream* input,
                                 const ExecutionCallback& callback) {
  StreamParser parser(callback);
  std::string line;
  while (std::getline(*input, line)) {
    PROCMINE_RETURN_NOT_OK(parser.ProcessLine(line));
  }
  if (input->bad()) return Status::IOError("stream read failed");
  return parser.Finish();
}

Result<StreamingStats> StreamLogFile(const std::string& path,
                                     const ExecutionCallback& callback) {
  PROCMINE_SPAN("log.stream_mmap");
  PROCMINE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  StreamParser parser(callback);
  std::string_view data = file.data();
  size_t pos = 0;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) eol = data.size();
    PROCMINE_RETURN_NOT_OK(parser.ProcessLine(data.substr(pos, eol - pos)));
    pos = eol + 1;
  }
  return parser.Finish();
}

}  // namespace procmine
