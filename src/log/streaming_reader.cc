#include "log/streaming_reader.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace procmine {

namespace {

/// Accumulates the events of one process instance and assembles the
/// Execution when the group ends.
class InstanceAssembler {
 public:
  explicit InstanceAssembler(std::string name) : name_(std::move(name)) {}

  Status Add(ActivityId activity, bool is_start, int64_t timestamp,
             std::vector<int64_t> output, ActivityDictionary* dict) {
    if (is_start) {
      open_[activity].push_back(timestamp);
      return Status::OK();
    }
    auto it = open_.find(activity);
    if (it == open_.end() || it->second.empty()) {
      return Status::InvalidArgument(
          StrFormat("execution '%s': END without START for '%s'",
                    name_.c_str(), dict->Name(activity).c_str()));
    }
    ActivityInstance inst;
    inst.activity = activity;
    inst.start = it->second.front();
    it->second.pop_front();
    inst.end = timestamp;
    inst.output = std::move(output);
    if (inst.end < inst.start) {
      return Status::InvalidArgument(
          StrFormat("execution '%s': negative duration for '%s'",
                    name_.c_str(), dict->Name(activity).c_str()));
    }
    instances_.push_back(std::move(inst));
    return Status::OK();
  }

  Result<Execution> Finish(const ActivityDictionary& dict) {
    for (const auto& [activity, queue] : open_) {
      if (!queue.empty()) {
        return Status::InvalidArgument(
            StrFormat("execution '%s': START without END for '%s'",
                      name_.c_str(), dict.Name(activity).c_str()));
      }
    }
    std::stable_sort(instances_.begin(), instances_.end(),
                     [](const ActivityInstance& a, const ActivityInstance& b) {
                       return a.start < b.start;
                     });
    Execution exec(name_);
    for (ActivityInstance& inst : instances_) exec.Append(std::move(inst));
    return exec;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::unordered_map<ActivityId, std::deque<int64_t>> open_;
  std::vector<ActivityInstance> instances_;
};

}  // namespace

Result<StreamingStats> StreamLog(std::istream* input,
                                 const ExecutionCallback& callback) {
  StreamingStats stats;
  ActivityDictionary dict;
  std::unordered_set<std::string> finished;
  std::unique_ptr<InstanceAssembler> current;
  std::string line;

  auto finish_current = [&]() -> Status {
    if (current == nullptr) return Status::OK();
    PROCMINE_ASSIGN_OR_RETURN(Execution exec, current->Finish(dict));
    finished.insert(current->name());
    current.reset();
    ++stats.executions;
    return callback(exec, dict);
  };

  while (std::getline(*input, line)) {
    ++stats.lines;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("line %lld: expected at least 4 fields",
                    static_cast<long long>(stats.lines)));
    }
    const std::string& instance = fields[0];
    bool is_start = fields[2] == "START";
    if (!is_start && fields[2] != "END") {
      return Status::InvalidArgument(
          StrFormat("line %lld: bad event type '%s'",
                    static_cast<long long>(stats.lines), fields[2].c_str()));
    }
    auto timestamp = ParseInt64(fields[3]);
    if (!timestamp.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: bad timestamp",
                    static_cast<long long>(stats.lines)));
    }
    std::vector<int64_t> output;
    for (size_t i = 4; i < fields.size(); ++i) {
      PROCMINE_ASSIGN_OR_RETURN(int64_t value, ParseInt64(fields[i]));
      output.push_back(value);
    }

    if (current == nullptr || current->name() != instance) {
      if (finished.count(instance) > 0) {
        return Status::InvalidArgument(StrFormat(
            "line %lld: events of instance '%s' are not contiguous",
            static_cast<long long>(stats.lines), instance.c_str()));
      }
      PROCMINE_RETURN_NOT_OK(finish_current());
      current = std::make_unique<InstanceAssembler>(instance);
    }
    ++stats.events;
    PROCMINE_RETURN_NOT_OK(current->Add(dict.Intern(fields[1]), is_start,
                                        *timestamp, std::move(output),
                                        &dict));
  }
  if (input->bad()) return Status::IOError("stream read failed");
  PROCMINE_RETURN_NOT_OK(finish_current());
  return stats;
}

Result<StreamingStats> StreamLogFile(const std::string& path,
                                     const ExecutionCallback& callback) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);
  return StreamLog(&file, callback);
}

}  // namespace procmine
