#include "log/reader.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "log/event_assembly.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/mapped_file.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace procmine {

Result<std::vector<Event>> LogReader::ParseEvents(const std::string& text) {
  std::vector<Event> events;
  std::istringstream stream(text);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("line %lld: expected at least 4 fields, got %zu",
                    static_cast<long long>(line_no), fields.size()));
    }
    Event event;
    event.process_instance = fields[0];
    event.activity = fields[1];
    if (fields[2] == "START") {
      event.type = EventType::kStart;
    } else if (fields[2] == "END") {
      event.type = EventType::kEnd;
    } else {
      return Status::InvalidArgument(
          StrFormat("line %lld: event type must be START or END, got '%s'",
                    static_cast<long long>(line_no), fields[2].c_str()));
    }
    auto ts = ParseInt64(fields[3]);
    if (!ts.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: bad timestamp: %s",
                    static_cast<long long>(line_no),
                    ts.status().message().c_str()));
    }
    event.timestamp = *ts;
    if (fields.size() > 4) {
      if (event.type == EventType::kStart) {
        return Status::InvalidArgument(StrFormat(
            "line %lld: output parameters are only valid on END events",
            static_cast<long long>(line_no)));
      }
      for (size_t i = 4; i < fields.size(); ++i) {
        auto value = ParseInt64(fields[i]);
        if (!value.ok()) {
          return Status::InvalidArgument(
              StrFormat("line %lld: bad output parameter '%s'",
                        static_cast<long long>(line_no), fields[i].c_str()));
        }
        event.output.push_back(*value);
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

Result<EventLog> LogReader::ReadString(const std::string& text) {
  PROCMINE_ASSIGN_OR_RETURN(std::vector<Event> events, ParseEvents(text));
  return EventLog::FromEvents(events);
}

namespace {

/// One parser shard's output: compact events over shard-local name tables,
/// or the shard's first error. Name views alias the input text.
struct ParseShardResult {
  std::vector<std::string_view> instance_names;
  std::vector<std::string_view> activity_names;
  std::vector<CompactEvent> events;
  std::vector<int64_t> outputs;
  int64_t lines = 0;       // lines consumed (complete count iff no error)
  int64_t error_line = 0;  // shard-local 1-based line of the first error
  std::string error;       // message without the "line N: " prefix
  bool budget_tripped = false;  // memory high-water crossed mid-shard
  int64_t lines_dropped = 0;    // unconsumed lines after the budget trip

  // Recovery bookkeeping, shard-local: quarantine byte offsets are relative
  // to the chunk start and lines are shard-local; the merge rebases both.
  IngestionReport report;

  bool ok() const { return error.empty(); }
};

/// Handles one malformed line. Strict: records the shard error and returns
/// false (the shard stops). Otherwise: counts the skip (and captures the
/// raw line under kQuarantine) and returns true (the caller drops the line
/// and keeps scanning).
bool SkipOrFail(ParseShardResult* r, RecoveryPolicy policy,
                std::string_view error_class, std::string message,
                const char* line_begin, const char* line_end,
                std::string_view chunk) {
  if (policy == RecoveryPolicy::kStrict) {
    r->error_line = r->lines;
    r->error = std::move(message);
    return false;
  }
  ++r->report.lines_skipped;
  r->report.AddErrorClass(error_class);
  if (policy == RecoveryPolicy::kQuarantine) {
    QuarantineRecord record;
    record.byte_offset = line_begin - chunk.data();
    record.line = r->lines;
    record.error_class = std::string(error_class);
    record.raw.assign(line_begin, static_cast<size_t>(line_end - line_begin));
    r->report.quarantined.push_back(std::move(record));
  }
  return true;
}

int32_t InternView(std::unordered_map<std::string_view, int32_t>* ids,
                   std::vector<std::string_view>* names,
                   std::string_view name) {
  auto [it, inserted] =
      ids->emplace(name, static_cast<int32_t>(names->size()));
  if (inserted) names->push_back(name);
  return it->second;
}

/// The std::isspace C-locale set without going through libc: space plus
/// the \t..\r control range.
inline bool IsFieldSpace(char c) {
  return c == ' ' || static_cast<unsigned char>(c - '\t') <= '\r' - '\t';
}

/// Strict integer scan for the hot path: digits with an optional '-', fully
/// consumed. Anything else (leading '+', whitespace, junk) falls back to
/// ParseInt64, which owns the exact dialect and error wording.
inline bool FastParseInt(std::string_view s, int64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Tokenize-and-encode pass over one chunk of whole lines. Validation order
/// and error wording replicate LogReader::ParseEvents exactly; the events
/// themselves are dictionary-encoded on the fly instead of materialized.
/// The loop is a single pointer scan: fields are carved out in place, so no
/// per-line Trim/split containers and no string copies on the happy path.
/// Lines remaining in [p, end): newline count plus a final unterminated line.
int64_t CountRemainingLines(const char* p, const char* end) {
  int64_t lines = 0;
  while (p < end) {
    const char* nl = static_cast<const char*>(
        memchr(p, '\n', static_cast<size_t>(end - p)));
    ++lines;
    if (nl == nullptr) break;
    p = nl + 1;
  }
  return lines;
}

void ParseShard(std::string_view chunk, RecoveryPolicy policy,
                const LogParseOptions& options, ParseShardResult* r) {
  PROCMINE_SPAN("log.parse_shard");
  // ~32 bytes is a conservative guess at the bytes-per-event line; a low
  // guess only costs a few vector doublings.
  r->events.reserve(chunk.size() / 32 + 1);
  std::unordered_map<std::string_view, int32_t> instance_ids;
  std::unordered_map<std::string_view, int32_t> activity_ids;
  // Consecutive lines usually repeat the instance (executions are written
  // contiguously) and often the activity (a START/END pair); a one-entry
  // cache skips the hash lookup for those runs.
  std::string_view last_instance, last_activity;
  int32_t last_instance_id = -1, last_activity_id = -1;
  ProbeTicker probe(options.probe_period_lines);
  const char* p = chunk.data();
  const char* const end = p + chunk.size();
  while (p < end) {
    // The ingestion memory probe: amortized (an RSS read is a /proc round
    // trip), non-sticky (a spill can free memory and parsing resumes being
    // legal on a later run). On a trip the shard stops consuming input; RSS
    // is process-global, so every sibling shard trips within one period.
    if (options.budget != nullptr && probe.Due() &&
        options.budget->OverMemoryHighWater(options.memory_high_water)) {
      r->budget_tripped = true;
      r->lines_dropped = CountRemainingLines(p, end);
      if (policy != RecoveryPolicy::kStrict) {
        r->report.lines_skipped += r->lines_dropped;
        r->report.AddErrorClass("budget_truncated", r->lines_dropped);
      }
      break;
    }
    const char* nl = static_cast<const char*>(
        memchr(p, '\n', static_cast<size_t>(end - p)));
    const char* const line_end = nl != nullptr ? nl : end;
    const char* q = p;
    const char* const line_begin = p;
    p = nl != nullptr ? nl + 1 : end;
    ++r->lines;
    // Carve the four fixed fields.
    std::string_view fields[4];
    size_t nfields = 0;
    while (nfields < 4) {
      while (q < line_end && IsFieldSpace(*q)) ++q;
      if (q == line_end) break;
      const char* f = q;
      while (q < line_end && !IsFieldSpace(*q)) ++q;
      fields[nfields++] = std::string_view(f, static_cast<size_t>(q - f));
    }
    if (nfields == 0) continue;           // blank line
    if (fields[0][0] == '#') continue;    // comment
    if (nfields < 4) {                    // scanner drained the line
      if (SkipOrFail(r, policy, "short_line",
                     StrFormat("expected at least 4 fields, got %zu", nfields),
                     line_begin, line_end, chunk)) {
        continue;
      }
      return;
    }
    CompactEvent event;
    if (fields[2] == "START") {
      event.type = EventType::kStart;
    } else if (fields[2] == "END") {
      event.type = EventType::kEnd;
    } else {
      if (SkipOrFail(r, policy, "bad_event_type",
                     StrFormat("event type must be START or END, got '%s'",
                               std::string(fields[2]).c_str()),
                     line_begin, line_end, chunk)) {
        continue;
      }
      return;
    }
    if (!FastParseInt(fields[3], &event.timestamp)) {
      auto ts = ParseInt64(fields[3]);
      if (!ts.ok()) {
        if (SkipOrFail(r, policy, "bad_timestamp",
                       StrFormat("bad timestamp: %s",
                                 ts.status().message().c_str()),
                       line_begin, line_end, chunk)) {
          continue;
        }
        return;
      }
      event.timestamp = *ts;
    }
    // Any remaining tokens are output parameters, parsed as encountered.
    event.output_begin = static_cast<uint32_t>(r->outputs.size());
    bool line_failed = false;
    for (;;) {
      while (q < line_end && IsFieldSpace(*q)) ++q;
      if (q == line_end) break;
      const char* f = q;
      while (q < line_end && !IsFieldSpace(*q)) ++q;
      std::string_view token(f, static_cast<size_t>(q - f));
      if (event.output_count == 0 && event.type == EventType::kStart) {
        if (SkipOrFail(r, policy, "output_on_start",
                       "output parameters are only valid on END events",
                       line_begin, line_end, chunk)) {
          line_failed = true;
          break;
        }
        return;
      }
      int64_t value;
      if (!FastParseInt(token, &value)) {
        auto parsed = ParseInt64(token);
        if (!parsed.ok()) {
          if (SkipOrFail(r, policy, "bad_output",
                         StrFormat("bad output parameter '%s'",
                                   std::string(token).c_str()),
                         line_begin, line_end, chunk)) {
            line_failed = true;
            break;
          }
          return;
        }
        value = *parsed;
      }
      r->outputs.push_back(value);
      ++event.output_count;
    }
    if (line_failed) {
      // Unwind output values the dropped line already pooled.
      r->outputs.resize(event.output_begin);
      continue;
    }
    if (fields[0] == last_instance) {
      event.instance = last_instance_id;
    } else {
      event.instance =
          InternView(&instance_ids, &r->instance_names, fields[0]);
      last_instance = fields[0];
      last_instance_id = event.instance;
    }
    if (fields[1] == last_activity) {
      event.activity = last_activity_id;
    } else {
      event.activity =
          InternView(&activity_ids, &r->activity_names, fields[1]);
      last_activity = fields[1];
      last_activity_id = event.activity;
    }
    r->events.push_back(event);
  }
  r->report.lines_total = r->lines + r->lines_dropped;
  r->report.events_parsed = static_cast<int64_t>(r->events.size());
}

/// Cuts `data` into `num_shards` ranges aligned on line starts. Boundary
/// rule: the byte at offset i*size/num_shards belongs to the shard that owns
/// the start of its line, so every line lands in exactly one shard and the
/// cut points are a pure function of (size, num_shards) — independent of
/// thread scheduling.
std::vector<std::string_view> SplitChunksAtLines(std::string_view data,
                                                 size_t num_shards) {
  std::vector<size_t> starts;
  starts.reserve(num_shards + 1);
  starts.push_back(0);
  for (size_t i = 1; i < num_shards; ++i) {
    size_t raw = data.size() / num_shards * i;
    if (raw == 0) {
      starts.push_back(0);
      continue;
    }
    size_t nl = data.find('\n', raw - 1);
    starts.push_back(nl == std::string_view::npos ? data.size() : nl + 1);
  }
  starts.push_back(data.size());
  std::vector<std::string_view> chunks;
  chunks.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    chunks.push_back(data.substr(starts[i], starts[i + 1] - starts[i]));
  }
  return chunks;
}

}  // namespace

Result<EventLog> LogReader::ParseText(std::string_view text,
                                      const LogParseOptions& options) {
  int threads = ResolveThreadCount(options.num_threads);
  // Under min_shard_bytes per extra shard the merge overhead outweighs the
  // parallelism; the cut points stay deterministic because they depend only
  // on the input size and the options, never on the schedule.
  size_t per_shard = std::max<size_t>(1, options.min_shard_bytes);
  size_t num_shards = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(threads),
                          text.size() / per_shard + 1));
  std::vector<ParseShardResult> shards(num_shards);
  std::vector<std::string_view> chunks = SplitChunksAtLines(text, num_shards);
  if (num_shards == 1) {
    ParseShard(chunks[0], options.recovery, options, &shards[0]);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(num_shards, [&](size_t, size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) {
        ParseShard(chunks[s], options.recovery, options, &shards[s]);
      }
    });
  }

  // An ingestion budget trip outranks per-line errors: under kStrict the
  // parse cannot finish inside the budget at all, so point at the
  // out-of-core path; in recovery modes the unparsed tail was dropped and
  // the cut is recorded as a degradation.
  bool budget_tripped = false;
  int64_t budget_lines_dropped = 0;
  for (const ParseShardResult& shard : shards) {
    budget_tripped = budget_tripped || shard.budget_tripped;
    budget_lines_dropped += shard.lines_dropped;
  }
  if (budget_tripped) {
    if (options.recovery == RecoveryPolicy::kStrict) {
      return Status::FailedPrecondition(StrFormat(
          "memory budget high-water mark crossed while parsing (%lld lines "
          "unread); mine from a segment store (--spill-dir / synth "
          "--stream-out) or raise --max-memory-mb",
          static_cast<long long>(budget_lines_dropped)));
    }
    if (options.degradation != nullptr && !options.degradation->degraded) {
      options.degradation->degraded = true;
      options.degradation->resource = BudgetResource::kMemory;
      options.degradation->cut_phase = "log.parse";
      options.degradation->dropped = StrFormat(
          "%lld lines beyond the ingestion memory high-water mark dropped",
          static_cast<long long>(budget_lines_dropped));
    }
  }

  // First error in file order wins: shards scan disjoint ranges in file
  // order, so it is the lowest-indexed erroring shard's error, offset by the
  // (complete) line counts of the shards before it. (Recovery-mode shards
  // never set an error.)
  int64_t line_offset = 0;
  for (const ParseShardResult& shard : shards) {
    if (!shard.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: %s",
                    static_cast<long long>(line_offset + shard.error_line),
                    shard.error.c_str()));
    }
    line_offset += shard.lines;
  }

  // Fold shard recovery reports in file order, rebasing each shard's
  // quarantine records from chunk-local to file-absolute coordinates. The
  // result is a pure function of the input bytes — shard count invisible.
  if (options.report != nullptr) {
    options.report->policy = options.recovery;
    int64_t lines_before = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      IngestionReport shard_report = std::move(shards[s].report);
      const int64_t chunk_base =
          chunks[s].empty() ? 0 : chunks[s].data() - text.data();
      for (QuarantineRecord& record : shard_report.quarantined) {
        record.byte_offset += chunk_base;
        record.line += lines_before;
      }
      lines_before += shards[s].lines;
      options.report->Merge(shard_report);
    }
  }

  // Deterministic merge: remap shard-local ids into global tables in shard
  // order. Global id assignment is first-appearance order over the
  // concatenated shards — a pure function of the input bytes.
  CompactEventBatch batch;
  if (num_shards == 1) {
    // The identity remap: a single shard's first-appearance order IS the
    // global order, so its tables move over untouched.
    batch.instance_names = std::move(shards[0].instance_names);
    batch.activity_names = std::move(shards[0].activity_names);
    batch.events = std::move(shards[0].events);
    batch.outputs = std::move(shards[0].outputs);
    return AssembleEventLog(batch,
                            AssemblyRecovery{options.recovery, options.report});
  }
  {
    size_t total_events = 0;
    size_t total_outputs = 0;
    for (const ParseShardResult& shard : shards) {
      total_events += shard.events.size();
      total_outputs += shard.outputs.size();
    }
    batch.events.reserve(total_events);
    batch.outputs.reserve(total_outputs);
  }
  std::unordered_map<std::string_view, int32_t> instance_ids;
  std::unordered_map<std::string_view, int32_t> activity_ids;
  std::vector<int32_t> instance_remap;
  std::vector<int32_t> activity_remap;
  for (const ParseShardResult& shard : shards) {
    instance_remap.clear();
    activity_remap.clear();
    for (std::string_view name : shard.instance_names) {
      instance_remap.push_back(
          InternView(&instance_ids, &batch.instance_names, name));
    }
    for (std::string_view name : shard.activity_names) {
      activity_remap.push_back(
          InternView(&activity_ids, &batch.activity_names, name));
    }
    const uint32_t output_base = static_cast<uint32_t>(batch.outputs.size());
    batch.outputs.insert(batch.outputs.end(), shard.outputs.begin(),
                         shard.outputs.end());
    for (CompactEvent event : shard.events) {
      event.instance = instance_remap[static_cast<size_t>(event.instance)];
      event.activity = activity_remap[static_cast<size_t>(event.activity)];
      event.output_begin += output_base;
      batch.events.push_back(event);
    }
  }
  return AssembleEventLog(batch,
                          AssemblyRecovery{options.recovery, options.report});
}

Result<EventLog> LogReader::ReadFile(const std::string& path,
                                     const LogParseOptions& options) {
  PROCMINE_SPAN("log.read_mmap");
  PROCMINE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  static obs::Counter* bytes =
      obs::MetricsRegistry::Get().GetCounter("log.bytes_read");
  bytes->Add(static_cast<int64_t>(file.size()));
  Result<EventLog> log = ParseText(file.data(), options);
  if (log.ok()) {
    static obs::Counter* read =
        obs::MetricsRegistry::Get().GetCounter("log.executions_read");
    read->Add(static_cast<int64_t>(log->num_executions()));
    PROCMINE_LOG(Debug) << "read " << log->num_executions()
                        << " executions over " << log->num_activities()
                        << " activities from " << path
                        << (file.is_mapped() ? " (mmap)" : " (buffered)");
  }
  return log;
}

}  // namespace procmine
