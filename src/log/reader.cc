#include "log/reader.h"

#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace procmine {

Result<std::vector<Event>> LogReader::ParseEvents(const std::string& text) {
  std::vector<Event> events;
  std::istringstream stream(text);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("line %lld: expected at least 4 fields, got %zu",
                    static_cast<long long>(line_no), fields.size()));
    }
    Event event;
    event.process_instance = fields[0];
    event.activity = fields[1];
    if (fields[2] == "START") {
      event.type = EventType::kStart;
    } else if (fields[2] == "END") {
      event.type = EventType::kEnd;
    } else {
      return Status::InvalidArgument(
          StrFormat("line %lld: event type must be START or END, got '%s'",
                    static_cast<long long>(line_no), fields[2].c_str()));
    }
    auto ts = ParseInt64(fields[3]);
    if (!ts.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %lld: bad timestamp: %s",
                    static_cast<long long>(line_no),
                    ts.status().message().c_str()));
    }
    event.timestamp = *ts;
    if (fields.size() > 4) {
      if (event.type == EventType::kStart) {
        return Status::InvalidArgument(StrFormat(
            "line %lld: output parameters are only valid on END events",
            static_cast<long long>(line_no)));
      }
      for (size_t i = 4; i < fields.size(); ++i) {
        auto value = ParseInt64(fields[i]);
        if (!value.ok()) {
          return Status::InvalidArgument(
              StrFormat("line %lld: bad output parameter '%s'",
                        static_cast<long long>(line_no), fields[i].c_str()));
        }
        event.output.push_back(*value);
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

Result<EventLog> LogReader::ReadString(const std::string& text) {
  PROCMINE_ASSIGN_OR_RETURN(std::vector<Event> events, ParseEvents(text));
  return EventLog::FromEvents(events);
}

Result<EventLog> LogReader::ReadFile(const std::string& path) {
  PROCMINE_SPAN("log.read_text");
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IOError("read failed: " + path);
  Result<EventLog> log = ReadString(buffer.str());
  if (log.ok()) {
    static obs::Counter* read =
        obs::MetricsRegistry::Get().GetCounter("log.executions_read");
    read->Add(static_cast<int64_t>(log->num_executions()));
    PROCMINE_LOG(Debug) << "read " << log->num_executions()
                        << " executions over " << log->num_activities()
                        << " activities from " << path;
  }
  return log;
}

}  // namespace procmine
