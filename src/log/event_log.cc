#include "log/event_log.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "util/strings.h"

namespace procmine {

EventLog EventLog::FromCompactStrings(const std::vector<std::string>& execs) {
  std::vector<std::vector<std::string>> sequences;
  sequences.reserve(execs.size());
  for (const std::string& s : execs) {
    std::vector<std::string> seq;
    seq.reserve(s.size());
    for (char c : s) seq.emplace_back(1, c);
    sequences.push_back(std::move(seq));
  }
  return FromSequences(sequences);
}

EventLog EventLog::FromSequences(
    const std::vector<std::vector<std::string>>& execs) {
  EventLog log;
  int64_t counter = 0;
  for (const auto& seq : execs) {
    std::vector<ActivityId> ids;
    ids.reserve(seq.size());
    for (const std::string& name : seq) ids.push_back(log.dict_.Intern(name));
    log.AddExecution(Execution::FromSequence(
        StrFormat("exec_%lld", static_cast<long long>(counter++)), ids));
  }
  return log;
}

Result<EventLog> EventLog::FromEvents(const std::vector<Event>& events) {
  // Group events by process instance, preserving log order within a group.
  // std::map keeps instance iteration deterministic.
  std::map<std::string, std::vector<const Event*>> by_instance;
  for (const Event& e : events) {
    by_instance[e.process_instance].push_back(&e);
  }

  EventLog log;
  for (auto& [instance_name, records] : by_instance) {
    std::stable_sort(records.begin(), records.end(),
                     [](const Event* a, const Event* b) {
                       if (a->timestamp != b->timestamp) {
                         return a->timestamp < b->timestamp;
                       }
                       // START before END at equal timestamps, so an
                       // instantaneous activity pairs with itself.
                       return a->type < b->type;
                     });
    // FIFO queues of open START events per activity name.
    std::unordered_map<std::string, std::deque<const Event*>> open;
    std::vector<ActivityInstance> instances;
    for (const Event* e : records) {
      if (e->type == EventType::kStart) {
        open[e->activity].push_back(e);
        continue;
      }
      auto it = open.find(e->activity);
      if (it == open.end() || it->second.empty()) {
        return Status::InvalidArgument(
            StrFormat("execution '%s': END without START for activity '%s'",
                      instance_name.c_str(), e->activity.c_str()));
      }
      const Event* start = it->second.front();
      it->second.pop_front();
      ActivityInstance inst;
      inst.activity = log.dict_.Intern(e->activity);
      inst.start = start->timestamp;
      inst.end = e->timestamp;
      inst.output = e->output;
      instances.push_back(std::move(inst));
    }
    for (const auto& [name, queue] : open) {
      if (!queue.empty()) {
        return Status::InvalidArgument(
            StrFormat("execution '%s': START without END for activity '%s'",
                      instance_name.c_str(), name.c_str()));
      }
    }
    std::stable_sort(instances.begin(), instances.end(),
                     [](const ActivityInstance& a, const ActivityInstance& b) {
                       return a.start < b.start;
                     });
    Execution exec(instance_name);
    for (auto& inst : instances) exec.Append(std::move(inst));
    log.AddExecution(std::move(exec));
  }
  return log;
}

std::vector<ExecutionSpan> EventLog::Shards(size_t num_shards) const {
  std::vector<ExecutionSpan> spans;
  const size_t m = executions_.size();
  if (m == 0 || num_shards == 0) return spans;
  num_shards = std::min(num_shards, m);
  // Greedy sweep: close a shard once it holds its proportional share of the
  // remaining instances, or once the tail must become one-execution shards.
  // Every shard ends up with at least one execution.
  int64_t remaining = TotalInstances();
  size_t begin = 0;
  int64_t acc = 0;
  size_t shards_left = num_shards;
  for (size_t i = 0; i < m && shards_left > 1; ++i) {
    acc += static_cast<int64_t>(executions_[i].size());
    const size_t execs_left = m - (i + 1);
    const bool quota_met =
        acc * static_cast<int64_t>(shards_left) >= remaining;
    if (quota_met || execs_left == shards_left - 1) {
      spans.push_back(ExecutionSpan{begin, i + 1});
      begin = i + 1;
      remaining -= acc;
      acc = 0;
      --shards_left;
    }
  }
  spans.push_back(ExecutionSpan{begin, m});
  return spans;
}

int64_t EventLog::TotalInstances() const {
  int64_t n = 0;
  for (const Execution& e : executions_) n += static_cast<int64_t>(e.size());
  return n;
}

std::vector<Event> EventLog::ToEvents() const {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(TotalInstances()) * 2);
  for (const Execution& exec : executions_) {
    // Emit START/END pairs; merge-order by timestamp within the execution.
    std::vector<Event> local;
    for (const ActivityInstance& inst : exec.instances()) {
      const std::string& name = dict_.Name(inst.activity);
      local.push_back(Event{exec.name(), name, EventType::kStart, inst.start,
                            {}});
      local.push_back(
          Event{exec.name(), name, EventType::kEnd, inst.end, inst.output});
    }
    std::stable_sort(local.begin(), local.end(),
                     [](const Event& a, const Event& b) {
                       if (a.timestamp != b.timestamp) {
                         return a.timestamp < b.timestamp;
                       }
                       return a.type < b.type;
                     });
    for (auto& e : local) events.push_back(std::move(e));
  }
  return events;
}

}  // namespace procmine
