#include "log/event_log.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "log/event_assembly.h"
#include "util/strings.h"

namespace procmine {

EventLog EventLog::FromCompactStrings(const std::vector<std::string>& execs) {
  std::vector<std::vector<std::string>> sequences;
  sequences.reserve(execs.size());
  for (const std::string& s : execs) {
    std::vector<std::string> seq;
    seq.reserve(s.size());
    for (char c : s) seq.emplace_back(1, c);
    sequences.push_back(std::move(seq));
  }
  return FromSequences(sequences);
}

EventLog EventLog::FromSequences(
    const std::vector<std::vector<std::string>>& execs) {
  EventLog log;
  int64_t counter = 0;
  for (const auto& seq : execs) {
    std::vector<ActivityId> ids;
    ids.reserve(seq.size());
    for (const std::string& name : seq) ids.push_back(log.dict_.Intern(name));
    log.AddExecution(Execution::FromSequence(
        StrFormat("exec_%lld", static_cast<long long>(counter++)), ids));
  }
  return log;
}

Result<EventLog> EventLog::FromEvents(const std::vector<Event>& events) {
  // Dictionary-encode into a compact batch (string_view keys borrow from
  // `events`, so no per-event string is built for the lookups), then run the
  // canonical assembly pass shared with the zero-copy file parser.
  CompactEventBatch batch;
  batch.events.reserve(events.size());
  std::unordered_map<std::string_view, int32_t> instance_ids;
  std::unordered_map<std::string_view, int32_t> activity_ids;
  instance_ids.reserve(events.size());
  auto intern = [](std::unordered_map<std::string_view, int32_t>* ids,
                   std::vector<std::string_view>* names,
                   std::string_view name) {
    auto [it, inserted] =
        ids->emplace(name, static_cast<int32_t>(names->size()));
    if (inserted) names->push_back(name);
    return it->second;
  };
  for (const Event& e : events) {
    CompactEvent compact;
    compact.instance = intern(&instance_ids, &batch.instance_names,
                              e.process_instance);
    compact.activity = intern(&activity_ids, &batch.activity_names,
                              e.activity);
    compact.type = e.type;
    compact.timestamp = e.timestamp;
    compact.output_begin = static_cast<uint32_t>(batch.outputs.size());
    compact.output_count = static_cast<uint32_t>(e.output.size());
    batch.outputs.insert(batch.outputs.end(), e.output.begin(),
                         e.output.end());
    batch.events.push_back(compact);
  }
  return AssembleEventLog(batch);
}

std::vector<ExecutionSpan> EventLog::Shards(size_t num_shards) const {
  std::vector<ExecutionSpan> spans;
  const size_t m = executions_.size();
  if (m == 0 || num_shards == 0) return spans;
  num_shards = std::min(num_shards, m);
  // Greedy sweep: close a shard once it holds its proportional share of the
  // remaining instances, or once the tail must become one-execution shards.
  // Every shard ends up with at least one execution.
  int64_t remaining = TotalInstances();
  size_t begin = 0;
  int64_t acc = 0;
  size_t shards_left = num_shards;
  for (size_t i = 0; i < m && shards_left > 1; ++i) {
    acc += static_cast<int64_t>(executions_[i].size());
    const size_t execs_left = m - (i + 1);
    const bool quota_met =
        acc * static_cast<int64_t>(shards_left) >= remaining;
    if (quota_met || execs_left == shards_left - 1) {
      spans.push_back(ExecutionSpan{begin, i + 1});
      begin = i + 1;
      remaining -= acc;
      acc = 0;
      --shards_left;
    }
  }
  spans.push_back(ExecutionSpan{begin, m});
  return spans;
}

int64_t EventLog::TotalInstances() const {
  int64_t n = 0;
  for (const Execution& e : executions_) n += static_cast<int64_t>(e.size());
  return n;
}

std::vector<Event> EventLog::ToEvents() const {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(TotalInstances()) * 2);
  for (const Execution& exec : executions_) {
    // Emit START/END pairs; merge-order by timestamp within the execution.
    std::vector<Event> local;
    for (const ActivityInstance& inst : exec.instances()) {
      const std::string& name = dict_.Name(inst.activity);
      local.push_back(Event{exec.name(), name, EventType::kStart, inst.start,
                            {}});
      local.push_back(
          Event{exec.name(), name, EventType::kEnd, inst.end, inst.output});
    }
    std::stable_sort(local.begin(), local.end(),
                     [](const Event& a, const Event& b) {
                       if (a.timestamp != b.timestamp) {
                         return a.timestamp < b.timestamp;
                       }
                       return a.type < b.type;
                     });
    for (auto& e : local) events.push_back(std::move(e));
  }
  return events;
}

}  // namespace procmine
