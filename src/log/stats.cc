#include "log/stats.h"

#include <algorithm>
#include <sstream>

#include "log/writer.h"

namespace procmine {

LogStats ComputeLogStats(const EventLog& log) {
  LogStats stats;
  stats.num_executions = static_cast<int64_t>(log.num_executions());
  stats.num_activities = log.num_activities();
  stats.executions_containing.assign(
      static_cast<size_t>(log.num_activities()), 0);

  std::vector<bool> seen(static_cast<size_t>(log.num_activities()));
  bool first = true;
  for (const Execution& exec : log.executions()) {
    int64_t len = static_cast<int64_t>(exec.size());
    stats.total_instances += len;
    if (first) {
      stats.min_length = stats.max_length = len;
      first = false;
    } else {
      stats.min_length = std::min(stats.min_length, len);
      stats.max_length = std::max(stats.max_length, len);
    }
    std::fill(seen.begin(), seen.end(), false);
    for (const ActivityInstance& inst : exec.instances()) {
      size_t a = static_cast<size_t>(inst.activity);
      if (!seen[a]) {
        seen[a] = true;
        ++stats.executions_containing[a];
      }
    }
  }
  if (stats.num_executions > 0) {
    stats.mean_length = static_cast<double>(stats.total_instances) /
                        static_cast<double>(stats.num_executions);
  }
  stats.serialized_bytes = LogWriter::SerializedBytes(log);
  return stats;
}

std::string LogStats::ToString(const ActivityDictionary& dict) const {
  std::ostringstream out;
  out << "executions=" << num_executions << " activities=" << num_activities
      << " instances=" << total_instances << " exec_len=[" << min_length
      << "," << max_length << "] mean=" << mean_length
      << " bytes=" << serialized_bytes << "\n";
  for (size_t a = 0; a < executions_containing.size(); ++a) {
    out << "  " << dict.Name(static_cast<ActivityId>(a)) << ": in "
        << executions_containing[a] << " executions\n";
  }
  return out.str();
}

}  // namespace procmine
