// StreamingLogReader: bounded-memory scan of very large text logs.
//
// The paper's 10000-execution logs ran to 107 MB; materializing an EventLog
// needs all of it in memory. This reader scans the text format
// execution-group by execution-group, invoking a callback as each process
// instance completes, holding only the open instances — this is how the
// IncrementalMiner consumes logs that never fit in memory.
//
// Requirement on the input (met by LogWriter and the engine): all events of
// one process instance are contiguous in the file. Interleaved instances
// are detected and reported as an error.

#ifndef PROCMINE_LOG_STREAMING_READER_H_
#define PROCMINE_LOG_STREAMING_READER_H_

#include <functional>
#include <istream>
#include <string>

#include "log/event_log.h"
#include "log/recovery.h"
#include "util/result.h"

namespace procmine {

/// Callback invoked per completed execution; ids refer to `dict`, which
/// grows as new activity names appear. Return a non-OK status to abort the
/// scan (propagated to the caller).
using ExecutionCallback =
    std::function<Status(const Execution&, const ActivityDictionary& dict)>;

/// Statistics of one streaming pass.
struct StreamingStats {
  int64_t executions = 0;
  int64_t events = 0;
  int64_t lines = 0;
};

/// Recovery knobs for the streaming scan.
struct StreamOptions {
  /// Under kSkip / kQuarantine: malformed lines are dropped (error classes
  /// short_line, bad_event_type, bad_timestamp, bad_output,
  /// non_contiguous_instance), and an execution whose events do not pair is
  /// poisoned — its callback never fires and it is counted as dropped
  /// (end_without_start, negative_duration, start_without_end).
  RecoveryPolicy recovery = RecoveryPolicy::kStrict;
  IngestionReport* report = nullptr;
};

/// Scans `input` (text event format) and invokes `callback` per execution.
Result<StreamingStats> StreamLog(std::istream* input,
                                 const ExecutionCallback& callback);
Result<StreamingStats> StreamLog(std::istream* input,
                                 const ExecutionCallback& callback,
                                 const StreamOptions& options);

/// File variant: memory-maps `path` and scans it line by line without
/// copying (the OS pages the mapping in and out, so memory stays bounded
/// even for logs far larger than RAM). Same callback semantics and error
/// messages as the istream path.
Result<StreamingStats> StreamLogFile(const std::string& path,
                                     const ExecutionCallback& callback);
Result<StreamingStats> StreamLogFile(const std::string& path,
                                     const ExecutionCallback& callback,
                                     const StreamOptions& options);

}  // namespace procmine

#endif  // PROCMINE_LOG_STREAMING_READER_H_
