// Log validation: structural checks run before mining. Section 6 of the
// paper discusses noisy logs; this module detects the *structurally* invalid
// records (unmatched events, inverted intervals, simultaneous starts) that
// should be rejected or repaired before the statistical noise handling runs.

#ifndef PROCMINE_LOG_VALIDATE_H_
#define PROCMINE_LOG_VALIDATE_H_

#include <string>
#include <vector>

#include "log/event.h"
#include "log/event_log.h"

namespace procmine {

/// One detected problem.
struct LogIssue {
  enum class Kind {
    kEndWithoutStart,
    kStartWithoutEnd,
    kNegativeDuration,
    kSimultaneousStart,   ///< two activities starting at the same instant
    kEmptyExecution,
  };
  Kind kind;
  std::string process_instance;
  std::string detail;
};

std::string ToString(LogIssue::Kind kind);

/// Checks raw events for pairing problems (before assembly).
std::vector<LogIssue> ValidateEvents(const std::vector<Event>& events);

/// Checks an assembled log for interval and ordering problems.
std::vector<LogIssue> ValidateLog(const EventLog& log);

}  // namespace procmine

#endif  // PROCMINE_LOG_VALIDATE_H_
