#include "log/segment_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/json.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace procmine {

namespace {

// Segment file layout:
//   "PMS1"                                  magic, 4 bytes
//   varint block_count                      --+
//   block_count x length-prefixed blocks      | payload (checksummed)
//                                           --+
//   fixed32 payload_size  fixed32 crc32c    footer, 8 bytes
constexpr char kSegmentMagic[4] = {'P', 'M', 'S', '1'};
constexpr size_t kFooterBytes = 8;
constexpr int kManifestSchemaVersion = 1;

// Decoded-size model for the resident cache and compression accounting:
// what one instance / one execution costs once expanded into an EventLog.
constexpr int64_t kDecodedBytesPerInstance =
    static_cast<int64_t>(sizeof(ActivityInstance));
constexpr int64_t kDecodedBytesPerExecution =
    static_cast<int64_t>(sizeof(Execution)) + 48;  // + small-string heap

Status MakeDirs(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty store directory");
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    partial.assign(dir, 0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(StrFormat("mkdir %s: %s", partial.c_str(),
                                       std::strerror(errno)));
    }
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError(
        StrFormat("store path %s is not a directory", dir.c_str()));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + std::string(kSegmentManifestName);
}

void EncodeBlock(const std::vector<Execution>& execs, size_t begin, size_t end,
                 std::string* out) {
  std::string b;
  uint64_t instances = 0;
  for (size_t i = begin; i < end; ++i) instances += execs[i].size();
  PutVarint64(&b, end - begin);
  PutVarint64(&b, instances);
  for (size_t i = begin; i < end; ++i) PutLengthPrefixed(&b, execs[i].name());
  for (size_t i = begin; i < end; ++i) PutVarint64(&b, execs[i].size());
  for (size_t i = begin; i < end; ++i) {
    for (const auto& inst : execs[i].instances()) {
      PutVarint64(&b, static_cast<uint64_t>(inst.activity));
    }
  }
  // Start times: one delta chain across the whole block (baseline 0), so
  // consecutive executions that jump back in time cost a small negative
  // zigzag delta instead of a 10-byte absolute.
  int64_t prev = 0;
  for (size_t i = begin; i < end; ++i) {
    for (const auto& inst : execs[i].instances()) {
      PutVarintSigned64(&b, inst.start - prev);
      prev = inst.start;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    for (const auto& inst : execs[i].instances()) {
      PutVarintSigned64(&b, inst.end - inst.start);
    }
  }
  // Outputs are sparse: (ordinal-delta, count, values) per instance that
  // has any, where ordinals index instances within the block.
  uint64_t entries = 0;
  for (size_t i = begin; i < end; ++i) {
    for (const auto& inst : execs[i].instances()) {
      entries += !inst.output.empty();
    }
  }
  PutVarint64(&b, entries);
  uint64_t ord = 0;
  uint64_t prev_ord = 0;
  bool first = true;
  for (size_t i = begin; i < end; ++i) {
    for (const auto& inst : execs[i].instances()) {
      if (!inst.output.empty()) {
        PutVarint64(&b, first ? ord : ord - prev_ord);
        first = false;
        prev_ord = ord;
        PutVarint64(&b, inst.output.size());
        for (int64_t v : inst.output) PutVarintSigned64(&b, v);
      }
      ++ord;
    }
  }
  PutLengthPrefixed(out, b);
}

Status DecodeBlockInto(std::string_view block, ActivityId num_activities,
                       std::vector<Execution>* out) {
  std::string_view c = block;
  PROCMINE_ASSIGN_OR_RETURN(uint64_t num_execs, GetVarint64(&c));
  PROCMINE_ASSIGN_OR_RETURN(uint64_t num_instances, GetVarint64(&c));
  // Every execution costs >= 2 bytes (name prefix + len) and every instance
  // >= 3 bytes (activity + start + duration), so declared counts beyond the
  // block size are corrupt, not just truncated.
  if (num_execs > block.size() || num_instances > block.size()) {
    return Status::DataLoss("block declares more entries than bytes");
  }
  std::vector<std::string_view> names(num_execs);
  for (uint64_t i = 0; i < num_execs; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(names[i], GetLengthPrefixed(&c));
  }
  std::vector<uint64_t> lens(num_execs);
  uint64_t len_sum = 0;
  for (uint64_t i = 0; i < num_execs; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(lens[i], GetVarint64(&c));
    // Bound every per-execution count by the declared total before summing:
    // arbitrary varints could otherwise wrap len_sum around to a value that
    // passes the aggregate check below while individual lens[i] send the
    // assembly loop out of the num_instances-sized columns.
    if (lens[i] > num_instances) {
      return Status::DataLoss(
          StrFormat("execution instance count %llu exceeds block total %llu",
                    static_cast<unsigned long long>(lens[i]),
                    static_cast<unsigned long long>(num_instances)));
    }
    len_sum += lens[i];
  }
  if (len_sum != num_instances) {
    return Status::DataLoss(
        StrFormat("block instance counts disagree: lens sum %lld, declared "
                  "%lld",
                  static_cast<long long>(len_sum),
                  static_cast<long long>(num_instances)));
  }
  std::vector<ActivityId> activities(num_instances);
  for (uint64_t i = 0; i < num_instances; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(uint64_t id, GetVarint64(&c));
    if (id >= static_cast<uint64_t>(num_activities)) {
      return Status::DataLoss(
          StrFormat("activity id %llu out of range (dictionary has %d)",
                    static_cast<unsigned long long>(id), num_activities));
    }
    activities[i] = static_cast<ActivityId>(id);
  }
  std::vector<int64_t> starts(num_instances);
  int64_t prev = 0;
  for (uint64_t i = 0; i < num_instances; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(int64_t delta, GetVarintSigned64(&c));
    prev += delta;
    starts[i] = prev;
  }
  std::vector<int64_t> durations(num_instances);
  for (uint64_t i = 0; i < num_instances; ++i) {
    PROCMINE_ASSIGN_OR_RETURN(durations[i], GetVarintSigned64(&c));
    if (durations[i] < 0) {
      return Status::DataLoss("negative duration in block");
    }
  }
  PROCMINE_ASSIGN_OR_RETURN(uint64_t entries, GetVarint64(&c));
  if (entries > num_instances) {
    return Status::DataLoss("more output entries than instances");
  }
  std::vector<std::vector<int64_t>> outputs(num_instances);
  uint64_t ord = 0;
  for (uint64_t e = 0; e < entries; ++e) {
    PROCMINE_ASSIGN_OR_RETURN(uint64_t delta, GetVarint64(&c));
    if (e == 0) {
      ord = delta;
    } else {
      if (delta == 0) return Status::DataLoss("output ordinals not increasing");
      ord += delta;
    }
    if (ord >= num_instances) {
      return Status::DataLoss("output ordinal out of range");
    }
    PROCMINE_ASSIGN_OR_RETURN(uint64_t nvals, GetVarint64(&c));
    if (nvals > c.size()) {
      return Status::DataLoss("output values overflow block");
    }
    outputs[ord].resize(nvals);
    for (uint64_t v = 0; v < nvals; ++v) {
      PROCMINE_ASSIGN_OR_RETURN(outputs[ord][v], GetVarintSigned64(&c));
    }
  }
  if (!c.empty()) return Status::DataLoss("trailing bytes in block");

  size_t at = 0;
  for (uint64_t i = 0; i < num_execs; ++i) {
    Execution exec{std::string(names[i])};
    int64_t prev_start = 0;
    for (uint64_t j = 0; j < lens[i]; ++j, ++at) {
      // Execution::Append CHECKs start-time order; a corrupt block must
      // surface as DataLoss, not a process abort.
      if (j > 0 && starts[at] < prev_start) {
        return Status::DataLoss("instance starts out of order in block");
      }
      prev_start = starts[at];
      exec.Append(ActivityInstance{activities[at], starts[at],
                                   starts[at] + durations[at],
                                   std::move(outputs[at])});
    }
    out->push_back(std::move(exec));
  }
  return Status::OK();
}

uint32_t ReadFixed32At(std::string_view bytes, size_t pos) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + 3]))
             << 24;
}

bool HasSegmentMagic(std::string_view bytes) {
  return bytes.size() >= 4 &&
         std::memcmp(bytes.data(), kSegmentMagic, 4) == 0;
}

}  // namespace

namespace segment_internal {

std::string EncodeSegment(const std::vector<Execution>& execs,
                          int64_t block_executions) {
  if (block_executions <= 0) block_executions = 1;
  std::string out;
  out.append(kSegmentMagic, 4);
  const size_t block = static_cast<size_t>(block_executions);
  const size_t num_blocks = execs.empty() ? 0 : (execs.size() + block - 1) / block;
  PutVarint64(&out, num_blocks);
  for (size_t begin = 0; begin < execs.size(); begin += block) {
    EncodeBlock(execs, begin, std::min(execs.size(), begin + block), &out);
  }
  const std::string_view payload =
      std::string_view(out).substr(4, out.size() - 4);
  const uint32_t crc = Crc32c(payload);
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed32(&out, crc);
  return out;
}

Status VerifySegmentChecksum(std::string_view bytes) {
  if (bytes.size() < 4 + kFooterBytes) {
    return Status::DataLoss("segment too short for magic and footer");
  }
  if (!HasSegmentMagic(bytes)) {
    return Status::DataLoss("bad segment magic");
  }
  const uint32_t payload_size = ReadFixed32At(bytes, bytes.size() - 8);
  const uint32_t crc = ReadFixed32At(bytes, bytes.size() - 4);
  if (static_cast<uint64_t>(payload_size) + 4 + kFooterBytes != bytes.size()) {
    return Status::DataLoss(
        StrFormat("segment size mismatch: footer says %u payload bytes, file "
                  "has %zu",
                  payload_size, bytes.size() - 4 - kFooterBytes));
  }
  const uint32_t actual = Crc32c(bytes.substr(4, payload_size));
  if (actual != crc) {
    return Status::DataLoss(StrFormat(
        "segment checksum mismatch: stored %08x, computed %08x", crc, actual));
  }
  return Status::OK();
}

Result<std::vector<Execution>> DecodeSegment(std::string_view bytes,
                                             ActivityId num_activities) {
  if (bytes.size() < 4 + kFooterBytes) {
    return Status::DataLoss("segment too short for magic and footer");
  }
  if (!HasSegmentMagic(bytes)) {
    return Status::DataLoss("bad segment magic");
  }
  const uint32_t payload_size = ReadFixed32At(bytes, bytes.size() - 8);
  const uint32_t crc = ReadFixed32At(bytes, bytes.size() - 4);
  if (static_cast<uint64_t>(payload_size) + 4 + kFooterBytes != bytes.size()) {
    return Status::DataLoss(
        StrFormat("segment size mismatch: footer says %u payload bytes, file "
                  "has %zu",
                  payload_size, bytes.size() - 4 - kFooterBytes));
  }
  const std::string_view payload = bytes.substr(4, payload_size);
  const uint32_t actual = Crc32c(payload);
  if (actual != crc) {
    return Status::DataLoss(StrFormat(
        "segment checksum mismatch: stored %08x, computed %08x", crc, actual));
  }
  std::string_view c = payload;
  PROCMINE_ASSIGN_OR_RETURN(uint64_t num_blocks, GetVarint64(&c));
  std::vector<Execution> execs;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    PROCMINE_ASSIGN_OR_RETURN(std::string_view block, GetLengthPrefixed(&c));
    PROCMINE_RETURN_NOT_OK(DecodeBlockInto(block, num_activities, &execs));
  }
  if (!c.empty()) return Status::DataLoss("trailing bytes after blocks");
  return execs;
}

SalvageResult SalvageSegment(std::string_view bytes,
                             ActivityId num_activities) {
  SalvageResult result;
  if (!HasSegmentMagic(bytes)) {
    result.clean = false;
    result.error_class =
        bytes.size() < 4 ? "truncated_body" : "semantic_error";
    result.dropped_bytes = static_cast<int64_t>(bytes.size());
    return result;
  }
  // Classify first: a file whose footer byte-range checks out but whose
  // checksum disagrees is corrupt-in-place (checksum_mismatch); anything
  // structurally short is a torn write (truncated_body).
  bool size_complete = false;
  bool crc_ok = false;
  if (bytes.size() >= 4 + kFooterBytes) {
    const uint32_t payload_size = ReadFixed32At(bytes, bytes.size() - 8);
    const uint32_t crc = ReadFixed32At(bytes, bytes.size() - 4);
    if (static_cast<uint64_t>(payload_size) + 4 + kFooterBytes ==
        bytes.size()) {
      size_complete = true;
      crc_ok = Crc32c(bytes.substr(4, payload_size)) == crc;
    }
  }
  const std::string_view body =
      size_complete ? bytes.substr(4, bytes.size() - 4 - kFooterBytes)
                    : bytes.substr(4);
  std::string_view c = body;
  auto fail = [&](std::string_view fallback_class) {
    result.clean = false;
    if (result.error_class.empty()) {
      if (size_complete && !crc_ok) {
        result.error_class = "checksum_mismatch";
      } else if (!size_complete) {
        result.error_class = "truncated_body";
      } else {
        result.error_class = std::string(fallback_class);
      }
    }
    result.dropped_bytes =
        static_cast<int64_t>(bytes.size()) -
        static_cast<int64_t>(body.size() - c.size()) - 4;
  };
  Result<uint64_t> num_blocks = GetVarint64(&c);
  if (!num_blocks.ok()) {
    fail("semantic_error");
    return result;
  }
  for (uint64_t b = 0; b < *num_blocks; ++b) {
    std::string_view checkpoint = c;
    Result<std::string_view> block = GetLengthPrefixed(&c);
    if (!block.ok()) {
      c = checkpoint;
      fail("truncated_body");
      return result;
    }
    std::vector<Execution> decoded;
    Status st = DecodeBlockInto(*block, num_activities, &decoded);
    if (!st.ok()) {
      c = checkpoint;
      fail("semantic_error");
      return result;
    }
    for (auto& exec : decoded) result.executions.push_back(std::move(exec));
  }
  if (!c.empty() || !size_complete || !crc_ok) {
    // All declared blocks decoded, but the envelope is still bad (extra
    // bytes, torn footer, or a checksum that flags corruption the block
    // decode happened not to trip over).
    fail(c.empty() ? "checksum_mismatch" : "semantic_error");
  }
  return result;
}

}  // namespace segment_internal

bool IsSegmentStoreDir(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  return FileExists(ManifestPath(path));
}

// ---------------------------------------------------------------------------
// Writer

Result<SegmentedLogWriter> SegmentedLogWriter::Create(
    const std::string& dir, const SegmentStoreOptions& options) {
  PROCMINE_RETURN_NOT_OK(MakeDirs(dir));
  if (FileExists(ManifestPath(dir))) {
    return Status::AlreadyExists(
        StrFormat("%s already holds a finished segment store", dir.c_str()));
  }
  if (options.target_segment_events < 2) {
    return Status::InvalidArgument("target_segment_events must be >= 2");
  }
  return SegmentedLogWriter(dir, options);
}

Status SegmentedLogWriter::Append(const Execution& exec,
                                  const ActivityDictionary& dict) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish on segment store");
  }
  if (&dict != last_source_) {
    remap_.clear();
    last_source_ = &dict;
  }
  // Source dictionaries only grow, so cached ids keep their mapping; new
  // slots start unmapped. Names are interned on FIRST USE, not per source
  // id: the store dictionary comes out in first-encounter order over the
  // event stream — the same order the text reader would intern the same
  // executions — so spilled and materialized logs agree on activity ids.
  if (remap_.size() < static_cast<size_t>(dict.size())) {
    remap_.resize(static_cast<size_t>(dict.size()), -1);
  }
  Execution copy{exec.name()};
  for (const auto& inst : exec.instances()) {
    ActivityId& mapped = remap_[static_cast<size_t>(inst.activity)];
    if (mapped >= 0 && dict.Name(inst.activity) != dict_.Name(mapped)) {
      // The remap cache is keyed on the source dictionary's address, which
      // an allocator can hand to a different dictionary after the first one
      // dies. A cached id whose names no longer agree proves that happened:
      // drop the whole cache and re-resolve by name.
      std::fill(remap_.begin(), remap_.end(), static_cast<ActivityId>(-1));
    }
    if (mapped < 0) mapped = dict_.Intern(dict.Name(inst.activity));
    copy.Append(ActivityInstance{mapped, inst.start, inst.end, inst.output});
  }
  pending_events_ += 2 * static_cast<int64_t>(exec.size());
  total_events_ += 2 * static_cast<int64_t>(exec.size());
  ++total_executions_;
  pending_.push_back(std::move(copy));
  if (pending_events_ >= options_.target_segment_events) return Seal();
  if (options_.budget != nullptr && probe_.Due() &&
      options_.budget->OverMemoryHighWater(options_.memory_high_water)) {
    static obs::Counter* spills =
        obs::MetricsRegistry::Get().GetCounter("segment.spill_seals");
    spills->Increment();
    ++spill_seals_;
    return Seal();
  }
  return Status::OK();
}

Status SegmentedLogWriter::AppendLog(const EventLog& log) {
  for (const Execution& exec : log.executions()) {
    PROCMINE_RETURN_NOT_OK(Append(exec, log.dictionary()));
  }
  return Status::OK();
}

Status SegmentedLogWriter::Seal() {
  if (pending_.empty()) return Status::OK();
  PROCMINE_SPAN("segment.seal");
  std::string bytes =
      segment_internal::EncodeSegment(pending_, options_.block_executions);
  // The footer stores the payload size as fixed32; beyond 4 GiB it would
  // silently truncate and the segment could never be decoded (or worse,
  // would salvage partially). Refuse to write such a store.
  if (bytes.size() - 4 - kFooterBytes >
      static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::InvalidArgument(
        StrFormat("segment payload %zu bytes exceeds the 4 GiB format limit; "
                  "lower target_segment_events",
                  bytes.size() - 4 - kFooterBytes));
  }
  SegmentInfo info;
  info.file = StrFormat("seg-%06d.seg", static_cast<int>(segments_.size()));
  info.executions = static_cast<int64_t>(pending_.size());
  info.events = pending_events_;
  info.disk_bytes = static_cast<int64_t>(bytes.size());
  info.crc32c = ReadFixed32At(bytes, bytes.size() - 4);
  PROCMINE_RETURN_NOT_OK(WriteFileAtomic(dir_ + "/" + info.file, bytes));
  static obs::Counter* sealed =
      obs::MetricsRegistry::Get().GetCounter("segment.sealed");
  static obs::Counter* written =
      obs::MetricsRegistry::Get().GetCounter("segment.bytes_written");
  sealed->Increment();
  written->Add(info.disk_bytes);
  disk_bytes_ += info.disk_bytes;
  segments_.push_back(std::move(info));
  pending_.clear();
  pending_.shrink_to_fit();
  pending_events_ = 0;
  return Status::OK();
}

Status SegmentedLogWriter::Finish() {
  if (finished_) return Status::OK();
  PROCMINE_RETURN_NOT_OK(Seal());
  std::string m;
  m += "{\n";
  m += "  \"format\": \"procmine-segment-store\",\n";
  m += StrFormat("  \"schema_version\": %d,\n", kManifestSchemaVersion);
  m += StrFormat("  \"executions\": %lld,\n",
                 static_cast<long long>(total_executions_));
  m += StrFormat("  \"events\": %lld,\n", static_cast<long long>(total_events_));
  m += StrFormat("  \"disk_bytes\": %lld,\n",
                 static_cast<long long>(disk_bytes_));
  m += "  \"activities\": [";
  for (ActivityId id = 0; id < dict_.size(); ++id) {
    if (id > 0) m += ", ";
    m += '"';
    AppendJsonEscaped(&m, dict_.Name(id));
    m += '"';
  }
  m += "],\n";
  m += "  \"segments\": [";
  for (size_t i = 0; i < segments_.size(); ++i) {
    const SegmentInfo& s = segments_[i];
    m += (i == 0) ? "\n" : ",\n";
    m += "    {\"file\": \"";
    AppendJsonEscaped(&m, s.file);
    m += StrFormat("\", \"executions\": %lld, \"events\": %lld, \"bytes\": "
                   "%lld, \"crc32c\": %llu}",
                   static_cast<long long>(s.executions),
                   static_cast<long long>(s.events),
                   static_cast<long long>(s.disk_bytes),
                   static_cast<unsigned long long>(s.crc32c));
  }
  m += segments_.empty() ? "]\n" : "\n  ]\n";
  m += "}\n";
  PROCMINE_RETURN_NOT_OK(WriteFileAtomic(ManifestPath(dir_), m));
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader

Result<SegmentStore> SegmentStore::Open(const std::string& dir,
                                        const SegmentStoreOptions& options) {
  PROCMINE_ASSIGN_OR_RETURN(MappedFile manifest,
                            MappedFile::Open(ManifestPath(dir)));
  PROCMINE_ASSIGN_OR_RETURN(json::Value root, json::Parse(manifest.data()));
  PROCMINE_ASSIGN_OR_RETURN(std::string format, root.GetString("format"));
  if (format != "procmine-segment-store") {
    return Status::DataLoss(
        StrFormat("%s: not a segment-store manifest", dir.c_str()));
  }
  PROCMINE_ASSIGN_OR_RETURN(int64_t version, root.GetInt("schema_version"));
  if (version != kManifestSchemaVersion) {
    return Status::DataLoss(StrFormat(
        "%s: unsupported manifest schema_version %lld", dir.c_str(),
        static_cast<long long>(version)));
  }
  SegmentStore store(dir, options);
  store.report_.policy = options.recovery;
  const json::Value* activities = root.Find("activities");
  if (activities == nullptr || !activities->is_array()) {
    return Status::DataLoss("manifest missing activities array");
  }
  for (const json::Value& name : activities->items()) {
    if (!name.is_string()) {
      return Status::DataLoss("manifest activity name is not a string");
    }
    store.dict_.Intern(name.AsString());
  }
  const json::Value* segments = root.Find("segments");
  if (segments == nullptr || !segments->is_array()) {
    return Status::DataLoss("manifest missing segments array");
  }
  for (const json::Value& seg : segments->items()) {
    SegmentInfo info;
    PROCMINE_ASSIGN_OR_RETURN(info.file, seg.GetString("file"));
    PROCMINE_ASSIGN_OR_RETURN(info.executions, seg.GetInt("executions"));
    PROCMINE_ASSIGN_OR_RETURN(info.events, seg.GetInt("events"));
    PROCMINE_ASSIGN_OR_RETURN(info.disk_bytes, seg.GetInt("bytes"));
    PROCMINE_ASSIGN_OR_RETURN(int64_t crc, seg.GetInt("crc32c"));
    info.crc32c = static_cast<uint32_t>(crc);
    if (info.file.find('/') != std::string::npos || info.file.empty()) {
      return Status::DataLoss(
          StrFormat("manifest segment file %s escapes the store directory",
                    info.file.c_str()));
    }
    store.total_executions_ += info.executions;
    store.total_events_ += info.events;
    store.disk_bytes_ += info.disk_bytes;
    store.segments_.push_back(std::move(info));
  }
  store.salvage_reported_.assign(store.segments_.size(), false);
  return store;
}

Result<std::shared_ptr<const EventLog>> SegmentStore::Segment(size_t index) {
  if (index >= segments_.size()) {
    return Status::InvalidArgument(
        StrFormat("segment index %zu out of range (%zu segments)", index,
                  segments_.size()));
  }
  auto it = resident_.find(index);
  if (it != resident_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(index);
    it->second.lru_pos = lru_.begin();
    ++cache_hits_;
    static obs::Counter* hits =
        obs::MetricsRegistry::Get().GetCounter("segment.cache_hits");
    hits->Increment();
    return it->second.log;
  }

  PROCMINE_SPAN("segment.load");
  // Decode latency is only worth a clock read when someone is collecting it.
  const bool timed = obs::MetricsEnabled();
  StopWatch decode_watch;
  const SegmentInfo& info = segments_[index];
  const std::string path = dir_ + "/" + info.file;
  std::vector<Execution> execs;
  Result<MappedFile> file = MappedFile::Open(path);
  if (!file.ok()) {
    if (options_.recovery == RecoveryPolicy::kStrict) {
      return file.status();
    }
    // Missing/unreadable segment file: the whole segment is lost. Count it
    // into the report only on the first load — a reload after eviction must
    // not inflate the accounting.
    if (!salvage_reported_[index]) {
      salvage_reported_[index] = true;
      report_.salvage_attempted = true;
      report_.executions_dropped += info.executions;
      report_.salvage_dropped_bytes += info.disk_bytes;
      report_.AddErrorClass("truncated_body");
      static obs::Counter* events =
          obs::MetricsRegistry::Get().GetCounter("segment.salvage_events");
      static obs::Counter* lost =
          obs::MetricsRegistry::Get().GetCounter("segment.lost_executions");
      events->Increment();
      lost->Add(info.executions);
      if (options_.recovery == RecoveryPolicy::kQuarantine) {
        report_.quarantined.push_back(QuarantineRecord{
            -1, 0, "truncated_body",
            StrFormat("segment %s: %s", info.file.c_str(),
                      file.status().message().c_str())});
      }
    }
  } else {
    Result<std::vector<Execution>> decoded =
        segment_internal::DecodeSegment(file->data(), dict_.size());
    if (decoded.ok()) {
      execs = decoded.MoveValueOrDie();
    } else if (options_.recovery == RecoveryPolicy::kStrict) {
      return Status::DataLoss(StrFormat("segment %s: %s", info.file.c_str(),
                                        decoded.status().message().c_str()));
    } else {
      segment_internal::SalvageResult salvage =
          segment_internal::SalvageSegment(file->data(), dict_.size());
      execs = std::move(salvage.executions);
      // A corrupt segment stays corrupt across reloads; account its loss
      // only the first time so repeated mining passes (and LRU eviction in
      // between) don't multiply the report.
      if (!salvage_reported_[index]) {
        salvage_reported_[index] = true;
        report_.salvage_attempted = true;
        report_.salvaged_executions += static_cast<int64_t>(execs.size());
        report_.executions_dropped +=
            std::max<int64_t>(0, info.executions -
                                     static_cast<int64_t>(execs.size()));
        report_.salvage_dropped_bytes += salvage.dropped_bytes;
        static obs::Counter* events =
            obs::MetricsRegistry::Get().GetCounter("segment.salvage_events");
        static obs::Counter* salvaged = obs::MetricsRegistry::Get().GetCounter(
            "segment.salvaged_executions");
        static obs::Counter* lost =
            obs::MetricsRegistry::Get().GetCounter("segment.lost_executions");
        events->Increment();
        salvaged->Add(static_cast<int64_t>(execs.size()));
        lost->Add(std::max<int64_t>(
            0, info.executions - static_cast<int64_t>(execs.size())));
        report_.AddErrorClass(salvage.error_class.empty()
                                  ? "semantic_error"
                                  : salvage.error_class);
        if (options_.recovery == RecoveryPolicy::kQuarantine) {
          report_.quarantined.push_back(QuarantineRecord{
              -1, 0,
              salvage.error_class.empty() ? "semantic_error"
                                          : salvage.error_class,
              StrFormat("segment %s: salvaged %zu of %lld executions",
                        info.file.c_str(), execs.size(),
                        static_cast<long long>(info.executions))});
        }
      }
    }
  }

  auto log = std::make_shared<EventLog>();
  log->dictionary() = dict_;
  int64_t instances = 0;
  for (auto& exec : execs) {
    instances += static_cast<int64_t>(exec.size());
    log->AddExecution(std::move(exec));
  }
  const int64_t bytes =
      instances * kDecodedBytesPerInstance +
      static_cast<int64_t>(log->num_executions()) * kDecodedBytesPerExecution;

  ++loads_;
  lru_.push_front(index);
  std::shared_ptr<const EventLog> shared = std::move(log);
  resident_[index] = Resident{shared, bytes, lru_.begin()};
  resident_bytes_ += bytes;
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  EvictDownTo(options_.max_resident_bytes);

  static obs::Counter* loads =
      obs::MetricsRegistry::Get().GetCounter("segment.loads");
  static obs::Gauge* resident =
      obs::MetricsRegistry::Get().GetGauge("segment.resident_bytes");
  loads->Increment();
  resident->Set(resident_bytes_);
  if (timed) {
    // Microsecond buckets spanning "resident-size segment from page cache"
    // to "multi-hundred-MB segment from cold disk".
    static obs::Histogram* decode_us = obs::MetricsRegistry::Get().GetHistogram(
        "segment.decode_us", {50, 100, 250, 500, 1000, 2500, 5000, 10000,
                              25000, 50000, 100000, 250000, 1000000});
    decode_us->Record(decode_watch.ElapsedNanos() / 1000);
  }
  return shared;
}

void SegmentStore::EvictDownTo(int64_t budget_bytes) {
  static obs::Counter* evictions =
      obs::MetricsRegistry::Get().GetCounter("segment.evictions");
  while (resident_bytes_ > budget_bytes && lru_.size() > 1) {
    size_t victim = lru_.back();
    lru_.pop_back();
    auto it = resident_.find(victim);
    resident_bytes_ -= it->second.bytes;
    resident_.erase(it);
    ++evictions_;
    evictions->Increment();
  }
}

Result<EventLog> SegmentStore::Materialize() {
  EventLog log;
  log.dictionary() = dict_;
  for (size_t i = 0; i < segments_.size(); ++i) {
    PROCMINE_ASSIGN_OR_RETURN(std::shared_ptr<const EventLog> window,
                              Segment(i));
    for (const Execution& exec : window->executions()) {
      log.AddExecution(exec);
    }
  }
  return log;
}

SegmentStoreFootprint SegmentStore::Footprint() const {
  SegmentStoreFootprint fp;
  fp.segments = static_cast<int64_t>(segments_.size());
  fp.executions = total_executions_;
  fp.events = total_events_;
  fp.disk_bytes = disk_bytes_;
  fp.resident_segments = static_cast<int64_t>(resident_.size());
  fp.resident_bytes = resident_bytes_;
  fp.peak_resident_bytes = peak_resident_bytes_;
  fp.max_resident_bytes = options_.max_resident_bytes;
  fp.loads = loads_;
  fp.cache_hits = cache_hits_;
  fp.evictions = evictions_;
  fp.estimated_memory_bytes =
      (total_events_ / 2) * kDecodedBytesPerInstance +
      total_executions_ * kDecodedBytesPerExecution;
  return fp;
}

}  // namespace procmine
