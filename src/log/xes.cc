#include "log/xes.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace procmine {

namespace {

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> XmlUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out += text[i];
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::InvalidArgument("unterminated XML entity");
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else {
      return Status::InvalidArgument("unknown XML entity: &" +
                                     std::string(entity) + ";");
    }
    i = semi;
  }
  return out;
}

/// Extracts the value of `attribute` from the text of one XML tag
/// (everything between '<' and '>'), or NotFound.
Result<std::string> TagAttribute(std::string_view tag,
                                 std::string_view attribute) {
  std::string needle = std::string(attribute) + "=\"";
  size_t pos = tag.find(needle);
  if (pos == std::string_view::npos) {
    return Status::NotFound("attribute not present");
  }
  size_t begin = pos + needle.size();
  size_t end = tag.find('"', begin);
  if (end == std::string_view::npos) {
    return Status::InvalidArgument("unterminated attribute value");
  }
  return XmlUnescape(tag.substr(begin, end - begin));
}

/// Finds the next element with the given name at or after *pos; returns the
/// full tag text (without angle brackets) and advances *pos past it, or
/// NotFound when no further such element exists before `limit`.
Result<std::string_view> NextTag(std::string_view xml, std::string_view name,
                                 size_t* pos, size_t limit) {
  std::string open = "<" + std::string(name);
  while (true) {
    size_t begin = xml.find(open, *pos);
    if (begin == std::string_view::npos || begin >= limit) {
      return Status::NotFound("no further element");
    }
    // Must be a whole-word match: next char is whitespace, '>' or '/'.
    char next = begin + open.size() < xml.size() ? xml[begin + open.size()]
                                                 : '\0';
    size_t end = xml.find('>', begin);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("unterminated XML tag");
    }
    *pos = end + 1;
    if (next == ' ' || next == '\t' || next == '\n' || next == '>' ||
        next == '/') {
      return xml.substr(begin + 1, end - begin - 1);
    }
    // Prefix of a longer element name; keep scanning.
  }
}

}  // namespace

std::string ToXes(const EventLog& log) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<log xes.version=\"1.0\" xes.features=\"\">\n";
  out << "  <extension name=\"Concept\" prefix=\"concept\" "
         "uri=\"http://www.xes-standard.org/concept.xesext\"/>\n";
  out << "  <extension name=\"Lifecycle\" prefix=\"lifecycle\" "
         "uri=\"http://www.xes-standard.org/lifecycle.xesext\"/>\n";
  for (const Execution& exec : log.executions()) {
    out << "  <trace>\n";
    out << "    <string key=\"concept:name\" value=\""
        << XmlEscape(exec.name()) << "\"/>\n";
    for (const ActivityInstance& inst : exec.instances()) {
      const std::string name =
          XmlEscape(log.dictionary().Name(inst.activity));
      bool instantaneous = inst.start == inst.end;
      if (!instantaneous) {
        out << "    <event>\n";
        out << "      <string key=\"concept:name\" value=\"" << name
            << "\"/>\n";
        out << "      <string key=\"lifecycle:transition\" "
               "value=\"start\"/>\n";
        out << "      <int key=\"time:timestamp\" value=\"" << inst.start
            << "\"/>\n";
        out << "    </event>\n";
      }
      out << "    <event>\n";
      out << "      <string key=\"concept:name\" value=\"" << name
          << "\"/>\n";
      out << "      <string key=\"lifecycle:transition\" "
             "value=\"complete\"/>\n";
      out << "      <int key=\"time:timestamp\" value=\"" << inst.end
          << "\"/>\n";
      for (size_t i = 0; i < inst.output.size(); ++i) {
        out << "      <int key=\"out" << i << "\" value=\""
            << inst.output[i] << "\"/>\n";
      }
      out << "    </event>\n";
    }
    out << "  </trace>\n";
  }
  out << "</log>\n";
  return out.str();
}

Result<EventLog> FromXes(const std::string& xml) {
  std::vector<Event> events;
  size_t trace_pos = 0;
  int64_t anonymous_traces = 0;
  while (true) {
    Result<std::string_view> trace_tag =
        NextTag(xml, "trace", &trace_pos, xml.size());
    if (!trace_tag.ok()) break;
    size_t trace_end = xml.find("</trace>", trace_pos);
    if (trace_end == std::string::npos) {
      return Status::InvalidArgument("unterminated <trace>");
    }

    // Trace name: first concept:name string directly in the trace that
    // appears before the first event.
    size_t first_event_probe = trace_pos;
    Result<std::string_view> first_event =
        NextTag(xml, "event", &first_event_probe, trace_end);
    size_t name_limit =
        first_event.ok() ? first_event_probe - first_event->size() - 2
                         : trace_end;
    std::string trace_name =
        StrFormat("trace_%lld", static_cast<long long>(anonymous_traces));
    size_t name_pos = trace_pos;
    while (true) {
      Result<std::string_view> tag =
          NextTag(xml, "string", &name_pos, name_limit);
      if (!tag.ok()) break;
      auto key = TagAttribute(*tag, "key");
      if (key.ok() && *key == "concept:name") {
        PROCMINE_ASSIGN_OR_RETURN(trace_name, TagAttribute(*tag, "value"));
        break;
      }
    }
    ++anonymous_traces;

    // Events.
    size_t event_pos = trace_pos;
    while (true) {
      Result<std::string_view> event_open =
          NextTag(xml, "event", &event_pos, trace_end);
      if (!event_open.ok()) break;
      size_t event_end = xml.find("</event>", event_pos);
      if (event_end == std::string::npos || event_end > trace_end) {
        return Status::InvalidArgument("unterminated <event>");
      }

      std::string activity;
      std::string transition = "complete";
      int64_t timestamp = 0;
      std::vector<std::pair<int, int64_t>> outputs;
      size_t attr_pos = event_pos;
      while (true) {
        // Scan <string> and <int> attribute elements inside the event.
        size_t string_probe = attr_pos;
        Result<std::string_view> string_tag =
            NextTag(xml, "string", &string_probe, event_end);
        size_t int_probe = attr_pos;
        Result<std::string_view> int_tag =
            NextTag(xml, "int", &int_probe, event_end);
        if (!string_tag.ok() && !int_tag.ok()) break;
        bool take_string =
            string_tag.ok() && (!int_tag.ok() || string_probe < int_probe);
        std::string_view tag = take_string ? *string_tag : *int_tag;
        attr_pos = take_string ? string_probe : int_probe;

        PROCMINE_ASSIGN_OR_RETURN(std::string key, TagAttribute(tag, "key"));
        PROCMINE_ASSIGN_OR_RETURN(std::string value,
                                  TagAttribute(tag, "value"));
        if (take_string) {
          if (key == "concept:name") activity = value;
          if (key == "lifecycle:transition") transition = value;
        } else {
          if (key == "time:timestamp") {
            PROCMINE_ASSIGN_OR_RETURN(timestamp, ParseInt64(value));
          } else if (StartsWith(key, "out")) {
            PROCMINE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
            auto index = ParseInt64(key.substr(3));
            if (index.ok()) {
              outputs.emplace_back(static_cast<int>(*index), v);
            }
          }
        }
      }
      event_pos = event_end + 8;  // past "</event>"

      if (activity.empty()) {
        return Status::InvalidArgument(
            "event without concept:name in trace '" + trace_name + "'");
      }
      Event event;
      event.process_instance = trace_name;
      event.activity = activity;
      event.timestamp = timestamp;
      if (transition == "start") {
        event.type = EventType::kStart;
        events.push_back(std::move(event));
      } else if (transition == "complete") {
        // Look back: does an unmatched start exist for this activity? The
        // EventLog assembler pairs FIFO, so emit a synthetic START only for
        // instantaneous (complete-only) events.
        bool has_open_start = false;
        int64_t balance = 0;
        for (const Event& e : events) {
          if (e.process_instance == trace_name && e.activity == activity) {
            balance += e.type == EventType::kStart ? 1 : -1;
          }
        }
        has_open_start = balance > 0;
        if (!has_open_start) {
          Event start = event;
          start.type = EventType::kStart;
          events.push_back(start);
        }
        event.type = EventType::kEnd;
        std::sort(outputs.begin(), outputs.end());
        for (const auto& [index, value] : outputs) {
          event.output.push_back(value);
        }
        events.push_back(std::move(event));
      } else {
        return Status::InvalidArgument("unsupported lifecycle transition: " +
                                       transition);
      }
    }
    trace_pos = trace_end + 8;  // past "</trace>"
  }
  return EventLog::FromEvents(events);
}

Status WriteXesFile(const EventLog& log, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file << ToXes(log);
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EventLog> ReadXesFile(const std::string& path) {
  PROCMINE_SPAN("log.read_xes");
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IOError("read failed: " + path);
  Result<EventLog> log = FromXes(buffer.str());
  if (log.ok()) {
    static obs::Counter* read =
        obs::MetricsRegistry::Get().GetCounter("log.executions_read");
    read->Add(static_cast<int64_t>(log->num_executions()));
  }
  return log;
}

}  // namespace procmine
