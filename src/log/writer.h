// LogWriter: serializes an EventLog back to the procmine text format (the
// inverse of LogReader), plus a CSV export for external tools.

#ifndef PROCMINE_LOG_WRITER_H_
#define PROCMINE_LOG_WRITER_H_

#include <string>

#include "log/event_log.h"
#include "util/status.h"

namespace procmine {

class LogWriter {
 public:
  /// Serializes to the text format LogReader parses. Round-trips exactly.
  static std::string ToString(const EventLog& log);

  /// CSV: header + one row per event,
  /// `process_instance,activity,type,timestamp,"o1;o2;..."`.
  static std::string ToCsv(const EventLog& log);

  static Status WriteFile(const EventLog& log, const std::string& path);
  static Status WriteCsvFile(const EventLog& log, const std::string& path);

  /// Size in bytes of the text serialization — the "size of the log" column
  /// of Table 3.
  static int64_t SerializedBytes(const EventLog& log);
};

}  // namespace procmine

#endif  // PROCMINE_LOG_WRITER_H_
