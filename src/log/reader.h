// LogReader: parses workflow logs from the procmine text format.
//
// Format (Flowmark-like; one event per line, whitespace separated):
//   <process_instance> <activity> START|END <timestamp> [<out1> <out2> ...]
// Blank lines and lines starting with '#' are ignored. Output parameters may
// only appear on END events (Definition 2: O is the output of the activity
// if E = END and a null vector otherwise).
//
// Two ingestion paths produce identical EventLogs (and identical error
// messages on malformed input):
//
//  * ParseEvents/ReadString — the compatibility API: materializes a
//    std::vector<Event> (two owning strings per event) and assembles it
//    via EventLog::FromEvents.
//  * ParseText/ReadFile — the zero-copy path: ReadFile mmaps the file
//    (MappedFile, buffered fallback) and the fused parser tokenizes
//    string_views straight out of the mapping, interning names into
//    dictionary ids as it scans; no Event vector is ever built. With
//    options.num_threads > 1 the input is split at line boundaries and
//    parsed in parallel with shard-local dictionaries, followed by a
//    deterministic remap+merge — the result is byte-identical to
//    single-threaded parsing for any thread count.

#ifndef PROCMINE_LOG_READER_H_
#define PROCMINE_LOG_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "log/event.h"
#include "log/event_log.h"
#include "log/recovery.h"
#include "util/budget.h"
#include "util/result.h"

namespace procmine {

/// Knobs for the zero-copy ingestion path.
struct LogParseOptions {
  /// Parser shards. 1 = sequential; <= 0 = hardware concurrency. The parsed
  /// log is byte-identical for any value.
  int num_threads = 1;

  /// Minimum input bytes per parser shard: inputs smaller than
  /// 2 * min_shard_bytes stay single-shard so tiny logs skip the merge.
  /// Tests lower this to force multi-shard parses on small corpora; the
  /// result is byte-identical for any value.
  size_t min_shard_bytes = 256 * 1024;

  /// What to do with malformed lines / executions. kStrict fails the whole
  /// parse (the classic behavior); kSkip and kQuarantine drop the offending
  /// input and keep going. Because shard cuts are line-aligned and skip
  /// decisions are per line, the surviving log, the report, and the
  /// quarantine records are byte-identical for any num_threads.
  RecoveryPolicy recovery = RecoveryPolicy::kStrict;

  /// When non-null, filled with what recovery did (counts are global, byte
  /// offsets/lines in quarantine records are file-absolute). Merged-into,
  /// not reset — zero-initialize before the call.
  IngestionReport* report = nullptr;

  /// Optional ingestion memory budget. When set, every parse shard probes
  /// RSS once per probe_period_lines lines (amortized — an RSS read is a
  /// /proc round trip) so a huge log trips the budget during the parse, not
  /// after assembly has already blown past it. Crossing the high-water mark
  /// stops consuming input: under kStrict the parse fails with a pointer at
  /// the out-of-core path; under kSkip/kQuarantine the rest of the input is
  /// dropped like any other skipped input (error class "budget_truncated")
  /// and the cut is recorded in `degradation`. Borrowed; may be null.
  RunBudget* budget = nullptr;
  DegradationInfo* degradation = nullptr;

  /// Lines between RSS probes in each parse shard.
  uint32_t probe_period_lines = 4096;

  /// Fraction of --max-memory-mb treated as the ingestion high-water mark.
  double memory_high_water = 0.8;
};

class LogReader {
 public:
  /// Parses raw event records from log text (compatibility API).
  static Result<std::vector<Event>> ParseEvents(const std::string& text);

  /// Parses log text and assembles it into an EventLog via ParseEvents
  /// (compatibility API; prefer ParseText).
  static Result<EventLog> ReadString(const std::string& text);

  /// Fused zero-copy parser: tokenizes `text` in place and interns names
  /// directly into the EventLog's dictionary. Equivalent to ReadString on
  /// every input, valid or not.
  static Result<EventLog> ParseText(std::string_view text,
                                    const LogParseOptions& options = {});

  /// Reads and assembles a log file through the mmap + ParseText path.
  static Result<EventLog> ReadFile(const std::string& path,
                                   const LogParseOptions& options = {});
};

}  // namespace procmine

#endif  // PROCMINE_LOG_READER_H_
