// LogReader: parses workflow logs from the procmine text format.
//
// Format (Flowmark-like; one event per line, whitespace separated):
//   <process_instance> <activity> START|END <timestamp> [<out1> <out2> ...]
// Blank lines and lines starting with '#' are ignored. Output parameters may
// only appear on END events (Definition 2: O is the output of the activity
// if E = END and a null vector otherwise).

#ifndef PROCMINE_LOG_READER_H_
#define PROCMINE_LOG_READER_H_

#include <string>
#include <vector>

#include "log/event.h"
#include "log/event_log.h"
#include "util/result.h"

namespace procmine {

class LogReader {
 public:
  /// Parses raw event records from log text.
  static Result<std::vector<Event>> ParseEvents(const std::string& text);

  /// Parses log text and assembles it into an EventLog.
  static Result<EventLog> ReadString(const std::string& text);

  /// Reads and assembles a log file.
  static Result<EventLog> ReadFile(const std::string& path);
};

}  // namespace procmine

#endif  // PROCMINE_LOG_READER_H_
