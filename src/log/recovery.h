// Recovery-mode ingestion: policies, quarantine records, and the
// IngestionReport.
//
// Every ingestion front end (text reader, streaming reader, binary log)
// accepts a RecoveryPolicy:
//
//   kStrict     fail the whole read on the first malformed input (the
//               pre-recovery behavior, and still the default);
//   kSkip       drop malformed lines / executions, keep counts;
//   kQuarantine like kSkip, but additionally capture each rejected input
//               (byte offset + error class + raw bytes) so it can be
//               written to a sidecar file for later triage.
//
// The IngestionReport aggregates what happened: per-error-class counts,
// skipped-line and dropped-execution totals, and the binary-salvage
// outcome. Reports and quarantine bytes are deterministic: the sharded
// text parser records skips per shard in file order and merges them by
// byte offset, so any --threads value produces identical artifacts.
//
// Error classes (the taxonomy is documented in docs/robustness.md):
//   text lines:  short_line, bad_event_type, bad_timestamp,
//                output_on_start, bad_output
//   assembly:    end_without_start, start_without_end
//   streaming:   non_contiguous_instance, negative_duration
//   binary logs: truncated_body, checksum_mismatch, bad_dictionary,
//                semantic_error

#ifndef PROCMINE_LOG_RECOVERY_H_
#define PROCMINE_LOG_RECOVERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace procmine {

/// How ingestion treats malformed input.
enum class RecoveryPolicy : int8_t {
  kStrict = 0,
  kSkip = 1,
  kQuarantine = 2,
};

/// "strict" / "skip" / "quarantine".
std::string_view RecoveryPolicyName(RecoveryPolicy policy);

/// Parses a policy name; error on anything else.
Result<RecoveryPolicy> ParseRecoveryPolicy(std::string_view name);

/// One rejected input, captured under kQuarantine.
struct QuarantineRecord {
  int64_t byte_offset = -1;  ///< offset of the line in the source; -1 when
                             ///< the reject is not byte-addressed (assembly,
                             ///< binary salvage)
  int64_t line = 0;          ///< 1-based line number; 0 when inapplicable
  std::string error_class;
  std::string raw;  ///< the offending line, or a short descriptor
};

/// What recovery-mode ingestion did to one input source.
struct IngestionReport {
  RecoveryPolicy policy = RecoveryPolicy::kStrict;

  int64_t lines_total = 0;        ///< text lines seen (0 for binary inputs)
  int64_t events_parsed = 0;      ///< events that survived line parsing
  int64_t lines_skipped = 0;      ///< malformed lines dropped
  int64_t executions_dropped = 0; ///< executions rejected at assembly

  bool salvage_attempted = false;   ///< binary input needed the salvage path
  int64_t salvaged_executions = 0;  ///< executions recovered before the cut
  int64_t salvage_dropped_bytes = 0;  ///< bytes after the last good execution

  /// (error class, count), sorted by class name. Maintained sorted by
  /// AddErrorClass so serialization is deterministic.
  std::vector<std::pair<std::string, int64_t>> error_classes;

  /// Captured rejects, in source order. Populated only under kQuarantine.
  std::vector<QuarantineRecord> quarantined;

  /// True when any input was skipped, dropped, or salvaged around.
  bool AnyLoss() const {
    return lines_skipped > 0 || executions_dropped > 0 ||
           (salvage_attempted &&
            (salvage_dropped_bytes > 0 || salvaged_executions > 0));
  }

  /// Bumps the count for `error_class`, keeping error_classes sorted.
  void AddErrorClass(std::string_view error_class, int64_t count = 1);

  /// Folds `other` into this report (shard merge). `other`'s quarantine
  /// records are appended as-is; the caller merges shards in file order.
  void Merge(const IngestionReport& other);

  /// The quarantine sidecar: a versioned header followed by one
  /// tab-separated record per reject (offset, line, class, escaped raw
  /// bytes). Stable across thread counts.
  std::string QuarantineText() const;

  /// One-line-per-fact human summary ("skipped 3 lines (bad_timestamp: 2,
  /// short_line: 1) ...."). Empty string when nothing was lost.
  std::string SummaryText() const;
};

/// Writes report.QuarantineText() to `path` atomically.
Status WriteQuarantineFile(const std::string& path,
                           const IngestionReport& report);

}  // namespace procmine

#endif  // PROCMINE_LOG_RECOVERY_H_
