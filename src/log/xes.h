// XES (eXtensible Event Stream, IEEE 1849) interchange.
//
// XES became the standard interchange format of the process-mining field
// this paper founded; exporting it lets procmine logs flow into ProM/PM4Py
// and importing lets their logs flow in. This implementation covers the
// subset the miner needs: traces with events carrying concept:name,
// lifecycle:transition (start/complete), time:timestamp (integer-encoded),
// and integer output attributes out0..outN.

#ifndef PROCMINE_LOG_XES_H_
#define PROCMINE_LOG_XES_H_

#include <string>

#include "log/event_log.h"
#include "util/result.h"

namespace procmine {

/// Serializes `log` as an XES XML document.
std::string ToXes(const EventLog& log);

/// Parses the XES subset written by ToXes (and the common output of other
/// tools restricted to that subset). Events without a lifecycle transition
/// are treated as instantaneous complete events.
Result<EventLog> FromXes(const std::string& xml);

Status WriteXesFile(const EventLog& log, const std::string& path);
Result<EventLog> ReadXesFile(const std::string& path);

}  // namespace procmine

#endif  // PROCMINE_LOG_XES_H_
