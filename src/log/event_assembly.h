// Compact event batches and the shared EventLog assembly pass.
//
// Both ingestion fronts — the legacy EventLog::FromEvents compatibility API
// and the zero-copy file parser in LogReader — reduce their input to the
// same dictionary-encoded intermediate: name tables plus fixed-size event
// records whose variable-length pieces (names, output vectors) live in
// side pools. AssembleEventLog then performs the one canonical
// group → sort → START/END-pair → intern pass, so every ingestion path
// produces byte-identical EventLogs and identical error messages by
// construction.
//
// The name tables are string_views borrowed from the caller (raw Event
// structs or an mmapped file); they must stay alive across the call.
// AssembleEventLog copies them into the EventLog's own dictionary.

#ifndef PROCMINE_LOG_EVENT_ASSEMBLY_H_
#define PROCMINE_LOG_EVENT_ASSEMBLY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "log/event.h"
#include "log/event_log.h"
#include "log/recovery.h"
#include "util/result.h"

namespace procmine {

/// One parsed event with every string replaced by a table index and outputs
/// referenced in a shared pool. 24 bytes instead of two heap strings.
struct CompactEvent {
  int32_t instance = -1;      ///< index into CompactEventBatch::instance_names
  int32_t activity = -1;      ///< index into CompactEventBatch::activity_names
  EventType type = EventType::kStart;
  int64_t timestamp = 0;
  uint32_t output_begin = 0;  ///< first output value in the pool
  uint32_t output_count = 0;
};

/// A batch of compact events in log order, with borrowed name tables.
struct CompactEventBatch {
  std::vector<std::string_view> instance_names;  ///< by CompactEvent::instance
  std::vector<std::string_view> activity_names;  ///< by CompactEvent::activity
  std::vector<CompactEvent> events;              ///< original log order
  std::vector<int64_t> outputs;                  ///< shared output-value pool
};

/// How AssembleEventLog treats executions whose events do not pair.
/// Under kSkip / kQuarantine the offending execution is dropped (recorded
/// in `report` when non-null: executions_dropped, error class
/// end_without_start / start_without_end, and — under kQuarantine — a
/// QuarantineRecord with byte_offset -1 carrying the strict error text).
struct AssemblyRecovery {
  RecoveryPolicy policy = RecoveryPolicy::kStrict;
  IngestionReport* report = nullptr;
};

/// Assembles a batch into an EventLog: groups events by process instance
/// (instances ordered by name), pairs START/END events FIFO per activity,
/// orders instances by start time, and interns activity names into the
/// log's dictionary. Semantics and error messages match the documented
/// EventLog::FromEvents contract; the result is deterministic — independent
/// of how the batch was produced or sharded.
Result<EventLog> AssembleEventLog(const CompactEventBatch& batch);

/// As above, but malformed executions are handled per `recovery`. With a
/// kStrict policy this is exactly AssembleEventLog(batch).
Result<EventLog> AssembleEventLog(const CompactEventBatch& batch,
                                  const AssemblyRecovery& recovery);

}  // namespace procmine

#endif  // PROCMINE_LOG_EVENT_ASSEMBLY_H_
