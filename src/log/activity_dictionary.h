// ActivityDictionary: string-interning for activity names.
//
// The miners run on dense integer ActivityIds (the database idiom:
// dictionary-encode once at the boundary, integers in the hot path).
// An EventLog owns one dictionary; the mined ProcessGraph shares its ids.

#ifndef PROCMINE_LOG_ACTIVITY_DICTIONARY_H_
#define PROCMINE_LOG_ACTIVITY_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace procmine {

/// Dense id of an activity within one log/process. Also used as the vertex
/// id of the corresponding node in mined graphs.
using ActivityId = int32_t;

/// Bidirectional activity-name <-> dense-id mapping.
class ActivityDictionary {
 public:
  /// Returns the id for `name`, interning it if new.
  ActivityId Intern(std::string_view name);

  /// Returns the id for `name`, or NotFound if it was never interned.
  Result<ActivityId> Find(std::string_view name) const;

  /// Returns the name for `id`. `id` must be valid.
  const std::string& Name(ActivityId id) const;

  /// Number of distinct activities.
  ActivityId size() const { return static_cast<ActivityId>(names_.size()); }

  /// All names, indexed by id.
  const std::vector<std::string>& names() const { return names_; }

 private:
  // Transparent hashing so Intern/Find probe with a string_view directly —
  // no temporary std::string per lookup.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, ActivityId, Hash, std::equal_to<>> index_;
  std::vector<std::string> names_;
};

}  // namespace procmine

#endif  // PROCMINE_LOG_ACTIVITY_DICTIONARY_H_
