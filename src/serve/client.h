// ServeClient: a minimal synchronous client for the serve wire protocol.
//
// Drives the `procmine client` subcommand and the serve test suites. Also
// exposes raw-byte sends so the hostile-client paths (garbage frames, torn
// frames, oversize declarations) can be exercised against a live server.

#ifndef PROCMINE_SERVE_CLIENT_H_
#define PROCMINE_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/wire.h"
#include "util/result.h"

namespace procmine::serve {

class ServeClient {
 public:
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ~ServeClient();

  /// Connects to the server's unix socket.
  static Result<ServeClient> Connect(const std::string& socket_path);

  /// Sends one request and waits for its response. Sequence numbers are
  /// assigned automatically and checked on the way back.
  Result<ResponseFrame> Call(FrameType type, std::string_view session,
                             std::string_view body = {});

  /// Writes raw bytes to the socket, bypassing framing entirely — the
  /// hostile-client primitive.
  Status SendRaw(std::string_view bytes);

  /// Reads one response frame (after SendRaw of a syntactically valid
  /// frame, the server still answers).
  Result<ResponseFrame> ReadResponse(int64_t max_frame_bytes =
                                         kDefaultMaxFrameBytes);

  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_seq_ = 1;
};

}  // namespace procmine::serve

#endif  // PROCMINE_SERVE_CLIENT_H_
