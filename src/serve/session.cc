#include "serve/session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "log/binary_log.h"
#include "util/strings.h"

namespace procmine::serve {

Session::Session(std::string name, const SessionSpec& spec)
    : name_(std::move(name)),
      spec_(spec),
      budget_(spec.limits),
      miner_(IncrementalMinerOptions{spec.noise_threshold}) {
  budget_.Start();
}

Status Session::SealJournal() {
  if (!journal_.has_value()) return Status::OK();
  Status sealed = journal_->Seal();
  journal_.reset();
  return sealed;
}

BatchOutcome Session::ApplyBatch(std::string_view batch_bytes) {
  BatchOutcome outcome;
  if (degradation_.degraded) {
    // Sticky: the budget tripped on an earlier batch. The model is frozen
    // but queryable; nothing more is absorbed or journaled.
    outcome.code = ResponseCode::kDegraded;
    outcome.degradation = degradation_;
    outcome.detail = StrFormat(
        "session budget exhausted (%.*s); model frozen",
        static_cast<int>(BudgetResourceName(degradation_.resource).size()),
        BudgetResourceName(degradation_.resource).data());
    return outcome;
  }

  IngestionReport report;
  report.policy = spec_.recovery;
  BinaryDecodeOptions decode_options;
  decode_options.recovery = spec_.recovery;
  decode_options.report = &report;
  Result<EventLog> batch = DecodeBinaryLog(batch_bytes, decode_options);
  if (!batch.ok()) {
    // Malformed batch: this session keeps its model and stays open —
    // the error is the client's, not the server's.
    outcome.code = ResponseCode::kDataError;
    outcome.detail = std::string(batch.status().message());
    return outcome;
  }

  DegradationInfo degradation;
  int64_t applied = 0;
  Status absorbed =
      miner_.AddLogBudgeted(*batch, &budget_, &degradation, &applied);

  auto evict_applied = [&]() {
    // Roll the prefix back (reverse order, exact inverse) so a failed
    // batch leaves the model exactly as it was.
    for (int64_t i = applied - 1; i >= 0; --i) {
      Status undone = miner_.RemoveExecution(
          batch->execution(static_cast<size_t>(i)), batch->dictionary());
      if (!undone.ok()) {
        undone.Abort("Session::ApplyBatch rollback");
      }
    }
  };

  if (!absorbed.ok()) {
    // A semantic error (e.g. repeated activities) past decode. Atomicity:
    // evict the applied prefix and report a data error.
    evict_applied();
    outcome.code = ResponseCode::kDataError;
    outcome.detail = std::string(absorbed.message());
    return outcome;
  }

  if (journal_.has_value()) {
    Status journaled = journal_->AppendBatch(batch_bytes, applied,
                                             degradation.degraded,
                                             degradation.resource);
    if (!journaled.ok()) {
      // Not durable, so not acknowledged: evict and report a server-side
      // fault. The client may retry; replay after a crash will not see
      // this batch (a torn append is truncated on restart).
      evict_applied();
      outcome.code = ResponseCode::kInternal;
      outcome.detail = std::string(journaled.message());
      return outcome;
    }
  }

  outcome.applied = applied;
  NoteApplied(*batch, applied);
  if (degradation.degraded) {
    // The cut is acknowledged (the applied prefix is journaled) but the
    // session is degraded from here on: the CLI exit-4 contract as a
    // response frame.
    degradation_ = degradation;
    if (report.AnyLoss()) outcome.detail = report.SummaryText();
    outcome.code = ResponseCode::kDegraded;
    outcome.degradation = degradation_;
    return outcome;
  }
  if (report.AnyLoss()) {
    // Salvage under kSkip/kQuarantine: the batch applied, minus what the
    // recovery policy dropped — report it, still an ack.
    outcome.detail = report.SummaryText();
  }
  return outcome;
}

Status Session::ReplayRecord(const JournalRecord& record) {
  BinaryDecodeOptions decode_options;
  decode_options.recovery = spec_.recovery;
  PROCMINE_ASSIGN_OR_RETURN(EventLog batch,
                            DecodeBinaryLog(record.batch, decode_options));
  if (record.applied < 0 ||
      record.applied > static_cast<int64_t>(batch.num_executions())) {
    return Status::DataLoss(
        StrFormat("journal record for session %s claims %lld applied "
                  "executions of a %zu-execution batch",
                  name_.c_str(), static_cast<long long>(record.applied),
                  batch.num_executions()));
  }
  for (int64_t i = 0; i < record.applied; ++i) {
    PROCMINE_RETURN_NOT_OK(miner_.AddExecution(
        batch.execution(static_cast<size_t>(i)), batch.dictionary()));
  }
  NoteApplied(batch, record.applied);
  if (record.degraded && !degradation_.degraded) {
    degradation_.degraded = true;
    degradation_.resource = record.resource;
    degradation_.cut_phase = "incremental.absorb";
    degradation_.dropped = "restored from journal replay";
  }
  return Status::OK();
}

void Session::NoteApplied(const EventLog& batch, int64_t applied) {
  if (applied <= 0) return;
  if (first_name_.empty()) first_name_ = batch.execution(0).name();
  last_name_ = batch.execution(static_cast<size_t>(applied - 1)).name();
}

Result<std::string> Session::CanonicalModelText() const {
  PROCMINE_ASSIGN_OR_RETURN(ProcessGraph graph, miner_.CurrentGraph());
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(graph.graph().num_edges()));
  for (const Edge& e : graph.graph().Edges()) {
    lines.push_back(
        StrFormat("%s\t%s", graph.name(e.from).c_str(),
                  graph.name(e.to).c_str()));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace procmine::serve
