// Per-session write-ahead journal: the crash-recovery substrate of
// `procmine serve`.
//
// A batch is acknowledged to the client only after its record is in the
// journal, so the invariant "acked implies replayable" holds across
// SIGKILL: a restarted server replays every journal and reproduces each
// session's model byte-identically to an uninterrupted run. Records carry
// the exact applied-execution count (a budget cut can stop a batch midway),
// so replay re-absorbs precisely the acknowledged prefix — no budget
// re-probing, no wall-clock dependence.
//
// File layout (`<dir>/<session>.pmj`):
//   "PMSJ"                          magic
//   varint version                  currently 1
//   length-prefixed session name
//   length-prefixed SessionSpec     (wire.h encoding)
//   records, each:
//     fixed32 payload_len | fixed32 crc32c(payload) | payload
//   payload:
//     u8 kind (1 = batch, 2 = seal)
//     u8 flags (bit0: session degraded after this record)
//     u8 budget resource (BudgetResource, meaningful when degraded)
//     varint applied execution count
//     rest = the batch's binary-log bytes (empty for seal records)
//
// A crash mid-append leaves a torn tail; replay detects it by length or
// checksum, reports the loss (error class journal_torn_tail), and the
// journal is truncated back to the last good record before appends resume.
// The torn batch was never acknowledged, so truncation loses nothing the
// server promised to keep. A seal record marks a graceful close (model
// published); sealed sessions are not resurrected on restart.

#ifndef PROCMINE_SERVE_JOURNAL_H_
#define PROCMINE_SERVE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "serve/wire.h"
#include "util/result.h"

namespace procmine::serve {

/// File suffix of session journals inside the journal directory.
inline constexpr std::string_view kJournalSuffix = ".pmj";

/// What one journal record contributed, as seen by replay.
struct JournalRecord {
  int64_t applied = 0;       ///< executions absorbed from this batch
  bool degraded = false;     ///< session was budget-degraded after this batch
  BudgetResource resource = BudgetResource::kNone;
  std::string_view batch;    ///< binary-log bytes (into the replay buffer)
};

/// Outcome of scanning one journal file.
struct JournalReplaySummary {
  std::string session;
  SessionSpec spec;
  int64_t records = 0;        ///< good batch records replayed
  bool sealed = false;        ///< a seal record ends the journal
  bool torn_tail = false;     ///< trailing bytes failed length/checksum
  int64_t good_bytes = 0;     ///< offset of the first byte past the last
                              ///< good record (truncation point)
  int64_t dropped_bytes = 0;  ///< torn bytes past good_bytes
  std::string error_class;    ///< "" or journal_torn_tail / journal_bad_header
};

/// Invoked once after the header parses, before any record. Recovery uses
/// this to construct the session the records replay into.
using JournalHeaderCallback =
    std::function<Status(const std::string& session, const SessionSpec& spec)>;

/// Invoked per good batch record, in append order. A non-OK return aborts
/// the scan (propagated to the caller).
using JournalRecordCallback = std::function<Status(const JournalRecord&)>;

/// Scans `path`, validating the header and every record checksum, invoking
/// `on_header` once and then `on_record` per batch record. Torn tails are
/// reported in the summary, not as errors; only an unreadable file or
/// unparseable header fails (a journal whose header never made it to disk
/// has no acknowledged state to recover). Failpoint site:
/// serve.journal.replay.
Result<JournalReplaySummary> ReplayJournal(const std::string& path,
                                           const JournalHeaderCallback& on_header,
                                           const JournalRecordCallback& on_record);

/// Append side. Create() writes a fresh header; Resume() opens an existing
/// journal after replay, truncating a torn tail so the next record lands on
/// a record boundary. Appends are flushed (and optionally fsynced) before
/// returning, because returning is what permits the ack.
class SessionJournal {
 public:
  SessionJournal(SessionJournal&& other) noexcept;
  SessionJournal& operator=(SessionJournal&& other) noexcept;
  ~SessionJournal();

  /// Creates `path` (truncating any previous file) and writes the header.
  static Result<SessionJournal> Create(const std::string& path,
                                       std::string_view session,
                                       const SessionSpec& spec,
                                       bool fsync_appends);

  /// Opens `path` for appending at `good_bytes` (from a ReplaySummary),
  /// truncating everything past it.
  static Result<SessionJournal> Resume(const std::string& path,
                                       int64_t good_bytes,
                                       bool fsync_appends);

  /// Appends one batch record. Durable (flushed, fsynced when configured)
  /// when it returns OK — the caller may then acknowledge the batch.
  /// Failpoint site: serve.journal.append (error / short / eintr / crash).
  Status AppendBatch(std::string_view batch_bytes, int64_t applied,
                     bool degraded, BudgetResource resource);

  /// Appends the seal record marking a graceful close, then closes the
  /// file. Failpoint site: serve.journal.seal.
  Status Seal();

  const std::string& path() const { return path_; }

 private:
  SessionJournal(std::string path, int fd, bool fsync_appends)
      : path_(std::move(path)), fd_(fd), fsync_appends_(fsync_appends) {}

  Status AppendRecord(std::string_view payload, std::string_view site);
  Status AppendRecordHeaderless(std::string_view bytes);
  void CloseFd();

  std::string path_;
  int fd_ = -1;
  bool fsync_appends_ = true;
};

/// The journal path for `session` under `dir`. `session` must already have
/// passed ValidSessionName (names are used verbatim as file stems).
std::string JournalPathFor(const std::string& dir, std::string_view session);

}  // namespace procmine::serve

#endif  // PROCMINE_SERVE_JOURNAL_H_
