#include "serve/wire.h"

#include <errno.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace procmine::serve {

namespace {

/// Spec encoding version; bumped only on incompatible layout changes (the
/// journal embeds specs, so old journals must keep decoding).
constexpr uint64_t kSpecVersion = 1;

}  // namespace

std::string_view ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk:
      return "ok";
    case ResponseCode::kBadFrame:
      return "bad_frame";
    case ResponseCode::kDataError:
      return "data_error";
    case ResponseCode::kDegraded:
      return "degraded";
    case ResponseCode::kInternal:
      return "internal";
    case ResponseCode::kOverloaded:
      return "overloaded";
    case ResponseCode::kSessionClosed:
      return "session_closed";
  }
  return "unknown";
}

std::string EncodeSessionSpec(const SessionSpec& spec) {
  std::string out;
  PutVarint64(&out, kSpecVersion);
  PutVarintSigned64(&out, spec.noise_threshold);
  PutVarintSigned64(&out, spec.limits.deadline_ms);
  PutVarintSigned64(&out, spec.limits.max_memory_bytes);
  PutVarintSigned64(&out, spec.limits.max_executions);
  out.push_back(static_cast<char>(spec.recovery));
  return out;
}

Result<SessionSpec> DecodeSessionSpec(std::string_view bytes) {
  std::string_view cursor = bytes;
  PROCMINE_ASSIGN_OR_RETURN(uint64_t version, GetVarint64(&cursor));
  if (version != kSpecVersion) {
    return Status::DataLoss(
        StrFormat("session spec version %llu unsupported",
                  static_cast<unsigned long long>(version)));
  }
  SessionSpec spec;
  PROCMINE_ASSIGN_OR_RETURN(spec.noise_threshold, GetVarintSigned64(&cursor));
  PROCMINE_ASSIGN_OR_RETURN(spec.limits.deadline_ms,
                            GetVarintSigned64(&cursor));
  PROCMINE_ASSIGN_OR_RETURN(spec.limits.max_memory_bytes,
                            GetVarintSigned64(&cursor));
  PROCMINE_ASSIGN_OR_RETURN(spec.limits.max_executions,
                            GetVarintSigned64(&cursor));
  if (cursor.empty()) return Status::DataLoss("session spec truncated");
  int8_t policy = static_cast<int8_t>(cursor.front());
  cursor.remove_prefix(1);
  if (policy < 0 || policy > static_cast<int8_t>(RecoveryPolicy::kQuarantine)) {
    return Status::DataLoss("session spec has an unknown recovery policy");
  }
  spec.recovery = static_cast<RecoveryPolicy>(policy);
  return spec;
}

std::string EncodeRequest(const RequestFrame& request) {
  std::string out;
  out.push_back(static_cast<char>(request.type));
  PutVarint64(&out, request.seq);
  PutLengthPrefixed(&out, request.session);
  out += request.body;
  return out;
}

Result<RequestFrame> DecodeRequest(std::string_view payload) {
  if (payload.empty()) return Status::DataLoss("bad_frame_type: empty frame");
  RequestFrame request;
  uint8_t type = static_cast<uint8_t>(payload.front());
  payload.remove_prefix(1);
  if (type < static_cast<uint8_t>(FrameType::kOpen) ||
      type > static_cast<uint8_t>(FrameType::kPing)) {
    return Status::DataLoss(
        StrFormat("bad_frame_type: %d", static_cast<int>(type)));
  }
  request.type = static_cast<FrameType>(type);
  PROCMINE_ASSIGN_OR_RETURN(request.seq, GetVarint64(&payload));
  PROCMINE_ASSIGN_OR_RETURN(std::string_view session,
                            GetLengthPrefixed(&payload));
  request.session = std::string(session);
  request.body = std::string(payload);
  return request;
}

std::string EncodeResponse(const ResponseFrame& response) {
  std::string out;
  out.push_back(static_cast<char>(response.code));
  PutVarint64(&out, response.seq);
  PutVarintSigned64(&out, response.applied_executions);
  PutVarintSigned64(&out, response.session_executions);
  PutLengthPrefixed(&out, response.detail);
  out.push_back(response.degraded ? 1 : 0);
  if (response.degraded) {
    out.push_back(static_cast<char>(response.resource));
    PutLengthPrefixed(&out, response.cut_phase);
    PutLengthPrefixed(&out, response.dropped);
  }
  out += response.body;
  return out;
}

Result<ResponseFrame> DecodeResponse(std::string_view payload) {
  if (payload.empty()) return Status::DataLoss("empty response frame");
  ResponseFrame response;
  uint8_t code = static_cast<uint8_t>(payload.front());
  payload.remove_prefix(1);
  if (code > static_cast<uint8_t>(ResponseCode::kSessionClosed)) {
    return Status::DataLoss(
        StrFormat("unknown response code %d", static_cast<int>(code)));
  }
  response.code = static_cast<ResponseCode>(code);
  PROCMINE_ASSIGN_OR_RETURN(response.seq, GetVarint64(&payload));
  PROCMINE_ASSIGN_OR_RETURN(response.applied_executions,
                            GetVarintSigned64(&payload));
  PROCMINE_ASSIGN_OR_RETURN(response.session_executions,
                            GetVarintSigned64(&payload));
  PROCMINE_ASSIGN_OR_RETURN(std::string_view detail,
                            GetLengthPrefixed(&payload));
  response.detail = std::string(detail);
  if (payload.empty()) return Status::DataLoss("response frame truncated");
  response.degraded = payload.front() != 0;
  payload.remove_prefix(1);
  if (response.degraded) {
    if (payload.empty()) return Status::DataLoss("response frame truncated");
    response.resource = static_cast<BudgetResource>(payload.front());
    payload.remove_prefix(1);
    PROCMINE_ASSIGN_OR_RETURN(std::string_view phase,
                              GetLengthPrefixed(&payload));
    response.cut_phase = std::string(phase);
    PROCMINE_ASSIGN_OR_RETURN(std::string_view dropped,
                              GetLengthPrefixed(&payload));
    response.dropped = std::string(dropped);
  }
  response.body = std::string(payload);
  return response;
}

bool ValidSessionName(std::string_view name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

namespace {

/// write(2) until every byte landed. Failpoint serve.write injects EINTR
/// (retried, like the real signal), short writes (the loop absorbs them),
/// hard errors, and crashes.
Status WriteFull(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    size_t chunk = size - written;
    if (auto fp = PROCMINE_FAILPOINT("serve.write"); fp) {
      if (fp.action == failpoint::Action::kShortIO) {
        chunk = std::min<size_t>(chunk, static_cast<size_t>(
                                            std::max<int64_t>(fp.arg, 1)));
      } else if (fp.action == failpoint::Action::kEintr) {
        errno = EINTR;
        continue;
      } else {
        return fp.ToStatus("serve.write");
      }
    }
    ssize_t n = ::write(fd, data + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("serve.write: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// read(2) until `size` bytes arrived. Returns the byte count actually read
/// (< size only at EOF); IOError on errno. Same failpoint semantics as
/// WriteFull, on site serve.read.
Result<size_t> ReadFull(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    size_t chunk = size - got;
    if (auto fp = PROCMINE_FAILPOINT("serve.read"); fp) {
      if (fp.action == failpoint::Action::kShortIO) {
        chunk = std::min<size_t>(chunk, static_cast<size_t>(
                                            std::max<int64_t>(fp.arg, 1)));
      } else if (fp.action == failpoint::Action::kEintr) {
        errno = EINTR;
        continue;
      } else {
        return fp.ToStatus("serve.read");
      }
    }
    ssize_t n = ::read(fd, data + got, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("serve.read: %s", std::strerror(errno)));
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  PutFixed32(&frame, Crc32c(payload));
  return WriteFull(fd, frame.data(), frame.size());
}

Result<std::string> ReadFrame(int fd, int64_t max_payload_bytes) {
  char header[4];
  PROCMINE_ASSIGN_OR_RETURN(size_t got, ReadFull(fd, header, sizeof(header)));
  if (got == 0) return Status::NotFound("end of stream");
  if (got < sizeof(header)) {
    return Status::DataLoss("frame_truncated: EOF inside the length prefix");
  }
  std::string_view cursor(header, sizeof(header));
  PROCMINE_ASSIGN_OR_RETURN(uint32_t length, GetFixed32(&cursor));
  if (static_cast<int64_t>(length) > max_payload_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame_oversize: %u bytes declared, limit %lld", length,
                  static_cast<long long>(max_payload_bytes)));
  }
  std::string payload(length, '\0');
  if (length > 0) {
    PROCMINE_ASSIGN_OR_RETURN(got, ReadFull(fd, payload.data(), length));
    if (got < length) {
      return Status::DataLoss("frame_truncated: EOF inside the payload");
    }
  }
  char trailer[4];
  PROCMINE_ASSIGN_OR_RETURN(got, ReadFull(fd, trailer, sizeof(trailer)));
  if (got < sizeof(trailer)) {
    return Status::DataLoss("frame_truncated: EOF inside the checksum");
  }
  cursor = std::string_view(trailer, sizeof(trailer));
  PROCMINE_ASSIGN_OR_RETURN(uint32_t crc, GetFixed32(&cursor));
  if (crc != Crc32c(payload)) {
    return Status::DataLoss("frame_checksum: payload checksum mismatch");
  }
  return payload;
}

}  // namespace procmine::serve
