#include "serve/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/strings.h"

namespace procmine::serve {

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), next_seq_(other.next_seq_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_seq_ = other.next_seq_;
    other.fd_ = -1;
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<ServeClient> ServeClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError(StrFormat("connect %s: %s", socket_path.c_str(),
                                     std::strerror(err)));
  }
  return ServeClient(fd);
}

Result<ResponseFrame> ServeClient::Call(FrameType type,
                                        std::string_view session,
                                        std::string_view body) {
  RequestFrame request;
  request.type = type;
  request.seq = next_seq_++;
  request.session = std::string(session);
  request.body = std::string(body);
  PROCMINE_RETURN_NOT_OK(WriteFrame(fd_, EncodeRequest(request)));
  PROCMINE_ASSIGN_OR_RETURN(ResponseFrame response, ReadResponse());
  if (response.seq != request.seq) {
    return Status::DataLoss(
        StrFormat("response seq %llu does not match request seq %llu",
                  static_cast<unsigned long long>(response.seq),
                  static_cast<unsigned long long>(request.seq)));
  }
  return response;
}

Status ServeClient::SendRaw(std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("write: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<ResponseFrame> ServeClient::ReadResponse(int64_t max_frame_bytes) {
  PROCMINE_ASSIGN_OR_RETURN(std::string payload,
                            ReadFrame(fd_, max_frame_bytes));
  return DecodeResponse(payload);
}

}  // namespace procmine::serve
