#include "serve/journal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/mapped_file.h"
#include "util/strings.h"

namespace procmine::serve {

namespace {

constexpr char kJournalMagic[4] = {'P', 'M', 'S', 'J'};
constexpr uint64_t kJournalVersion = 1;
constexpr uint8_t kRecordBatch = 1;
constexpr uint8_t kRecordSeal = 2;
constexpr uint8_t kFlagDegraded = 1;

std::string EncodeHeader(std::string_view session, const SessionSpec& spec) {
  std::string out(kJournalMagic, sizeof(kJournalMagic));
  PutVarint64(&out, kJournalVersion);
  PutLengthPrefixed(&out, session);
  PutLengthPrefixed(&out, EncodeSessionSpec(spec));
  return out;
}

}  // namespace

std::string JournalPathFor(const std::string& dir, std::string_view session) {
  return dir + "/" + std::string(session) + std::string(kJournalSuffix);
}

Result<JournalReplaySummary> ReplayJournal(
    const std::string& path, const JournalHeaderCallback& on_header,
    const JournalRecordCallback& on_record) {
  if (auto fp = PROCMINE_FAILPOINT("serve.journal.replay"); fp) {
    if (fp.action != failpoint::Action::kShortIO &&
        fp.action != failpoint::Action::kEintr) {
      return fp.ToStatus("serve.journal.replay");
    }
  }
  PROCMINE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  std::string_view data = file.data();
  std::string_view cursor = data;

  JournalReplaySummary summary;
  auto bad_header = [&](std::string_view why) -> Result<JournalReplaySummary> {
    summary.error_class = "journal_bad_header";
    return Status::DataLoss(StrFormat("%s: journal_bad_header: %.*s",
                                      path.c_str(),
                                      static_cast<int>(why.size()),
                                      why.data()));
  };
  if (cursor.size() < sizeof(kJournalMagic) ||
      std::memcmp(cursor.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return bad_header("not a session journal (bad magic)");
  }
  cursor.remove_prefix(sizeof(kJournalMagic));
  auto version = GetVarint64(&cursor);
  if (!version.ok() || *version != kJournalVersion) {
    return bad_header("unsupported journal version");
  }
  auto session = GetLengthPrefixed(&cursor);
  if (!session.ok() || !ValidSessionName(*session)) {
    return bad_header("bad session name");
  }
  summary.session = std::string(*session);
  auto spec_bytes = GetLengthPrefixed(&cursor);
  if (!spec_bytes.ok()) return bad_header("truncated session spec");
  auto spec = DecodeSessionSpec(*spec_bytes);
  if (!spec.ok()) return bad_header(spec.status().message());
  summary.spec = *spec;
  summary.good_bytes = static_cast<int64_t>(data.size() - cursor.size());
  if (on_header) {
    PROCMINE_RETURN_NOT_OK(on_header(summary.session, summary.spec));
  }

  // Record scan: every record must decode and checksum; the first failure
  // marks the torn tail and ends the scan.
  while (!cursor.empty() && !summary.sealed) {
    auto length = GetFixed32(&cursor);
    auto crc = length.ok() ? GetFixed32(&cursor)
                           : Result<uint32_t>(length.status());
    if (!crc.ok() || cursor.size() < *length) {
      summary.torn_tail = true;
      break;
    }
    std::string_view payload = cursor.substr(0, *length);
    if (Crc32c(payload) != *crc) {
      summary.torn_tail = true;
      break;
    }
    // Payload decode errors also count as a torn tail: the record framing
    // is ours, so a mangled interior means the write never completed
    // coherently.
    std::string_view body = payload;
    if (body.size() < 3) {
      summary.torn_tail = true;
      break;
    }
    uint8_t kind = static_cast<uint8_t>(body[0]);
    uint8_t flags = static_cast<uint8_t>(body[1]);
    uint8_t resource = static_cast<uint8_t>(body[2]);
    body.remove_prefix(3);
    auto applied = GetVarint64(&body);
    if (!applied.ok() || kind < kRecordBatch || kind > kRecordSeal ||
        resource > static_cast<uint8_t>(BudgetResource::kExecutions)) {
      summary.torn_tail = true;
      break;
    }
    cursor.remove_prefix(*length);
    summary.good_bytes = static_cast<int64_t>(data.size() - cursor.size());
    if (kind == kRecordSeal) {
      summary.sealed = true;
      break;
    }
    JournalRecord record;
    record.applied = static_cast<int64_t>(*applied);
    record.degraded = (flags & kFlagDegraded) != 0;
    record.resource = static_cast<BudgetResource>(resource);
    record.batch = body;
    PROCMINE_RETURN_NOT_OK(on_record(record));
    ++summary.records;
  }
  if (summary.torn_tail) {
    summary.dropped_bytes =
        static_cast<int64_t>(data.size()) - summary.good_bytes;
    summary.error_class = "journal_torn_tail";
  }
  return summary;
}

SessionJournal::SessionJournal(SessionJournal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      fsync_appends_(other.fsync_appends_) {
  other.fd_ = -1;
}

SessionJournal& SessionJournal::operator=(SessionJournal&& other) noexcept {
  if (this != &other) {
    CloseFd();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    fsync_appends_ = other.fsync_appends_;
    other.fd_ = -1;
  }
  return *this;
}

SessionJournal::~SessionJournal() { CloseFd(); }

void SessionJournal::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<SessionJournal> SessionJournal::Create(const std::string& path,
                                              std::string_view session,
                                              const SessionSpec& spec,
                                              bool fsync_appends) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot create journal %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  SessionJournal journal(path, fd, fsync_appends);
  PROCMINE_RETURN_NOT_OK(journal.AppendRecordHeaderless(
      EncodeHeader(session, spec)));
  return journal;
}

Result<SessionJournal> SessionJournal::Resume(const std::string& path,
                                              int64_t good_bytes,
                                              bool fsync_appends) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open journal %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  // Truncate the torn tail so the next append starts on a record boundary.
  if (::ftruncate(fd, static_cast<off_t>(good_bytes)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError(StrFormat("cannot truncate journal %s: %s",
                                     path.c_str(), std::strerror(err)));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError(StrFormat("cannot seek journal %s: %s",
                                     path.c_str(), std::strerror(err)));
  }
  return SessionJournal(path, fd, fsync_appends);
}

Status SessionJournal::AppendRecordHeaderless(std::string_view bytes) {
  // Raw write used only for the file header (records go through
  // AppendRecord, which frames and checksums).
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("journal %s: %s", path_.c_str(),
                                       std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_appends_ && ::fsync(fd_) != 0) {
    return Status::IOError(StrFormat("journal fsync %s: %s", path_.c_str(),
                                     std::strerror(errno)));
  }
  return Status::OK();
}

Status SessionJournal::AppendRecord(std::string_view payload,
                                    std::string_view site) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal is closed: " + path_);
  }
  std::string framed;
  framed.reserve(payload.size() + 8);
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  PutFixed32(&framed, Crc32c(payload));
  framed += payload;

  size_t written = 0;
  while (written < framed.size()) {
    size_t chunk = framed.size() - written;
    if (auto fp = PROCMINE_FAILPOINT(site); fp) {
      if (fp.action == failpoint::Action::kShortIO) {
        chunk = std::min<size_t>(chunk, static_cast<size_t>(
                                            std::max<int64_t>(fp.arg, 1)));
      } else if (fp.action == failpoint::Action::kEintr) {
        errno = EINTR;
        continue;
      } else {
        // A failed append may have landed a partial record; callers treat
        // any non-OK as "not acknowledged" and recovery truncates the tail.
        return fp.ToStatus(site);
      }
    }
    ssize_t n = ::write(fd_, framed.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("journal %s: %s", path_.c_str(),
                                       std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_appends_ && ::fsync(fd_) != 0) {
    return Status::IOError(StrFormat("journal fsync %s: %s", path_.c_str(),
                                     std::strerror(errno)));
  }
  return Status::OK();
}

Status SessionJournal::AppendBatch(std::string_view batch_bytes,
                                   int64_t applied, bool degraded,
                                   BudgetResource resource) {
  std::string payload;
  payload.reserve(batch_bytes.size() + 8);
  payload.push_back(static_cast<char>(kRecordBatch));
  payload.push_back(static_cast<char>(degraded ? kFlagDegraded : 0));
  payload.push_back(static_cast<char>(resource));
  PutVarint64(&payload, static_cast<uint64_t>(applied));
  payload += batch_bytes;
  return AppendRecord(payload, "serve.journal.append");
}

Status SessionJournal::Seal() {
  std::string payload;
  payload.push_back(static_cast<char>(kRecordSeal));
  payload.push_back(0);
  payload.push_back(static_cast<char>(BudgetResource::kNone));
  PutVarint64(&payload, 0);
  PROCMINE_RETURN_NOT_OK(AppendRecord(payload, "serve.journal.seal"));
  CloseFd();
  return Status::OK();
}

}  // namespace procmine::serve
