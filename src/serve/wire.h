// Wire protocol of `procmine serve`: length-prefixed binary frames over a
// unix-domain stream socket.
//
// Every frame is `fixed32 payload_len | payload | fixed32 crc32c(payload)`.
// The checksum makes a torn or bit-flipped frame detectable before any
// payload byte is interpreted, mirroring the binary-log format's stance that
// corruption must be detected, never silently mis-mined. A frame that fails
// to decode is classified with the same error-class style as recovery-mode
// ingestion (frame_oversize / frame_truncated / frame_checksum /
// bad_frame_type) so server logs and tests share one taxonomy.
//
// Requests carry a session name: many independent process-log sessions
// multiplex over one server (and may arrive over separate connections).
// Responses carry an exit-taxonomy-style status code — the same meanings as
// the CLI's exit codes (0 ok, 2 client/usage, 3 data, 4 degraded,
// 5 internal) plus server-only codes for overload shedding and closed
// sessions — so a scripted client can tell "my batch was malformed" from
// "the server is shedding load" without parsing prose.

#ifndef PROCMINE_SERVE_WIRE_H_
#define PROCMINE_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "log/recovery.h"
#include "util/budget.h"
#include "util/result.h"

namespace procmine::serve {

/// Hard ceiling a server enforces on one frame's payload; a hostile client
/// declaring a huge length is rejected before any allocation of that size.
inline constexpr int64_t kDefaultMaxFrameBytes = 64ll << 20;

/// What a request frame asks for.
enum class FrameType : uint8_t {
  kOpen = 1,   ///< create (or re-attach to) a session; body = SessionSpec
  kBatch = 2,  ///< append a batch; body = binary-log bytes (EncodeBinaryLog)
  kQuery = 3,  ///< fetch the current model as canonical edge text
  kClose = 4,  ///< close the session (publish + seal its journal)
  kPing = 5,   ///< liveness probe; echoes ok
};

/// Exit-taxonomy-style status of one response frame. Values 0-5 mirror the
/// CLI exit codes (docs/robustness.md); 6-7 are server-only.
enum class ResponseCode : uint8_t {
  kOk = 0,
  kBadFrame = 2,       ///< malformed frame or request; the connection closes
  kDataError = 3,      ///< batch failed to decode / malformed execution
  kDegraded = 4,       ///< session budget exhausted; partial result, see
                       ///< degradation fields
  kInternal = 5,       ///< server-side fault (e.g. journal append failed)
  kOverloaded = 6,     ///< shed under memory pressure; retry later
  kSessionClosed = 7,  ///< request for a closed or unknown session
};

/// "ok" / "bad_frame" / "data_error" / ... (stable, used in logs and tests).
std::string_view ResponseCodeName(ResponseCode code);

/// Per-session knobs carried by a kOpen body. The limits become the
/// session's own RunBudget: one tenant exhausting its budget degrades that
/// session only.
struct SessionSpec {
  int64_t noise_threshold = 1;
  RunBudget::Limits limits;
  RecoveryPolicy recovery = RecoveryPolicy::kStrict;
};

/// Deterministic binary encoding of a spec (journals embed it, so replay
/// reconstructs the session exactly as it was opened).
std::string EncodeSessionSpec(const SessionSpec& spec);
Result<SessionSpec> DecodeSessionSpec(std::string_view bytes);

/// One decoded request frame.
struct RequestFrame {
  FrameType type = FrameType::kPing;
  uint64_t seq = 0;      ///< client-chosen; echoed in the response
  std::string session;   ///< empty only for kPing
  std::string body;      ///< kOpen: SessionSpec; kBatch: binary-log bytes
};

/// One decoded response frame. Degradation fields are meaningful when
/// `degraded` is set (code is then usually kDegraded, mirroring the CLI
/// exit-4 contract: a partial model, not a bare error).
struct ResponseFrame {
  ResponseCode code = ResponseCode::kOk;
  uint64_t seq = 0;
  int64_t applied_executions = 0;  ///< executions absorbed by this request
  int64_t session_executions = 0;  ///< session total after this request
  std::string detail;              ///< human-readable context ("" when ok)
  bool degraded = false;
  BudgetResource resource = BudgetResource::kNone;
  std::string cut_phase;
  std::string dropped;
  std::string body;  ///< kQuery: canonical model edge text
};

std::string EncodeRequest(const RequestFrame& request);
Result<RequestFrame> DecodeRequest(std::string_view payload);
std::string EncodeResponse(const ResponseFrame& response);
Result<ResponseFrame> DecodeResponse(std::string_view payload);

/// True when `name` is a safe session name: nonempty, at most 128 bytes of
/// [A-Za-z0-9_.-], not starting with '.'. Session names become journal and
/// registry file names, so this is the path-traversal guard.
bool ValidSessionName(std::string_view name);

// ---------------------------------------------------------------------------
// Framed IO over a file descriptor. Both helpers absorb EINTR and short
// reads/writes (the failpoint sites serve.read / serve.write inject both,
// plus hard IO errors and crashes).

/// Writes one frame (length prefix + payload + checksum). IOError on a
/// closed or failing peer.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame and verifies its checksum. Returns the payload.
/// NotFound on clean EOF (peer closed between frames); DataLoss with an
/// error-class message (frame_truncated / frame_checksum) on a torn or
/// corrupt frame; InvalidArgument (frame_oversize) when the declared length
/// exceeds `max_payload_bytes`.
Result<std::string> ReadFrame(int fd, int64_t max_payload_bytes);

}  // namespace procmine::serve

#endif  // PROCMINE_SERVE_WIRE_H_
