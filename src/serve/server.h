// ServeCore + SocketServer: the `procmine serve` daemon.
//
// ServeCore is the socket-free heart (and the unit under test): a session
// table multiplexing many tenants onto one ThreadPool. Connection threads
// (or tests) call Handle() synchronously; internally a batch/query/close
// request is enqueued on its session's bounded ingress queue and a pump
// thread fans the sessions with pending work out over the pool — each
// session is drained by exactly one shard at a time, so every session's
// operations apply serially in arrival order. That serial discipline is why
// an N-tenant run is byte-identical to mining each session alone, for any
// thread count.
//
// Robustness posture:
//   * Isolation — every per-session fault (malformed batch, budget cut,
//     journal error) is converted into that session's response code and
//     touches no other session. A malformed FRAME (unparseable stream)
//     costs the client its connection, never anyone's session.
//   * Recovery — RecoverFromJournals() replays every journal in the
//     journal directory; torn tails are truncated (the torn batch was
//     never acked) and sealed journals (graceful closes) are not
//     resurrected.
//   * Backpressure — a full session queue blocks the submitting connection
//     (the client stops being read, so the kernel socket buffer throttles
//     it); a global queued-bytes bound and the RunBudget memory high-water
//     shed new batches with kOverloaded instead of OOMing. Idle sessions
//     are closed (published + sealed) after idle_timeout_ms.
//   * Drain — Drain() finishes all queued work, publishes every live
//     session's model to its ModelRegistry (<registry_root>/<session>),
//     and seals journals: the SIGTERM path.
//
// SocketServer is the thin unix-socket front end: an acceptor plus one
// thread per connection, all polling a stop flag so SIGTERM turns into a
// graceful drain. Failpoint sites: serve.accept, serve.read, serve.write.

#ifndef PROCMINE_SERVE_SERVER_H_
#define PROCMINE_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session.h"
#include "serve/wire.h"
#include "util/budget.h"
#include "util/thread_pool.h"

namespace procmine::serve {

struct ServeOptions {
  /// Journal directory; "" disables journaling (and crash recovery).
  std::string journal_dir;
  /// Registry root; "" disables model publication. Session models publish
  /// to <registry_root>/<session> on close / idle timeout / drain.
  std::string registry_root;
  /// Worker pool size (1 = inline sequential; <=0 = hardware concurrency).
  int threads = 1;
  /// Per-session ingress queue bound, in batches. A submitter whose
  /// session queue is full blocks until the pump drains it.
  int queue_batches = 8;
  /// Per-frame payload ceiling handed to ReadFrame.
  int64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Idle-session timeout; a session with no traffic for this long is
  /// closed (published + sealed). <0 disables.
  int64_t idle_timeout_ms = -1;
  /// Open-session ceiling; opens beyond it are shed with kOverloaded.
  int64_t max_sessions = 256;
  /// Global bound on bytes sitting in ingress queues. Deterministic
  /// companion of the rss high-water: either tripping sheds the incoming
  /// batch (the submitter IS the noisiest client — it found the server
  /// already saturated).
  int64_t max_queued_bytes = 64ll << 20;
  /// Whole-server budget. Only max_memory_bytes is read (through
  /// OverMemoryHighWater) — per-session limits live in each SessionSpec.
  RunBudget::Limits global_limits;
  /// Spec for sessions opened with an empty kOpen body.
  SessionSpec default_spec;
  /// fsync journal appends (durability vs. throughput; tests turn it off).
  bool fsync_journal = true;
};

/// Monotonic counters, readable while serving (all guarded internally).
struct ServeStats {
  int64_t sessions_opened = 0;
  int64_t sessions_recovered = 0;
  int64_t sessions_closed = 0;
  int64_t batches_applied = 0;
  int64_t batches_degraded = 0;
  int64_t batches_rejected = 0;  ///< data errors (isolation events)
  int64_t batches_shed = 0;      ///< overload rejections
  int64_t journals_torn = 0;     ///< torn tails truncated during recovery
  int64_t journals_skipped = 0;  ///< unreadable/corrupt journals skipped
  int64_t models_published = 0;
};

class ServeCore {
 public:
  explicit ServeCore(const ServeOptions& options);
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Replays every *.pmj under journal_dir, rebuilding live sessions and
  /// truncating torn tails. Unreadable or bad-header journals are skipped
  /// (logged in stats) — one corrupt tenant must not block the restart.
  /// Call once, before serving. Returns the number of sessions restored.
  Result<int64_t> RecoverFromJournals();

  /// Processes one request synchronously: table operations (open/ping)
  /// inline, session work (batch/query/close) through the session's queue
  /// and the pump. Safe to call from any number of threads.
  ResponseFrame Handle(const RequestFrame& request);

  /// Graceful drain: refuses new work, finishes every queued request,
  /// publishes every live session's model, seals journals. Idempotent.
  Status Drain();

  const ServeStats& stats() const { return stats_; }
  int64_t sessions_open() const;
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

 private:
  struct Work;
  struct SessionEntry;

  ResponseFrame HandleOpen(const RequestFrame& request);
  ResponseFrame SubmitWork(const RequestFrame& request);

  void PumpLoop();
  void DrainSessionQueue(SessionEntry* entry);
  void ExecuteWork(SessionEntry* entry, Work* work);
  /// Publishes + seals one session (close path). Caller must be the
  /// entry's exclusive drainer (or the post-pump drain).
  void CloseSession(SessionEntry* entry, std::string* detail);
  Status PublishModel(Session* session);
  void ScanIdleSessions();

  ServeOptions options_;
  RunBudget global_budget_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable pump_cv_;    ///< pump: work arrived / stop
  std::condition_variable space_cv_;   ///< submitters: queue room / drained
  std::map<std::string, std::unique_ptr<SessionEntry>> sessions_;
  int64_t total_queued_bytes_ = 0;
  bool stop_pump_ = false;
  std::atomic<bool> draining_{false};
  bool drained_ = false;
  ServeStats stats_;

  std::thread pump_;
};

/// Unix-domain stream front end over a ServeCore.
class SocketServer {
 public:
  /// `stop` is polled by every loop (~5x/second); the CLI's signal handler
  /// sets it on SIGTERM/SIGINT.
  SocketServer(ServeCore* core, std::string socket_path,
               int64_t max_frame_bytes, const std::atomic<bool>* stop);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on the socket path (unlinking a stale file first).
  Status Start();

  /// Accept loop; returns once `stop` is set and every connection thread
  /// exited. The caller then runs core->Drain(). Failpoint: serve.accept.
  Status Serve();

 private:
  void ConnectionLoop(int fd);

  ServeCore* core_;
  std::string socket_path_;
  int64_t max_frame_bytes_;
  const std::atomic<bool>* stop_;
  int listen_fd_ = -1;

  std::mutex threads_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace procmine::serve

#endif  // PROCMINE_SERVE_SERVER_H_
