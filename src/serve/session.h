// Session: one tenant's mining state inside `procmine serve`.
//
// A session owns an IncrementalMiner, its own RunBudget (built from the
// SessionSpec the client sent at open), a sticky DegradationInfo, and
// optionally the session's write-ahead journal. It is the fault-isolation
// unit: every outcome of applying a batch — decode failure, budget cut,
// journal fault — is expressed as a BatchOutcome that maps onto one
// response frame and touches nothing outside this object.
//
// Sessions are NOT thread-safe. The server guarantees each session's
// operations run serially (batches drain FIFO from its ingress queue on one
// shard at a time); that serial discipline, plus the journal's exact
// applied-counts, is what makes multi-tenant runs byte-identical to mining
// each session alone.
//
// Batch atomicity: a batch either (a) fully applies, (b) applies a prefix
// under a budget cut — the cut is reported and journaled so replay stops at
// the same prefix — or (c) applies nothing: on a decode/semantic error or a
// journal-append failure the already-absorbed prefix is evicted (the
// miner's RemoveExecution is an exact inverse), so the model never reflects
// a batch the client was not acked for.

#ifndef PROCMINE_SERVE_SESSION_H_
#define PROCMINE_SERVE_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "mine/incremental.h"
#include "serve/journal.h"
#include "serve/wire.h"
#include "util/result.h"

namespace procmine::serve {

/// What applying one batch did; maps 1:1 onto a response frame.
struct BatchOutcome {
  ResponseCode code = ResponseCode::kOk;
  int64_t applied = 0;       ///< executions absorbed by this batch
  std::string detail;        ///< error class / salvage summary / ""
  DegradationInfo degradation;  ///< set when code == kDegraded
};

class Session {
 public:
  Session(std::string name, const SessionSpec& spec);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Attaches the session's journal. Once attached, ApplyBatch appends
  /// every acknowledged batch before reporting success. Without a journal
  /// (in-process tests) batches apply unjournaled.
  void AttachJournal(SessionJournal journal) { journal_ = std::move(journal); }
  bool has_journal() const { return journal_.has_value(); }

  /// Seals the journal (graceful close). No-op without a journal.
  Status SealJournal();

  /// Decodes `batch_bytes` under the session's recovery policy, absorbs it
  /// under the session's budget, journals the acknowledged prefix, and
  /// reports the outcome. Never throws the session away: a data error
  /// leaves the session live with its model unchanged (isolation), a budget
  /// cut freezes the model (sticky degraded — later batches return
  /// kDegraded with applied == 0), a journal fault evicts the batch and
  /// reports kInternal.
  BatchOutcome ApplyBatch(std::string_view batch_bytes);

  /// Replays one journal record: absorbs exactly `record.applied`
  /// executions of the recorded batch — no budget probing, so replay is
  /// deterministic — and restores the recorded degradation state.
  Status ReplayRecord(const JournalRecord& record);

  /// The current model as canonical edge text: one "from<TAB>to" line per
  /// edge in activity-name space, sorted lexicographically. Byte-comparable
  /// across servers, restarts, and thread counts; also loadable by
  /// `procmine check --model=`. FailedPrecondition before any execution.
  Result<std::string> CanonicalModelText() const;

  const std::string& name() const { return name_; }
  const SessionSpec& spec() const { return spec_; }
  const IncrementalMiner& miner() const { return miner_; }
  int64_t executions() const {
    return static_cast<int64_t>(miner_.num_executions());
  }
  bool degraded() const { return degradation_.degraded; }
  const DegradationInfo& degradation() const { return degradation_; }

  /// Names of the first / last absorbed execution (registry snapshot
  /// provenance). Empty before any execution.
  const std::string& first_execution_name() const { return first_name_; }
  const std::string& last_execution_name() const { return last_name_; }

 private:
  void NoteApplied(const EventLog& batch, int64_t applied);

  std::string name_;
  SessionSpec spec_;
  RunBudget budget_;
  IncrementalMiner miner_;
  DegradationInfo degradation_;
  std::optional<SessionJournal> journal_;
  std::string first_name_;
  std::string last_name_;
};

}  // namespace procmine::serve

#endif  // PROCMINE_SERVE_SESSION_H_
