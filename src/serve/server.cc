#include "serve/server.h"

#include <dirent.h>
#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <future>
#include <utility>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace procmine::serve {

namespace {

using Clock = std::chrono::steady_clock;

void FillDegradation(const DegradationInfo& degradation,
                     ResponseFrame* response) {
  response->degraded = degradation.degraded;
  response->resource = degradation.resource;
  response->cut_phase = degradation.cut_phase;
  response->dropped = degradation.dropped;
}

}  // namespace

struct ServeCore::Work {
  FrameType type = FrameType::kPing;
  uint64_t seq = 0;  ///< echoed into the response set on `done`
  std::string bytes;
  std::promise<ResponseFrame> done;
};

struct ServeCore::SessionEntry {
  std::string name;
  std::unique_ptr<Session> session;  ///< null once closed (tombstone)
  std::deque<std::unique_ptr<Work>> queue;
  int64_t queued_bytes = 0;
  bool busy = false;  ///< a pump shard is draining this queue
  Clock::time_point last_activity = Clock::now();
};

ServeCore::ServeCore(const ServeOptions& options)
    : options_(options), global_budget_(options.global_limits) {
  if (options_.queue_batches < 1) options_.queue_batches = 1;
  pool_ = std::make_unique<ThreadPool>(ResolveThreadCount(options_.threads));
  global_budget_.Start();
  pump_ = std::thread(&ServeCore::PumpLoop, this);
}

ServeCore::~ServeCore() {
  // Idempotent; the CLI already drained on the graceful path. A publish
  // error here has nowhere to go — the destructor only guarantees the pump
  // is stopped and queued work answered.
  (void)Drain();
}

int64_t ServeCore::sessions_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t open = 0;
  for (const auto& [name, entry] : sessions_) {
    if (entry->session != nullptr) ++open;
  }
  return open;
}

// ---------------------------------------------------------------------------
// Recovery

Result<int64_t> ServeCore::RecoverFromJournals() {
  if (options_.journal_dir.empty()) return int64_t{0};
  // The pump is already running (started in the constructor) and iterates
  // sessions_ under mu_, so the whole rebuild holds the lock. Recovery runs
  // once, before any client traffic — blocking the (idle) pump is free.
  std::lock_guard<std::mutex> lock(mu_);
  DIR* dir = ::opendir(options_.journal_dir.c_str());
  if (dir == nullptr) {
    if (errno != ENOENT) {
      return Status::IOError(StrFormat("cannot open journal dir %s: %s",
                                       options_.journal_dir.c_str(),
                                       std::strerror(errno)));
    }
    if (::mkdir(options_.journal_dir.c_str(), 0755) != 0) {
      return Status::IOError(StrFormat("cannot create journal dir %s: %s",
                                       options_.journal_dir.c_str(),
                                       std::strerror(errno)));
    }
    return int64_t{0};
  }
  std::vector<std::string> files;
  while (struct dirent* ent = ::readdir(dir)) {
    std::string_view name(ent->d_name);
    if (EndsWith(name, kJournalSuffix)) files.emplace_back(name);
  }
  ::closedir(dir);
  std::sort(files.begin(), files.end());  // deterministic restore order

  int64_t recovered = 0;
  for (const std::string& file : files) {
    const std::string path = options_.journal_dir + "/" + file;
    std::string session_name;
    Session* session = nullptr;
    auto summary = ReplayJournal(
        path,
        [&](const std::string& name, const SessionSpec& spec) -> Status {
          if (sessions_.count(name) > 0) {
            return Status::DataLoss(
                StrFormat("duplicate session %s in journal %s", name.c_str(),
                          path.c_str()));
          }
          auto entry = std::make_unique<SessionEntry>();
          entry->name = name;
          entry->session = std::make_unique<Session>(name, spec);
          session = entry->session.get();
          session_name = name;
          sessions_.emplace(name, std::move(entry));
          return Status::OK();
        },
        [&](const JournalRecord& record) {
          return session->ReplayRecord(record);
        });
    if (!summary.ok()) {
      // One corrupt tenant must not block the restart: drop whatever the
      // failed replay built and keep going. The journal file is left in
      // place for offline triage.
      if (!session_name.empty()) sessions_.erase(session_name);
      ++stats_.journals_skipped;
      continue;
    }
    if (summary->torn_tail) ++stats_.journals_torn;
    if (summary->sealed) {
      // Graceful close: the model was published before the seal. Do not
      // resurrect the session — a re-open starts a fresh journal and the
      // registry chain continues from the published version.
      if (!session_name.empty()) sessions_.erase(session_name);
      continue;
    }
    auto journal =
        SessionJournal::Resume(path, summary->good_bytes,
                               options_.fsync_journal);
    if (!journal.ok()) {
      if (!session_name.empty()) sessions_.erase(session_name);
      ++stats_.journals_skipped;
      continue;
    }
    session->AttachJournal(std::move(*journal));
    ++recovered;
    ++stats_.sessions_recovered;
  }
  return recovered;
}

// ---------------------------------------------------------------------------
// Request handling

ResponseFrame ServeCore::Handle(const RequestFrame& request) {
  switch (request.type) {
    case FrameType::kPing: {
      ResponseFrame response;
      response.seq = request.seq;
      return response;
    }
    case FrameType::kOpen:
      return HandleOpen(request);
    case FrameType::kBatch:
    case FrameType::kQuery:
    case FrameType::kClose:
      return SubmitWork(request);
  }
  ResponseFrame response;
  response.seq = request.seq;
  response.code = ResponseCode::kBadFrame;
  response.detail = "unknown frame type";
  return response;
}

ResponseFrame ServeCore::HandleOpen(const RequestFrame& request) {
  ResponseFrame response;
  response.seq = request.seq;
  if (!ValidSessionName(request.session)) {
    response.code = ResponseCode::kBadFrame;
    response.detail = "invalid session name";
    return response;
  }
  SessionSpec spec = options_.default_spec;
  if (!request.body.empty()) {
    auto decoded = DecodeSessionSpec(request.body);
    if (!decoded.ok()) {
      response.code = ResponseCode::kBadFrame;
      response.detail = std::string(decoded.status().message());
      return response;
    }
    spec = *decoded;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (draining_.load(std::memory_order_relaxed)) {
    response.code = ResponseCode::kOverloaded;
    response.detail = "server is draining";
    return response;
  }
  auto it = sessions_.find(request.session);
  if (it != sessions_.end() && it->second->session != nullptr) {
    // Re-attach: the session (possibly journal-recovered) keeps its
    // original spec.
    response.session_executions = it->second->session->executions();
    response.detail = "attached";
    return response;
  }
  int64_t open = 0;
  for (const auto& [name, entry] : sessions_) {
    if (entry->session != nullptr) ++open;
  }
  if (open >= options_.max_sessions) {
    response.code = ResponseCode::kOverloaded;
    response.detail = StrFormat("session limit (%lld) reached",
                                static_cast<long long>(options_.max_sessions));
    return response;
  }

  auto session = std::make_unique<Session>(request.session, spec);
  if (!options_.journal_dir.empty()) {
    auto journal = SessionJournal::Create(
        JournalPathFor(options_.journal_dir, request.session), request.session,
        spec, options_.fsync_journal);
    if (!journal.ok()) {
      response.code = ResponseCode::kInternal;
      response.detail = std::string(journal.status().message());
      return response;
    }
    session->AttachJournal(std::move(*journal));
  }
  if (it == sessions_.end()) {
    auto entry = std::make_unique<SessionEntry>();
    entry->name = request.session;
    it = sessions_.emplace(request.session, std::move(entry)).first;
  }
  it->second->session = std::move(session);
  it->second->last_activity = Clock::now();
  ++stats_.sessions_opened;
  return response;
}

ResponseFrame ServeCore::SubmitWork(const RequestFrame& request) {
  ResponseFrame response;
  response.seq = request.seq;
  auto work = std::make_unique<Work>();
  work->type = request.type;
  work->seq = request.seq;
  work->bytes = request.body;
  std::future<ResponseFrame> done = work->done.get_future();
  const int64_t size = static_cast<int64_t>(work->bytes.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_.load(std::memory_order_relaxed)) {
      response.code = ResponseCode::kOverloaded;
      response.detail = "server is draining";
      ++stats_.batches_shed;
      return response;
    }
    auto it = sessions_.find(request.session);
    if (it == sessions_.end() || it->second->session == nullptr) {
      response.code = ResponseCode::kSessionClosed;
      response.detail = "unknown or closed session";
      return response;
    }
    SessionEntry* entry = it->second.get();
    if (request.type == FrameType::kBatch) {
      // Overload shedding: the submitter found the server saturated, so
      // the submitter is who gets shed. The queued-bytes bound is the
      // deterministic twin of the rss high-water probe.
      if (total_queued_bytes_ + size > options_.max_queued_bytes ||
          global_budget_.OverMemoryHighWater()) {
        response.code = ResponseCode::kOverloaded;
        response.detail = "ingress over memory high water; retry later";
        ++stats_.batches_shed;
        return response;
      }
      // Backpressure: a full session queue blocks this submitter (and
      // thereby its connection) until the pump catches up.
      space_cv_.wait(lock, [&] {
        return draining_.load(std::memory_order_relaxed) ||
               entry->queue.size() <
                   static_cast<size_t>(options_.queue_batches);
      });
      if (draining_.load(std::memory_order_relaxed)) {
        response.code = ResponseCode::kOverloaded;
        response.detail = "server is draining";
        ++stats_.batches_shed;
        return response;
      }
    }
    entry->queue.push_back(std::move(work));
    entry->queued_bytes += size;
    total_queued_bytes_ += size;
    entry->last_activity = Clock::now();
  }
  pump_cv_.notify_one();
  return done.get();
}

// ---------------------------------------------------------------------------
// The pump: sessions with pending work fan out over the pool; one shard
// drains one session at a time, so per-session application is serial.

void ServeCore::PumpLoop() {
  const auto tick = std::chrono::milliseconds(100);
  for (;;) {
    std::vector<SessionEntry*> ready;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pump_cv_.wait_for(lock, tick, [&] {
        if (stop_pump_) return true;
        for (const auto& [name, entry] : sessions_) {
          if (!entry->busy && !entry->queue.empty()) return true;
        }
        return false;
      });
      for (const auto& [name, entry] : sessions_) {
        if (!entry->busy && !entry->queue.empty()) {
          entry->busy = true;
          ready.push_back(entry.get());
        }
      }
      if (stop_pump_ && ready.empty()) return;
    }
    if (ready.size() == 1) {
      DrainSessionQueue(ready[0]);
    } else if (!ready.empty()) {
      pool_->ParallelFor(ready.size(),
                         [&](size_t /*shard*/, size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             DrainSessionQueue(ready[i]);
                           }
                         });
    }
    if (options_.idle_timeout_ms >= 0) ScanIdleSessions();
  }
}

void ServeCore::DrainSessionQueue(SessionEntry* entry) {
  for (;;) {
    std::unique_ptr<Work> work;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (entry->queue.empty()) {
        entry->busy = false;
        space_cv_.notify_all();  // Drain() waits for idle
        return;
      }
      work = std::move(entry->queue.front());
      entry->queue.pop_front();
      const int64_t size = static_cast<int64_t>(work->bytes.size());
      entry->queued_bytes -= size;
      total_queued_bytes_ -= size;
      space_cv_.notify_all();
    }
    ExecuteWork(entry, work.get());
  }
}

void ServeCore::ExecuteWork(SessionEntry* entry, Work* work) {
  static obs::Counter* applied_counter =
      obs::MetricsRegistry::Get().GetCounter("serve.batches_applied");
  static obs::Counter* rejected_counter =
      obs::MetricsRegistry::Get().GetCounter("serve.batches_rejected");

  ResponseFrame response;
  response.seq = work->seq;
  Session* session = entry->session.get();
  if (session == nullptr) {
    response.code = ResponseCode::kSessionClosed;
    response.detail = "session closed before this request was processed";
    work->done.set_value(std::move(response));
    return;
  }
  switch (work->type) {
    case FrameType::kBatch: {
      BatchOutcome outcome = session->ApplyBatch(work->bytes);
      response.code = outcome.code;
      response.applied_executions = outcome.applied;
      response.detail = outcome.detail;
      FillDegradation(outcome.degradation, &response);
      response.session_executions = session->executions();
      std::lock_guard<std::mutex> lock(mu_);
      switch (outcome.code) {
        case ResponseCode::kOk:
          ++stats_.batches_applied;
          applied_counter->Increment();
          break;
        case ResponseCode::kDegraded:
          ++stats_.batches_degraded;
          if (outcome.applied > 0) ++stats_.batches_applied;
          break;
        default:
          ++stats_.batches_rejected;
          rejected_counter->Increment();
          break;
      }
      break;
    }
    case FrameType::kQuery: {
      response.session_executions = session->executions();
      FillDegradation(session->degradation(), &response);
      if (session->executions() == 0) {
        response.detail = "no executions absorbed yet";
      } else {
        auto text = session->CanonicalModelText();
        if (text.ok()) {
          response.body = std::move(*text);
        } else {
          response.code = ResponseCode::kInternal;
          response.detail = std::string(text.status().message());
        }
      }
      break;
    }
    case FrameType::kClose: {
      response.session_executions = session->executions();
      std::string detail;
      CloseSession(entry, &detail);
      response.detail = detail;
      if (StartsWith(detail, "error")) {
        response.code = ResponseCode::kInternal;
      }
      break;
    }
    default:
      response.code = ResponseCode::kBadFrame;
      response.detail = "unexpected frame type in session queue";
      break;
  }
  work->done.set_value(std::move(response));
}

void ServeCore::CloseSession(SessionEntry* entry, std::string* detail) {
  Session* session = entry->session.get();
  if (session == nullptr) return;
  Status published = PublishModel(session);
  Status sealed = session->SealJournal();
  if (!published.ok()) {
    *detail = StrFormat("error publishing model: %s",
                        std::string(published.message()).c_str());
  } else if (!sealed.ok()) {
    *detail = StrFormat("error sealing journal: %s",
                        std::string(sealed.message()).c_str());
  } else {
    *detail = StrFormat("closed after %lld executions",
                        static_cast<long long>(session->executions()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  entry->session.reset();
  ++stats_.sessions_closed;
}

Status ServeCore::PublishModel(Session* session) {
  if (options_.registry_root.empty()) return Status::OK();
  if (session->executions() == 0) return Status::OK();
  PROCMINE_ASSIGN_OR_RETURN(ProcessGraph graph,
                            session->miner().CurrentGraph());
  if (::mkdir(options_.registry_root.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(StrFormat("cannot create registry root %s: %s",
                                     options_.registry_root.c_str(),
                                     std::strerror(errno)));
  }
  PROCMINE_ASSIGN_OR_RETURN(
      obs::ModelRegistry registry,
      obs::ModelRegistry::Open(options_.registry_root + "/" +
                               session->name()));
  obs::ModelSnapshot snapshot;
  snapshot.window.index = registry.latest_version() + 1;
  snapshot.window.first_execution = 0;
  snapshot.window.last_execution = session->executions() - 1;
  snapshot.window.num_executions = session->executions();
  snapshot.window.first_name = session->first_execution_name();
  snapshot.window.last_name = session->last_execution_name();
  snapshot.noise_threshold = session->spec().noise_threshold;
  snapshot.activities = session->miner().dictionary().names();
  std::sort(snapshot.activities.begin(), snapshot.activities.end());
  for (const Edge& e : graph.graph().Edges()) {
    snapshot.edges.push_back(obs::SnapshotEdge{
        graph.name(e.from), graph.name(e.to),
        session->miner().EdgeSupport(e.from, e.to)});
  }
  std::sort(snapshot.edges.begin(), snapshot.edges.end(),
            [](const obs::SnapshotEdge& a, const obs::SnapshotEdge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  PROCMINE_RETURN_NOT_OK(registry.Append(std::move(snapshot)).status());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.models_published;
  return Status::OK();
}

void ServeCore::ScanIdleSessions() {
  const auto now = Clock::now();
  const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_.load(std::memory_order_relaxed)) return;
  for (const auto& [name, entry] : sessions_) {
    if (entry->session == nullptr || entry->busy || !entry->queue.empty()) {
      continue;
    }
    if (now - entry->last_activity < timeout) continue;
    // Synthetic close: goes through the queue like any other request so it
    // serializes with concurrent submissions. Nobody waits on its future.
    auto work = std::make_unique<Work>();
    work->type = FrameType::kClose;
    entry->queue.push_back(std::move(work));
    entry->last_activity = now;
  }
}

// ---------------------------------------------------------------------------
// Drain

Status ServeCore::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (drained_) return Status::OK();
    draining_.store(true, std::memory_order_relaxed);
    space_cv_.notify_all();  // blocked submitters shed and return
    pump_cv_.notify_all();
    // Wait for every queue to empty and every drainer to finish.
    space_cv_.wait(lock, [&] {
      for (const auto& [name, entry] : sessions_) {
        if (entry->busy || !entry->queue.empty()) return false;
      }
      return true;
    });
    stop_pump_ = true;
    drained_ = true;
  }
  pump_cv_.notify_all();
  if (pump_.joinable()) pump_.join();

  // Publish + seal every live session, in name order (deterministic).
  Status first_error = Status::OK();
  for (const auto& [name, entry] : sessions_) {
    if (entry->session == nullptr) continue;
    std::string detail;
    CloseSession(entry.get(), &detail);
    if (StartsWith(detail, "error") && first_error.ok()) {
      first_error = Status::Internal(detail);
    }
  }
  return first_error;
}

// ---------------------------------------------------------------------------
// SocketServer

SocketServer::SocketServer(ServeCore* core, std::string socket_path,
                           int64_t max_frame_bytes,
                           const std::atomic<bool>* stop)
    : core_(core),
      socket_path_(std::move(socket_path)),
      max_frame_bytes_(max_frame_bytes),
      stop_(stop) {}

SocketServer::~SocketServer() {
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
}

Status SocketServer::Start() {
  sockaddr_un addr{};
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  ::unlink(socket_path_.c_str());  // stale socket from a crashed server
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(StrFormat("bind %s: %s", socket_path_.c_str(),
                                     std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(StrFormat("listen %s: %s", socket_path_.c_str(),
                                     std::strerror(errno)));
  }
  return Status::OK();
}

Status SocketServer::Serve() {
  while (!stop_->load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("poll: %s", std::strerror(errno)));
    }
    if (ready == 0) continue;

    bool reject = false;
    if (auto fp = PROCMINE_FAILPOINT("serve.accept"); fp) {
      if (fp.action == failpoint::Action::kEintr) continue;
      // An injected accept fault costs the incoming client its connection
      // — the server itself must keep serving.
      reject = true;
    }
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IOError(StrFormat("accept: %s", std::strerror(errno)));
    }
    if (reject) {
      ::close(fd);
      continue;
    }
    // Stall guard: a client that freezes mid-frame is dropped after 5s
    // instead of pinning its connection thread forever.
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    std::lock_guard<std::mutex> lock(threads_mu_);
    connections_.emplace_back(&SocketServer::ConnectionLoop, this, fd);
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
  return Status::OK();
}

void SocketServer::ConnectionLoop(int fd) {
  while (!stop_->load(std::memory_order_relaxed)) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    auto payload = ReadFrame(fd, max_frame_bytes_);
    if (!payload.ok()) {
      if (payload.status().code() != StatusCode::kNotFound) {
        // Torn / oversize / checksum-failed frame: the stream can no
        // longer be trusted, so answer kBadFrame (best effort) and hang
        // up. Only this client's connection is affected.
        ResponseFrame err;
        err.code = ResponseCode::kBadFrame;
        err.detail = std::string(payload.status().message());
        (void)WriteFrame(fd, EncodeResponse(err));
      }
      break;
    }
    auto request = DecodeRequest(*payload);
    ResponseFrame response;
    if (!request.ok()) {
      response.code = ResponseCode::kBadFrame;
      response.detail = std::string(request.status().message());
    } else {
      response = core_->Handle(*request);
    }
    if (!WriteFrame(fd, EncodeResponse(response)).ok()) break;
    if (!request.ok()) break;  // framing is suspect; hang up after the nack
  }
  ::close(fd);
}

}  // namespace procmine::serve
