// BitMatrix: a flat, 64-byte-aligned, row-padded bitset matrix, plus the
// word kernels (`bits::` namespace) every hot OR/AND-NOT/popcount loop in
// the mining pipeline now routes through.
//
// Rationale: the closure/reduction algorithms (Algorithm 4 of the paper) are
// whole-row unions over per-vertex descendant sets. The seed represented a
// matrix as std::vector<DynamicBitset> — one heap allocation per row,
// scattered across the heap, each op a fresh element loop. BitMatrix stores
// all rows in one 64-byte-aligned block with the row stride padded to a
// multiple of 64 bytes, so
//   * row starts are always cache-line- (and AVX-) aligned,
//   * walking rows in order is a linear scan the prefetcher can follow,
//   * whole-matrix ops (merge two shard matrices) are a single flat kernel
//     call over rows*stride words.
//
// The kernels are 8x word-unrolled scalar loops with a compile-time AVX2
// path: building with -DPROCMINE_SIMD=ON (CMake adds -mavx2 and defines
// PROCMINE_SIMD) swaps in 256-bit vector bodies. Both paths are
// bit-identical — tests/bit_matrix_test.cc pits them against the scalar
// DynamicBitset reference on random sizes including ragged tail words.
//
// Padding bits (columns >= cols() in the last in-use words and the padding
// words) are kept zero by every mutating member, so whole-row kernels never
// leak phantom bits into Count()/Intersects().

#ifndef PROCMINE_UTIL_BIT_MATRIX_H_
#define PROCMINE_UTIL_BIT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/logging.h"

#if defined(PROCMINE_SIMD) && defined(__AVX2__)
#define PROCMINE_BITS_AVX2 1
#include <immintrin.h>
#endif

namespace procmine {

class Arena;

namespace bits {

/// Name of the compiled kernel dispatch ("avx2" or "scalar-unrolled"); the
/// benches record it so BENCH_kernels.json is self-describing.
const char* KernelMode();

/// dst |= src over `n` words.
inline void Or(uint64_t* __restrict dst, const uint64_t* __restrict src,
               size_t n) {
  size_t i = 0;
#if PROCMINE_BITS_AVX2
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_or_si256(a1, b1));
  }
#else
  for (; i + 8 <= n; i += 8) {
    dst[i] |= src[i];
    dst[i + 1] |= src[i + 1];
    dst[i + 2] |= src[i + 2];
    dst[i + 3] |= src[i + 3];
    dst[i + 4] |= src[i + 4];
    dst[i + 5] |= src[i + 5];
    dst[i + 6] |= src[i + 6];
    dst[i + 7] |= src[i + 7];
  }
#endif
  for (; i < n; ++i) dst[i] |= src[i];
}

/// dst &= src over `n` words.
inline void And(uint64_t* __restrict dst, const uint64_t* __restrict src,
                size_t n) {
  size_t i = 0;
#if PROCMINE_BITS_AVX2
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_and_si256(a1, b1));
  }
#else
  for (; i + 8 <= n; i += 8) {
    dst[i] &= src[i];
    dst[i + 1] &= src[i + 1];
    dst[i + 2] &= src[i + 2];
    dst[i + 3] &= src[i + 3];
    dst[i + 4] &= src[i + 4];
    dst[i + 5] &= src[i + 5];
    dst[i + 6] &= src[i + 6];
    dst[i + 7] &= src[i + 7];
  }
#endif
  for (; i < n; ++i) dst[i] &= src[i];
}

/// dst &= ~src over `n` words.
inline void AndNot(uint64_t* __restrict dst, const uint64_t* __restrict src,
                   size_t n) {
  size_t i = 0;
#if PROCMINE_BITS_AVX2
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    // _mm256_andnot_si256(b, a) computes (~b) & a.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(b0, a0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_andnot_si256(b1, a1));
  }
#else
  for (; i + 8 <= n; i += 8) {
    dst[i] &= ~src[i];
    dst[i + 1] &= ~src[i + 1];
    dst[i + 2] &= ~src[i + 2];
    dst[i + 3] &= ~src[i + 3];
    dst[i + 4] &= ~src[i + 4];
    dst[i + 5] &= ~src[i + 5];
    dst[i + 6] &= ~src[i + 6];
    dst[i + 7] &= ~src[i + 7];
  }
#endif
  for (; i < n; ++i) dst[i] &= ~src[i];
}

/// True iff a and b share any set bit in the first `n` words.
inline bool Intersects(const uint64_t* __restrict a,
                       const uint64_t* __restrict b, size_t n) {
  size_t i = 0;
#if PROCMINE_BITS_AVX2
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(x, y)) return true;
  }
#else
  for (; i + 8 <= n; i += 8) {
    uint64_t acc = (a[i] & b[i]) | (a[i + 1] & b[i + 1]) |
                   (a[i + 2] & b[i + 2]) | (a[i + 3] & b[i + 3]) |
                   (a[i + 4] & b[i + 4]) | (a[i + 5] & b[i + 5]) |
                   (a[i + 6] & b[i + 6]) | (a[i + 7] & b[i + 7]);
    if (acc != 0) return true;
  }
#endif
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

/// Number of set bits in the first `n` words.
inline size_t Popcount(const uint64_t* w, size_t n) {
  size_t total = 0;
  size_t i = 0;
  // popcnt has a 3-cycle latency on most cores; four accumulators keep the
  // chain from serializing. (AVX2 has no vector popcount; scalar popcnt at
  // 1/cycle already saturates the load ports here.)
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(__builtin_popcountll(w[i]));
    c1 += static_cast<size_t>(__builtin_popcountll(w[i + 1]));
    c2 += static_cast<size_t>(__builtin_popcountll(w[i + 2]));
    c3 += static_cast<size_t>(__builtin_popcountll(w[i + 3]));
  }
  total = c0 + c1 + c2 + c3;
  for (; i < n; ++i) total += static_cast<size_t>(__builtin_popcountll(w[i]));
  return total;
}

/// True iff any bit is set in the first `n` words.
inline bool Any(const uint64_t* w, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t acc = w[i] | w[i + 1] | w[i + 2] | w[i + 3] | w[i + 4] |
                   w[i + 5] | w[i + 6] | w[i + 7];
    if (acc != 0) return true;
  }
  for (; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

inline void Clear(uint64_t* w, size_t n) { std::memset(w, 0, n * 8); }

inline void Copy(uint64_t* __restrict dst, const uint64_t* __restrict src,
                 size_t n) {
  std::memcpy(dst, src, n * 8);
}

inline bool Equal(const uint64_t* a, const uint64_t* b, size_t n) {
  return std::memcmp(a, b, n * 8) == 0;
}

}  // namespace bits

/// Read-only view of one BitMatrix row. Mirrors the DynamicBitset read API
/// so call sites port by changing only the container type.
class ConstBitRow {
 public:
  ConstBitRow(const uint64_t* words, size_t cols, size_t num_words)
      : words_(words), cols_(cols), num_words_(num_words) {}

  size_t size() const { return cols_; }
  const uint64_t* words() const { return words_; }
  size_t num_words() const { return num_words_; }

  bool Test(size_t i) const {
    PROCMINE_DCHECK(i < cols_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  size_t Count() const { return bits::Popcount(words_, num_words_); }
  bool Any() const { return bits::Any(words_, num_words_); }
  bool None() const { return !Any(); }
  bool Intersects(ConstBitRow other) const {
    PROCMINE_DCHECK(cols_ == other.cols_);
    return bits::Intersects(words_, other.words_, num_words_);
  }
  friend bool operator==(ConstBitRow a, ConstBitRow b) {
    return a.cols_ == b.cols_ && bits::Equal(a.words_, b.words_, a.num_words_);
  }

 private:
  const uint64_t* words_;
  size_t cols_;
  size_t num_words_;
};

/// Mutable view of one BitMatrix row.
class BitRow {
 public:
  BitRow(uint64_t* words, size_t cols, size_t num_words)
      : words_(words), cols_(cols), num_words_(num_words) {}

  operator ConstBitRow() const { return {words_, cols_, num_words_}; }

  size_t size() const { return cols_; }
  uint64_t* words() const { return words_; }
  size_t num_words() const { return num_words_; }

  bool Test(size_t i) const {
    PROCMINE_DCHECK(i < cols_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) {
    PROCMINE_DCHECK(i < cols_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Reset(size_t i) {
    PROCMINE_DCHECK(i < cols_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Clear() { bits::Clear(words_, num_words_); }
  void OrWith(ConstBitRow other) {
    PROCMINE_DCHECK(cols_ == other.size());
    bits::Or(words_, other.words(), num_words_);
  }
  void AndWith(ConstBitRow other) {
    PROCMINE_DCHECK(cols_ == other.size());
    bits::And(words_, other.words(), num_words_);
  }
  void AndNotWith(ConstBitRow other) {
    PROCMINE_DCHECK(cols_ == other.size());
    bits::AndNot(words_, other.words(), num_words_);
  }
  void CopyFrom(ConstBitRow other) {
    PROCMINE_DCHECK(cols_ == other.size());
    bits::Copy(words_, other.words(), num_words_);
  }
  size_t Count() const { return bits::Popcount(words_, num_words_); }
  bool Any() const { return bits::Any(words_, num_words_); }
  bool None() const { return !Any(); }
  bool Intersects(ConstBitRow other) const {
    PROCMINE_DCHECK(cols_ == other.size());
    return bits::Intersects(words_, other.words(), num_words_);
  }

 private:
  uint64_t* words_;
  size_t cols_;
  size_t num_words_;
};

/// Flat rows x cols bit matrix. Rows are padded to a multiple of 64 bytes so
/// each row starts cache-line aligned; the whole block is one 64-byte-aligned
/// allocation (heap-owned, or carved from an Arena for per-execution
/// scratch). All bits start zero.
class BitMatrix {
 public:
  static constexpr size_t kAlignment = 64;
  /// Words per 64-byte cache line; the row stride is a multiple of this.
  static constexpr size_t kWordsPerLine = kAlignment / sizeof(uint64_t);

  BitMatrix() = default;
  BitMatrix(size_t rows, size_t cols);
  /// Arena-backed scratch matrix: memory is carved from `arena` and released
  /// by the arena's Reset(), not by ~BitMatrix. The arena must outlive it.
  BitMatrix(size_t rows, size_t cols, Arena* arena);
  BitMatrix(const BitMatrix& other);
  BitMatrix(BitMatrix&& other) noexcept;
  BitMatrix& operator=(const BitMatrix& other);
  BitMatrix& operator=(BitMatrix&& other) noexcept;
  ~BitMatrix();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// In-use words per row ((cols + 63) / 64), excluding padding.
  size_t words_per_row() const { return words_per_row_; }
  /// Allocated words per row, a multiple of kWordsPerLine.
  size_t row_stride() const { return stride_; }

  uint64_t* RowWords(size_t r) {
    PROCMINE_DCHECK(r < rows_);
    return data_ + r * stride_;
  }
  const uint64_t* RowWords(size_t r) const {
    PROCMINE_DCHECK(r < rows_);
    return data_ + r * stride_;
  }

  BitRow operator[](size_t r) {
    return BitRow(RowWords(r), cols_, words_per_row_);
  }
  ConstBitRow operator[](size_t r) const {
    return ConstBitRow(RowWords(r), cols_, words_per_row_);
  }
  BitRow Row(size_t r) { return (*this)[r]; }
  ConstBitRow Row(size_t r) const { return (*this)[r]; }

  bool Test(size_t r, size_t c) const {
    PROCMINE_DCHECK(r < rows_ && c < cols_);
    return (data_[r * stride_ + (c >> 6)] >> (c & 63)) & 1;
  }
  void Set(size_t r, size_t c) {
    PROCMINE_DCHECK(r < rows_ && c < cols_);
    data_[r * stride_ + (c >> 6)] |= (uint64_t{1} << (c & 63));
  }
  void Reset(size_t r, size_t c) {
    PROCMINE_DCHECK(r < rows_ && c < cols_);
    data_[r * stride_ + (c >> 6)] &= ~(uint64_t{1} << (c & 63));
  }

  /// Zeroes every bit (padding included) with one flat memset.
  void Clear();

  /// this |= other, elementwise, as ONE flat kernel call over the whole
  /// block (padding rows included — both are zero there). The shard-merge
  /// primitive: merging two accumulator matrices never loops per row.
  void OrWith(const BitMatrix& other);
  /// this &= ~other over the whole block.
  void AndNotWith(const BitMatrix& other);

  /// Total set bits.
  size_t Count() const;

  friend bool operator==(const BitMatrix& a, const BitMatrix& b);

 private:
  void AllocateZeroed(Arena* arena);
  void ReleaseStorage();

  uint64_t* data_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t words_per_row_ = 0;
  size_t stride_ = 0;
  bool owned_ = false;  // false: arena-backed or empty
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_BIT_MATRIX_H_
