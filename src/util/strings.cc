#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace procmine {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

namespace {

/// The std::isspace C-locale set (space plus the \t..\r control range)
/// without the libc call — this runs per byte of every parsed log line.
inline bool IsAsciiSpace(char c) {
  return c == ' ' || static_cast<unsigned char>(c - '\t') <= '\r' - '\t';
}

}  // namespace

void SplitWhitespaceViews(std::string_view text,
                          std::vector<std::string_view>* out) {
  out->clear();
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsAsciiSpace(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && !IsAsciiSpace(text[i])) ++i;
    if (i > start) out->push_back(text.substr(start, i - start));
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  // std::from_chars is the allocation-free fast path; the strtoll dialect it
  // replaces also accepted leading whitespace and an explicit '+', so those
  // are handled here to keep the accepted language unchanged.
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t digits = i;
  if (digits < text.size() && text[digits] == '+') ++digits;
  const char* first = text.data() + digits;
  const char* last = text.data() + text.size();
  // from_chars itself handles '-'; after an explicit '+' only digits may
  // follow ("+-5" must stay malformed, as strtoll treated it).
  if (digits > i && (first == last || *first == '-')) {
    return Status::InvalidArgument("malformed integer: '" + std::string(text) +
                                   "'");
  }
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("integer out of range: '" + std::string(text) +
                              "'");
  }
  if (ec != std::errc() || ptr != last) {
    return Status::InvalidArgument("malformed integer: '" + std::string(text) +
                                   "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty float literal");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("float out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed float: '" + buf + "'");
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", static_cast<unsigned>(c) & 0xff));
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace procmine
