#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"
#include "util/timer.h"

namespace procmine {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_log_format{static_cast<int>(LogFormat::kText)};
std::atomic<int> g_next_thread_id{0};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogFormat(LogFormat format) {
  g_log_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(g_log_format.load(std::memory_order_relaxed));
}

int CurrentThreadId() {
  thread_local int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  const double elapsed_ms =
      static_cast<double>(StopWatch::NowNanosSinceProcessStart()) / 1e6;
  const int tid = CurrentThreadId();
  if (GetLogFormat() == LogFormat::kJsonLines) {
    // One object per line; a single fprintf keeps lines whole under
    // concurrent writers (stderr is unbuffered, POSIX writes are atomic for
    // reasonable line lengths).
    std::string msg;
    AppendJsonEscaped(&msg, stream_.str());
    std::string file;
    AppendJsonEscaped(&file, file_);
    std::fprintf(stderr,
                 "{\"elapsed_ms\":%.3f,\"level\":\"%s\",\"tid\":%d,"
                 "\"file\":\"%s\",\"line\":%d,\"msg\":\"%s\"}\n",
                 elapsed_ms, LevelName(level_), tid, file.c_str(), line_,
                 msg.c_str());
    return;
  }
  std::fprintf(stderr, "[%s t%d +%.3fs %s:%d] %s\n", LevelName(level_), tid,
               elapsed_ms / 1e3, file_, line_, stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line), condition_(condition) {}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", file_, line_,
               condition_, stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace procmine
