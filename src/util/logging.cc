#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace procmine {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
               stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line), condition_(condition) {}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", file_, line_,
               condition_, stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace procmine
