#include "util/coding.h"

namespace procmine {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarintSigned64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigzagEncode(value));
}

void PutFixed32(std::string* dst, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    dst->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutLengthPrefixed(std::string* dst, std::string_view bytes) {
  PutVarint64(dst, bytes.size());
  dst->append(bytes);
}

Result<uint64_t> GetVarint64(std::string_view* cursor) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (cursor->empty()) return Status::DataLoss("truncated varint");
    uint8_t byte = static_cast<uint8_t>(cursor->front());
    cursor->remove_prefix(1);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  return Status::DataLoss("varint longer than 10 bytes");
}

Result<int64_t> GetVarintSigned64(std::string_view* cursor) {
  PROCMINE_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(cursor));
  return ZigzagDecode(raw);
}

Result<uint32_t> GetFixed32(std::string_view* cursor) {
  if (cursor->size() < 4) return Status::DataLoss("truncated fixed32");
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>((*cursor)[i]))
             << (8 * i);
  }
  cursor->remove_prefix(4);
  return value;
}

Result<std::string_view> GetLengthPrefixed(std::string_view* cursor) {
  PROCMINE_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(cursor));
  if (cursor->size() < length) {
    return Status::DataLoss("truncated length-prefixed field");
  }
  std::string_view bytes = cursor->substr(0, length);
  cursor->remove_prefix(length);
  return bytes;
}

}  // namespace procmine
