#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/strings.h"

namespace procmine::failpoint {

namespace {

struct ArmedSite {
  Injection injection;
  int64_t hits = 0;   // evaluations since arming
  int64_t fired = 0;  // times the action actually triggered
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, ArmedSite> sites;
  std::unordered_map<std::string, int64_t> hit_counts;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Fast-path gate: number of currently armed sites. Fire() is a single
// relaxed load when nothing is armed.
std::atomic<int> g_armed{0};

Action ParseAction(std::string_view name) {
  if (name == "error") return Action::kError;
  if (name == "short") return Action::kShortIO;
  if (name == "alloc") return Action::kAllocFail;
  if (name == "eintr") return Action::kEintr;
  if (name == "crash") return Action::kCrash;
  return Action::kNone;
}

}  // namespace

Status FireResult::ToStatus(std::string_view site) const {
  switch (action) {
    case Action::kError:
      return Status::IOError(
          StrFormat("injected IO error at failpoint '%s'",
                    std::string(site).c_str()));
    case Action::kAllocFail:
      return Status::Internal(
          StrFormat("injected allocation failure at failpoint '%s'",
                    std::string(site).c_str()));
    default:
      return Status::OK();
  }
}

void Activate(std::string_view site, const Injection& injection) {
  if (injection.action == Action::kNone) {
    Deactivate(site);
    return;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] =
      registry.sites.emplace(std::string(site), ArmedSite{injection});
  if (!inserted) {
    it->second = ArmedSite{injection};
  } else {
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Activate(std::string_view site, Action action, int64_t arg) {
  Injection injection;
  injection.action = action;
  injection.arg = arg;
  Activate(site, injection);
}

void Deactivate(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.sites.erase(std::string(site)) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DeactivateAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed.fetch_sub(static_cast<int>(registry.sites.size()),
                    std::memory_order_relaxed);
  registry.sites.clear();
  registry.hit_counts.clear();
}

int64_t HitCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.hit_counts.find(std::string(site));
  return it == registry.hit_counts.end() ? 0 : it->second;
}

int ActivateFromEnv() {
  const char* spec = std::getenv("PROCMINE_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return 0;
  int armed = 0;
  for (const std::string& entry : Split(spec, ',')) {
    std::string_view e = Trim(entry);
    size_t eq = e.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view site = e.substr(0, eq);
    std::string_view rhs = e.substr(eq + 1);
    Injection injection;
    // Peel #count, then @skip, then :arg off the right-hand side.
    size_t hash = rhs.find('#');
    if (hash != std::string_view::npos) {
      injection.count = ParseInt64(rhs.substr(hash + 1)).ValueOr(0);
      rhs = rhs.substr(0, hash);
    }
    size_t at = rhs.find('@');
    if (at != std::string_view::npos) {
      injection.skip = ParseInt64(rhs.substr(at + 1)).ValueOr(0);
      rhs = rhs.substr(0, at);
    }
    size_t colon = rhs.find(':');
    if (colon != std::string_view::npos) {
      injection.arg = ParseInt64(rhs.substr(colon + 1)).ValueOr(0);
      rhs = rhs.substr(0, colon);
    }
    injection.action = ParseAction(rhs);
    if (injection.action == Action::kNone || site.empty()) continue;
    Activate(site, injection);
    ++armed;
  }
  return armed;
}

#if !defined(PROCMINE_FAILPOINTS_DISABLED)

FireResult Fire(std::string_view site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return FireResult{};
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  ++registry.hit_counts[std::string(site)];
  auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) return FireResult{};
  ArmedSite& armed = it->second;
  if (armed.hits++ < armed.injection.skip) return FireResult{};
  if (armed.injection.count > 0 && armed.fired >= armed.injection.count) {
    return FireResult{};
  }
  ++armed.fired;
  if (armed.injection.action == Action::kCrash) {
    // A crash must look like a real kill: no stack unwinding, no atexit
    // flushes, no destructors — exactly the state a torn-write bug would
    // leave behind.
    std::_Exit(134);
  }
  return FireResult{armed.injection.action, armed.injection.arg};
}

#endif  // !PROCMINE_FAILPOINTS_DISABLED

}  // namespace procmine::failpoint
