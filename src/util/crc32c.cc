#include "util/crc32c.h"

#include <array>

namespace procmine {

namespace {

constexpr uint32_t kPolynomial = 0x82f63b78;  // reflected CRC-32C

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xff];
  }
  return ~crc;
}

}  // namespace procmine
