// HashBytes: a fast 64-bit byte-string hash (FNV-1a with a wyhash-style
// final mix) for hot-path hash maps that would otherwise have to build a
// std::string key just to hash it — e.g. the general-DAG reduction memo,
// which keys on an activity-id sequence.
//
// Not cryptographic and not stable across releases; never persist these
// values to disk.

#ifndef PROCMINE_UTIL_HASH_H_
#define PROCMINE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace procmine {

inline uint64_t HashBytes(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  // 8 bytes per round keeps the loop fast on long keys; the multiply mixes
  // the whole word, unlike canonical byte-at-a-time FNV.
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * 0x100000001b3ull;
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    h = (h ^ *p++) * 0x100000001b3ull;
    --size;
  }
  // Final avalanche (xor-shift multiply, wyhash/splitmix style): FNV alone
  // mixes poorly into the low bits that unordered_map buckets use.
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return h;
}

}  // namespace procmine

#endif  // PROCMINE_UTIL_HASH_H_
