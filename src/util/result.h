// Result<T>: value-or-Status, in the Arrow idiom.
//
// A Result<T> holds either a T (when the producing operation succeeded) or an
// error Status. Use PROCMINE_ASSIGN_OR_RETURN to unwrap in functions that
// themselves return Status/Result.

#ifndef PROCMINE_UTIL_RESULT_H_
#define PROCMINE_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/status.h"

namespace procmine {

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit, so `return value;` works).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status (implicit, so
  /// `return Status::IOError(...)` works).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      Status::Internal("Result constructed from OK status without a value")
          .Abort("Result(Status)");
    }
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status: OK iff a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& ValueOrDie() const& {
    status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T& ValueOrDie() & {
    status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T&& ValueOrDie() && {
    status_.Abort("Result::ValueOrDie");
    return std::move(*value_);
  }

  /// Moves the value out. Must only be called when ok().
  T MoveValueOrDie() { return std::move(*this).ValueOrDie(); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// The value if present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Concatenation helpers so the macro below makes a unique temp name per line.
#define PROCMINE_CONCAT_IMPL(x, y) x##y
#define PROCMINE_CONCAT(x, y) PROCMINE_CONCAT_IMPL(x, y)
}  // namespace internal

/// Unwraps a Result into `lhs` or propagates its error status.
///   PROCMINE_ASSIGN_OR_RETURN(auto log, LogReader::ReadFile(path));
#define PROCMINE_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto PROCMINE_CONCAT(_result_, __LINE__) = (rexpr);                    \
  if (!PROCMINE_CONCAT(_result_, __LINE__).ok())                         \
    return PROCMINE_CONCAT(_result_, __LINE__).status();                 \
  lhs = std::move(PROCMINE_CONCAT(_result_, __LINE__)).ValueOrDie()

}  // namespace procmine

#endif  // PROCMINE_UTIL_RESULT_H_
