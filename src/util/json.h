// A minimal JSON reader for procmine's own artifacts.
//
// Every subsystem that persists state (run reports, model-registry
// snapshots, metrics dumps) emits deterministic JSON; this parser is the
// matching read side, so registry snapshots can be loaded, verified, and
// diffed without an external dependency. It accepts strict RFC 8259 JSON
// (objects, arrays, strings with escapes, numbers, true/false/null) and
// preserves object key order, which keeps round-trips canonical.
//
// It is a validating reader for trusted, self-produced files — not a
// hardened parser for hostile input (nesting depth is bounded, but there is
// no streaming mode and numbers are held as double + int64).

#ifndef PROCMINE_UTIL_JSON_H_
#define PROCMINE_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace procmine::json {

/// One parsed JSON value. Objects keep their key order.
class Value {
 public:
  enum class Kind : int8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  /// The number as an integer; exact when the literal had no '.'/'e' part
  /// and fit in int64, otherwise a truncation of the double.
  int64_t AsInt64() const { return integer_; }
  const std::string& AsString() const { return string_; }

  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Looks up `key` in an object; null when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Typed member accessors: the member must exist and have the right type.
  Result<int64_t> GetInt(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d, int64_t i);
  static Value String(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t integer_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document; trailing non-whitespace is an error. Errors
/// carry a byte offset.
Result<Value> Parse(std::string_view text);

}  // namespace procmine::json

#endif  // PROCMINE_UTIL_JSON_H_
