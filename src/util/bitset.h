// DynamicBitset: a fixed-capacity bitset sized at runtime.
//
// Used as the descendant-set representation in the transitive closure /
// reduction algorithms, where OR-ing whole sets is the hot operation
// (Algorithm 4 of the paper unions successor descendant sets per vertex).

#ifndef PROCMINE_UTIL_BITSET_H_
#define PROCMINE_UTIL_BITSET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace procmine {

/// Bitset whose size is fixed at construction. All operations are bounds
/// checked in debug builds.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i) {
    PROCMINE_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Reset(size_t i) {
    PROCMINE_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    PROCMINE_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets all bits to zero. std::fill compiles to one memset, not the
  /// element loop the seed used.
  void Clear() { std::fill(words_.begin(), words_.end(), uint64_t{0}); }

  /// True iff any bit is set. Early-exits on the first nonzero word — hot
  /// paths use this instead of `Count() != 0`, which always scans every
  /// word and popcounts it.
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// True iff no bit is set.
  bool None() const { return !Any(); }

  /// this |= other. Sizes must match.
  void OrWith(const DynamicBitset& other) {
    PROCMINE_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// this &= other. Sizes must match.
  void AndWith(const DynamicBitset& other) {
    PROCMINE_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// this &= ~other. Sizes must match.
  void AndNotWith(const DynamicBitset& other) {
    PROCMINE_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// True iff this and other share any set bit.
  bool Intersects(const DynamicBitset& other) const {
    PROCMINE_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_BITSET_H_
