#include "util/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define PROCMINE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

#include "util/failpoint.h"
#include "util/strings.h"

namespace procmine {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = other.data_;
    mapping_ = other.mapping_;
    mapping_size_ = other.mapping_size_;
    buffer_ = std::move(other.buffer_);
    if (mapping_ == nullptr) data_ = buffer_;  // re-point at our own buffer
    other.mapping_ = nullptr;
    other.mapping_size_ = 0;
    other.data_ = {};
  }
  return *this;
}

void MappedFile::Unmap() {
#if PROCMINE_HAVE_MMAP
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapping_size_);
  }
#endif
  mapping_ = nullptr;
  mapping_size_ = 0;
  data_ = {};
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if PROCMINE_HAVE_MMAP
  if (auto fp = PROCMINE_FAILPOINT("mapped_file.open"); fp) {
    return fp.ToStatus("mapped_file.open");
  }
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::IOError("cannot open: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    // Pipes, sockets, and other non-regular files have no meaningful size;
    // stream them through the buffered path instead.
    ::close(fd);
    return OpenBuffered(path);
  }
  MappedFile file;
  if (st.st_size == 0) {  // mmap of length 0 is an error; empty view is fine
    ::close(fd);
    return file;
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping == MAP_FAILED) return OpenBuffered(path);
#if defined(POSIX_MADV_SEQUENTIAL)
  ::posix_madvise(mapping, size, POSIX_MADV_SEQUENTIAL);
#endif
  file.mapping_ = mapping;
  file.mapping_size_ = size;
  file.data_ = std::string_view(static_cast<const char*>(mapping), size);
  return file;
#else
  return OpenBuffered(path);
#endif
}

#if PROCMINE_HAVE_MMAP

Result<MappedFile> MappedFile::OpenBuffered(const std::string& path) {
  if (auto fp = PROCMINE_FAILPOINT("mapped_file.open"); fp) {
    return fp.ToStatus("mapped_file.open");
  }
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::IOError("cannot open: " + path);

  MappedFile file;
  try {
    if (auto fp = PROCMINE_FAILPOINT("mapped_file.alloc"); fp) {
      ::close(fd);
      return fp.ToStatus("mapped_file.alloc");
    }
    char chunk[1 << 16];
    for (;;) {
      size_t want = sizeof(chunk);
      bool forced_error = false;
      if (auto fp = PROCMINE_FAILPOINT("mapped_file.read"); fp) {
        switch (fp.action) {
          case failpoint::Action::kShortIO:
            // A short read() on a regular file is legal; the loop must keep
            // reading until EOF instead of treating it as end-of-file.
            want = fp.arg > 0 ? static_cast<size_t>(fp.arg) : 1;
            break;
          case failpoint::Action::kEintr:
            errno = EINTR;
            forced_error = true;
            break;
          default:
            ::close(fd);
            return fp.ToStatus("mapped_file.read");
        }
      }
      ssize_t n = forced_error ? -1 : ::read(fd, chunk, want);
      if (n < 0) {
        if (errno == EINTR) continue;  // interrupted, nothing consumed: retry
        int err = errno;
        ::close(fd);
        return Status::IOError(
            StrFormat("read %s: %s", path.c_str(), std::strerror(err)));
      }
      if (n == 0) break;  // EOF
      file.buffer_.append(chunk, static_cast<size_t>(n));
    }
  } catch (const std::bad_alloc&) {
    ::close(fd);
    return Status::Internal("out of memory reading: " + path);
  }
  ::close(fd);
  file.data_ = file.buffer_;
  return file;
}

#else  // !PROCMINE_HAVE_MMAP

Result<MappedFile> MappedFile::OpenBuffered(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  MappedFile file;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    file.buffer_.append(chunk, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read failed: " + path);
  file.data_ = file.buffer_;
  return file;
}

#endif  // PROCMINE_HAVE_MMAP

}  // namespace procmine
