#include "util/budget.h"

#include <unistd.h>

#include <cstdio>

namespace procmine {

std::string_view BudgetResourceName(BudgetResource resource) {
  switch (resource) {
    case BudgetResource::kNone:
      return "";
    case BudgetResource::kDeadline:
      return "deadline";
    case BudgetResource::kMemory:
      return "memory";
    case BudgetResource::kExecutions:
      return "executions";
  }
  return "";
}

int64_t CurrentRssBytes() {
  // /proc/self/statm field 2 is resident pages; cheaper to parse than
  // /proc/self/status and always present on Linux.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0;
  long long rss_pages = 0;
  int matched = std::fscanf(f, "%lld %lld", &size_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<int64_t>(rss_pages) * page;
}

BudgetResource RunBudget::Check() {
  BudgetResource prior = Exhausted();
  if (prior != BudgetResource::kNone) return prior;
  BudgetResource hit = BudgetResource::kNone;
  if (limits_.deadline_ms >= 0 &&
      watch_.ElapsedMillis() >= static_cast<double>(limits_.deadline_ms)) {
    hit = BudgetResource::kDeadline;
  } else if (limits_.max_memory_bytes >= 0 &&
             CurrentRssBytes() > limits_.max_memory_bytes) {
    hit = BudgetResource::kMemory;
  }
  if (hit != BudgetResource::kNone) {
    // First tripper wins; if another thread raced us, report its resource.
    int8_t expected = 0;
    if (!exhausted_.compare_exchange_strong(expected,
                                            static_cast<int8_t>(hit),
                                            std::memory_order_relaxed)) {
      return static_cast<BudgetResource>(expected);
    }
  }
  return hit;
}

bool BudgetCut(RunBudget* budget, DegradationInfo* degradation,
               std::string_view phase, std::string_view dropped) {
  if (budget == nullptr) return false;
  BudgetResource hit = budget->Check();
  if (hit == BudgetResource::kNone) return false;
  if (degradation != nullptr && !degradation->degraded) {
    degradation->degraded = true;
    degradation->resource = hit;
    degradation->cut_phase = std::string(phase);
    degradation->dropped = std::string(dropped);
  }
  return true;
}

}  // namespace procmine
