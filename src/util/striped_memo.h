// StripedMemo: a striped concurrent memo table shared across worker threads.
//
// The general-DAG miner memoizes per-execution transitive reductions keyed
// by the execution's activity set. The seed kept one memo per shard and
// merged nothing: a duplicate execution landing in two shards was a miss in
// both. This table is shared by all workers — N independently locked
// stripes, selected by key hash, so threads working on different keys
// almost never touch the same stripe, and lookups in a stripe proceed
// concurrently under a shared lock.
//
// Correctness contract: the cached Value must be a PURE function of the Key
// (first writer wins; a racing second computation is discarded), and values
// are never erased, so the returned pointers stay valid for the table's
// lifetime (std::unordered_map never moves nodes on rehash).
//
// With that contract, sharing the memo cannot perturb results — every
// thread either computes the value or reads an identical cached one — so
// the byte-identical-for-any-thread-count guarantee is preserved. Hit/miss
// *counts* do become schedule-dependent at >1 thread, which is why
// obs/report.cc excludes them from the embedded metrics snapshot.

#ifndef PROCMINE_UTIL_STRIPED_MEMO_H_
#define PROCMINE_UTIL_STRIPED_MEMO_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

namespace procmine {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMemo {
 public:
  /// `num_stripes` is rounded up to a power of two. 16 stripes keep the
  /// false-sharing odds negligible for the pool sizes this repo runs.
  explicit StripedMemo(size_t num_stripes = 16) {
    size_t n = 1;
    while (n < num_stripes) n <<= 1;
    stripes_ = std::make_unique<Stripe[]>(n);
    mask_ = n - 1;
  }

  StripedMemo(const StripedMemo&) = delete;
  StripedMemo& operator=(const StripedMemo&) = delete;

  /// Returns the cached value for `key`, or nullptr. The pointer remains
  /// valid until the memo is destroyed.
  const Value* Find(const Key& key) const {
    const Stripe& s = StripeFor(key);
    std::shared_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(key);
    return it == s.map.end() ? nullptr : &it->second;
  }

  /// Inserts (key, value) if absent. Returns the stored value — the caller's
  /// on a win, the first writer's if another thread got there first.
  const Value* Insert(Key key, Value value) {
    Stripe& s = StripeFor(key);
    std::unique_lock<std::shared_mutex> lock(s.mu);
    auto [it, inserted] = s.map.try_emplace(std::move(key), std::move(value));
    return &it->second;
  }

  /// Total entries across stripes (approximate under concurrent inserts).
  size_t size() const {
    size_t total = 0;
    for (size_t i = 0; i <= mask_; ++i) {
      std::shared_lock<std::shared_mutex> lock(stripes_[i].mu);
      total += stripes_[i].map.size();
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {  // one cache line per lock: no false sharing
    mutable std::shared_mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  Stripe& StripeFor(const Key& key) const {
    return stripes_[Hash{}(key)&mask_];
  }

  std::unique_ptr<Stripe[]> stripes_;
  size_t mask_ = 0;
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_STRIPED_MEMO_H_
