// Small string utilities (split/join/trim/parse/format).
//
// gcc 12's libstdc++ does not ship std::format, so StrFormat wraps snprintf.

#ifndef PROCMINE_UTIL_STRINGS_H_
#define PROCMINE_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace procmine {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Zero-copy SplitWhitespace: appends views into `text` onto `*out` after
/// clearing it. The views alias `text`; reusing one `out` vector across
/// calls keeps the hot readers allocation-free.
void SplitWhitespaceViews(std::string_view text,
                          std::vector<std::string_view>* out);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parses a base-10 signed 64-bit integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a floating point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Appends `text` to `out` with JSON string escaping (quotes, backslash,
/// control characters); the surrounding quotes are the caller's.
void AppendJsonEscaped(std::string* out, std::string_view text);

}  // namespace procmine

#endif  // PROCMINE_UTIL_STRINGS_H_
