#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/strings.h"

namespace procmine::json {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    PROCMINE_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        PROCMINE_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      PROCMINE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      PROCMINE_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::Array(std::move(items));
    while (true) {
      SkipWhitespace();
      PROCMINE_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (our writers only escape
          // control characters, so surrogate pairs never occur; reject them
          // rather than emit ill-formed UTF-8).
          if (code >= 0xd800 && code <= 0xdfff) {
            return Error("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string_view literal = text_.substr(start, pos_ - start);
    if (literal.empty() || literal == "-") return Error("bad number");
    double d = 0.0;
    auto [dp, dec] =
        std::from_chars(literal.data(), literal.data() + literal.size(), d);
    if (dec != std::errc() || dp != literal.data() + literal.size()) {
      return Error("bad number");
    }
    int64_t i = 0;
    if (integral) {
      auto [ip, iec] =
          std::from_chars(literal.data(), literal.data() + literal.size(), i);
      if (iec != std::errc() || ip != literal.data() + literal.size()) {
        i = static_cast<int64_t>(d);  // out of int64 range; keep truncation
      }
    } else {
      i = static_cast<int64_t>(d);
    }
    return Value::Number(d, i);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d, int64_t i) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  v.integer_ = i;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<int64_t> Value::GetInt(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("json: missing integer member '" +
                                   std::string(key) + "'");
  }
  return v->AsInt64();
}

Result<double> Value::GetDouble(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("json: missing number member '" +
                                   std::string(key) + "'");
  }
  return v->AsDouble();
}

Result<std::string> Value::GetString(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("json: missing string member '" +
                                   std::string(key) + "'");
  }
  return v->AsString();
}

Result<bool> Value::GetBool(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_bool()) {
    return Status::InvalidArgument("json: missing bool member '" +
                                   std::string(key) + "'");
  }
  return v->AsBool();
}

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace procmine::json
