#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace procmine {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown code";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

void Status::Abort() const { Abort(std::string_view()); }

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "procmine: fatal status: %s\n", ToString().c_str());
  } else {
    std::fprintf(stderr, "procmine: fatal status in '%.*s': %s\n",
                 static_cast<int>(context.size()), context.data(),
                 ToString().c_str());
  }
  std::abort();
}

}  // namespace procmine
