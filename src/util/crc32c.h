// CRC-32C (Castagnoli) checksums, used to detect corruption in the binary
// log format. Software table-driven implementation.

#ifndef PROCMINE_UTIL_CRC32C_H_
#define PROCMINE_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace procmine {

/// Extends `crc` with `data`; start from 0 for a fresh checksum.
uint32_t Crc32c(uint32_t crc, std::string_view data);

/// Checksum of `data` from scratch.
inline uint32_t Crc32c(std::string_view data) { return Crc32c(0, data); }

}  // namespace procmine

#endif  // PROCMINE_UTIL_CRC32C_H_
