// Wall-clock stopwatch used by the benchmark harnesses and the span
// recorder. Everything here reads the same std::chrono::steady_clock, so
// bench timings, span timestamps, and log elapsed times are comparable.

#ifndef PROCMINE_UTIL_TIMER_H_
#define PROCMINE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace procmine {

/// Measures elapsed wall-clock time with a monotonic clock.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Nanoseconds since the process-wide epoch (the first call to this
  /// function). Spans, log lines, and benches all timestamp against this one
  /// monotonic origin, so their times line up in a trace.
  static int64_t NowNanosSinceProcessStart() {
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_TIMER_H_
