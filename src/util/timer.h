// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef PROCMINE_UTIL_TIMER_H_
#define PROCMINE_UTIL_TIMER_H_

#include <chrono>

namespace procmine {

/// Measures elapsed wall-clock time with a monotonic clock.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_TIMER_H_
