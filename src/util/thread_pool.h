// ThreadPool: a small fixed-size worker pool for the sharded mining paths.
//
// The mining algorithms are all "map over executions, reduce with an
// order-independent merge" (bitset OR, counter sum, set union), so the only
// primitive needed is a chunked ParallelFor over an index range. The pool is
// deliberately minimal:
//
//  * A pool of size 1 spawns no threads at all and runs everything inline —
//    that path is byte-for-byte the sequential reference implementation.
//  * ParallelFor splits [0, total) into num_threads() contiguous shards and
//    hands each shard to fn(shard, begin, end). The calling thread executes
//    the first shard itself.
//  * ParallelForChunked is the work-stealing mode: the caller supplies a
//    chunk count (usually several per thread, see PlanChunks) and idle
//    workers claim the next chunk off a shared atomic counter, so an
//    unlucky expensive chunk no longer strands the rest of the pool behind
//    one fixed shard. Determinism is preserved by construction: the chunk
//    boundaries are a pure function of (total, num_chunks) and callers
//    keep one result slot per chunk, merged in chunk-index order — which
//    worker ran a chunk never reaches the output.
//  * Exceptions thrown by any shard are captured and the first one (by shard
//    index) is rethrown on the calling thread after all shards finished, so
//    a throwing shard can never leak a detached worker.

#ifndef PROCMINE_UTIL_THREAD_POOL_H_
#define PROCMINE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace procmine {

/// Fixed worker pool with a chunked, exception-safe ParallelFor.
class ThreadPool {
 public:
  /// Shard body: fn(shard_index, begin, end) processes items [begin, end).
  using ShardFn = std::function<void(size_t shard, size_t begin, size_t end)>;

  /// Creates a pool of `num_threads` workers (clamped to >= 1). A pool of
  /// size 1 spawns no threads; `num_threads <= 0` means hardware concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency(), never less than 1.
  static int HardwareConcurrency();

  /// Runs fn over [0, total) split into num_threads() contiguous shards.
  /// Blocks until every shard finished; rethrows the lowest-shard-index
  /// exception if any shard threw. Empty shards are not invoked.
  void ParallelFor(size_t total, const ShardFn& fn);

  /// Work-stealing variant: runs fn(chunk) exactly once for every chunk in
  /// [0, num_chunks), chunks claimed dynamically by idle workers (and the
  /// calling thread) off an atomic counter. Blocks until all chunks
  /// finished; rethrows the lowest-chunk-index exception if any threw.
  /// Which worker runs a chunk is unspecified — callers must keep
  /// per-chunk result slots and merge them in chunk order.
  using ChunkFn = std::function<void(size_t chunk)>;
  void ParallelForChunked(size_t num_chunks, const ChunkFn& fn);

  /// Below this many items a parallel pass costs more in pool traffic than
  /// it saves; miners skip pool construction entirely for such logs and run
  /// the inline sequential path (which is byte-identical anyway).
  static constexpr size_t kSmallInputInlineThreshold = 32;

 private:
  struct Task {
    std::function<void()> body;
  };

  void WorkerLoop();
  void Submit(std::function<void()> body);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::vector<Task> queue_;
  bool shutting_down_ = false;
};

/// Maps a user-facing thread-count knob to an effective pool size:
/// `requested <= 0` selects hardware concurrency, anything else is taken
/// as-is (values above the hardware count are allowed; useful for tests).
int ResolveThreadCount(int requested);

/// Number of chunks for a work-stealing pass over `total` items.
/// `chunk_size` is the per-chunk item count knob: 0 selects the default of
/// 4 chunks per thread (enough slack for stealing to rebalance, few enough
/// that per-chunk accumulators stay cheap to merge); any other value is
/// honored as-is. The result is always in [1, total] (1 when total == 0) —
/// and, crucially, independent of which threads exist, so the chunk
/// partition that reaches the merge step is deterministic.
size_t PlanChunks(size_t total, int threads, size_t chunk_size);

}  // namespace procmine

#endif  // PROCMINE_UTIL_THREAD_POOL_H_
