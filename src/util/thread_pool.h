// ThreadPool: a small fixed-size worker pool for the sharded mining paths.
//
// The mining algorithms are all "map over executions, reduce with an
// order-independent merge" (bitset OR, counter sum, set union), so the only
// primitive needed is a chunked ParallelFor over an index range. The pool is
// deliberately minimal:
//
//  * A pool of size 1 spawns no threads at all and runs everything inline —
//    that path is byte-for-byte the sequential reference implementation.
//  * ParallelFor splits [0, total) into num_threads() contiguous shards and
//    hands each shard to fn(shard, begin, end). The calling thread executes
//    the first shard itself.
//  * Exceptions thrown by any shard are captured and the first one (by shard
//    index) is rethrown on the calling thread after all shards finished, so
//    a throwing shard can never leak a detached worker.

#ifndef PROCMINE_UTIL_THREAD_POOL_H_
#define PROCMINE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace procmine {

/// Fixed worker pool with a chunked, exception-safe ParallelFor.
class ThreadPool {
 public:
  /// Shard body: fn(shard_index, begin, end) processes items [begin, end).
  using ShardFn = std::function<void(size_t shard, size_t begin, size_t end)>;

  /// Creates a pool of `num_threads` workers (clamped to >= 1). A pool of
  /// size 1 spawns no threads; `num_threads <= 0` means hardware concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency(), never less than 1.
  static int HardwareConcurrency();

  /// Runs fn over [0, total) split into num_threads() contiguous shards.
  /// Blocks until every shard finished; rethrows the lowest-shard-index
  /// exception if any shard threw. Empty shards are not invoked.
  void ParallelFor(size_t total, const ShardFn& fn);

 private:
  struct Task {
    std::function<void()> body;
  };

  void WorkerLoop();
  void Submit(std::function<void()> body);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::vector<Task> queue_;
  bool shutting_down_ = false;
};

/// Maps a user-facing thread-count knob to an effective pool size:
/// `requested <= 0` selects hardware concurrency, anything else is taken
/// as-is (values above the hardware count are allowed; useful for tests).
int ResolveThreadCount(int requested);

}  // namespace procmine

#endif  // PROCMINE_UTIL_THREAD_POOL_H_
