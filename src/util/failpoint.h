// Failpoints: named fault-injection sites for testing error paths.
//
// Production code marks its fallible IO/allocation sites with
// PROCMINE_FAILPOINT("site.name") and interprets the returned action:
//
//   if (auto fp = PROCMINE_FAILPOINT("atomic_write.write"); fp) {
//     if (fp.action == failpoint::Action::kShortIO) { /* truncate the op */ }
//     else return fp.ToStatus("atomic_write.write");
//   }
//
// Sites are inert by default: the disabled fast path is one relaxed atomic
// load of a global activation counter. Tests activate sites through the
// programmatic API (failpoint::Activate) or the environment
// (PROCMINE_FAILPOINTS="site=action[:arg][@skip][#count],..."), which the
// CLI parses at startup so child-process crash tests can inject faults into
// a real binary.
//
// Building with -DPROCMINE_FAILPOINTS=OFF compiles every site out entirely
// (the macro folds to a constexpr no-op), which is the recommended
// configuration for release binaries that must not carry the harness.
//
// The site catalog lives in docs/robustness.md.

#ifndef PROCMINE_UTIL_FAILPOINT_H_
#define PROCMINE_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace procmine::failpoint {

/// What an activated site should do.
enum class Action : int8_t {
  kNone = 0,   ///< inactive — proceed normally
  kError = 1,  ///< fail with an injected IO error
  kShortIO = 2,  ///< perform the IO, but only `arg` bytes per operation
  kAllocFail = 3,  ///< fail with an injected allocation failure
  kEintr = 4,  ///< behave as if the syscall returned EINTR (site retries)
  kCrash = 5,  ///< terminate the process immediately (handled inside Fire)
};

/// Outcome of hitting a site. Contextually false when the site is inactive.
struct FireResult {
  Action action = Action::kNone;
  int64_t arg = 0;  ///< action payload (e.g. bytes per op for kShortIO)

  explicit operator bool() const { return action != Action::kNone; }

  /// The Status an erroring action maps to: kError -> IOError,
  /// kAllocFail -> Internal, both naming the site. OK for other actions.
  Status ToStatus(std::string_view site) const;
};

/// Activation knobs: skip the first `skip` hits, then fire at most `count`
/// times (0 = unlimited). `arg` is forwarded to the site.
struct Injection {
  Action action = Action::kNone;
  int64_t arg = 0;
  int64_t skip = 0;
  int64_t count = 0;
};

/// Arms `site` with `injection`. Replaces any existing activation.
void Activate(std::string_view site, const Injection& injection);
void Activate(std::string_view site, Action action, int64_t arg = 0);

/// Disarms one site / every site.
void Deactivate(std::string_view site);
void DeactivateAll();

/// Number of times `site` has been evaluated while any failpoint was armed
/// (armed or not itself). For test assertions that a site was reached.
int64_t HitCount(std::string_view site);

/// Parses PROCMINE_FAILPOINTS from the environment and arms the named
/// sites. Syntax: comma-separated `site=action[:arg][@skip][#count]` with
/// action in {error, short, alloc, eintr, crash}. Returns the number of
/// sites armed; malformed entries are ignored.
int ActivateFromEnv();

#if defined(PROCMINE_FAILPOINTS_DISABLED)

inline constexpr FireResult Fire(std::string_view) { return FireResult{}; }

#else

/// Evaluates `site`: kNone unless armed. kCrash terminates the process here
/// (via _Exit) so call sites never need a crash branch.
FireResult Fire(std::string_view site);

#endif

}  // namespace procmine::failpoint

/// The site marker. Evaluates to a contextually-bool FireResult.
#define PROCMINE_FAILPOINT(site) ::procmine::failpoint::Fire(site)

#endif  // PROCMINE_UTIL_FAILPOINT_H_
