#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/failpoint.h"
#include "util/strings.h"

namespace procmine {

namespace {

// Writes all of `data`, retrying on EINTR and continuing after short
// writes. Honors the atomic_write.write failpoint (kShortIO truncates the
// attempted chunk, kEintr simulates an interrupted syscall, kError/kAlloc
// abort).
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    size_t chunk = data.size() - written;
    if (auto fp = PROCMINE_FAILPOINT("atomic_write.write"); fp) {
      switch (fp.action) {
        case failpoint::Action::kShortIO:
          chunk = std::min<size_t>(
              chunk, fp.arg > 0 ? static_cast<size_t>(fp.arg) : 1);
          break;
        case failpoint::Action::kEintr:
          errno = EINTR;
          continue;  // a real EINTR write() wrote nothing; retry
        default:
          return fp.ToStatus("atomic_write.write");
      }
    }
    ssize_t n = ::write(fd, data.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("write %s: %s", path.c_str(),
                                       std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";

  int fd = -1;
  if (auto fp = PROCMINE_FAILPOINT("atomic_write.open"); fp) {
    return fp.ToStatus("atomic_write.open");
  }
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("open %s: %s", tmp.c_str(), std::strerror(errno)));
  }

  Status status = WriteAll(fd, content, tmp);

  if (status.ok()) {
    if (auto fp = PROCMINE_FAILPOINT("atomic_write.fsync"); fp) {
      status = fp.ToStatus("atomic_write.fsync");
    } else if (::fsync(fd) != 0) {
      status = Status::IOError(
          StrFormat("fsync %s: %s", tmp.c_str(), std::strerror(errno)));
    }
  }

  int close_rc;
  do {
    close_rc = ::close(fd);
  } while (close_rc != 0 && errno == EINTR);
  if (status.ok() && close_rc != 0) {
    status = Status::IOError(
        StrFormat("close %s: %s", tmp.c_str(), std::strerror(errno)));
  }

  if (status.ok()) {
    if (auto fp = PROCMINE_FAILPOINT("atomic_write.rename"); fp) {
      status = fp.ToStatus("atomic_write.rename");
    } else if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      status = Status::IOError(StrFormat("rename %s -> %s: %s", tmp.c_str(),
                                         path.c_str(), std::strerror(errno)));
    }
  }

  if (!status.ok()) ::unlink(tmp.c_str());
  return status;
}

}  // namespace procmine
