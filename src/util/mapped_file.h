// MappedFile: read-only whole-file access as a std::string_view.
//
// The ingestion hot path wants the raw bytes of a log without copying them
// through an istream: Open() mmaps the file (MAP_PRIVATE, advised for
// sequential access) so parsers can tokenize string_views straight out of
// the page cache. When mmap is unavailable (non-POSIX build, special files
// like pipes or /proc entries where fstat lies, or plain mmap failure) the
// file is read into an owned buffer instead — same interface, one copy.
//
// The view returned by data() is valid for the lifetime of the MappedFile
// object; anything that borrows from it (interned names, tokens) must copy
// before the object is destroyed.

#ifndef PROCMINE_UTIL_MAPPED_FILE_H_
#define PROCMINE_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/result.h"

namespace procmine {

/// A read-only file mapping (or buffered fallback copy).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Unmap(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens `path` read-only, preferring mmap. IOError if the file cannot be
  /// opened or read.
  static Result<MappedFile> Open(const std::string& path);

  /// Opens `path` via plain buffered reads, never mmap — the fallback path,
  /// exposed so tests can verify both paths yield identical bytes.
  static Result<MappedFile> OpenBuffered(const std::string& path);

  /// The file contents. Valid until this object is destroyed or moved from.
  std::string_view data() const { return data_; }
  size_t size() const { return data_.size(); }

  /// True when the contents are an actual mmap (false: owned buffer).
  bool is_mapped() const { return mapping_ != nullptr; }

 private:
  void Unmap();

  std::string_view data_;
  void* mapping_ = nullptr;  // munmap target when non-null
  size_t mapping_size_ = 0;
  std::string buffer_;  // fallback storage when mapping_ == nullptr
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_MAPPED_FILE_H_
