// Lightweight leveled logging and CHECK macros.
//
// PROCMINE_CHECK(cond) aborts (with file:line) when `cond` is false, in every
// build type; PROCMINE_DCHECK compiles out in NDEBUG builds. PROCMINE_LOG
// writes a timestamped line to stderr when the message level is at or above
// the global threshold.

#ifndef PROCMINE_UTIL_LOGGING_H_
#define PROCMINE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace procmine {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace procmine

#define PROCMINE_LOG(level)                                              \
  ::procmine::internal::LogMessage(::procmine::LogLevel::k##level,       \
                                   __FILE__, __LINE__)                   \
      .stream()

#define PROCMINE_CHECK(condition)                                        \
  if (!(condition))                                                      \
  ::procmine::internal::FatalMessage(__FILE__, __LINE__, #condition)     \
      .stream()

#define PROCMINE_CHECK_EQ(a, b) PROCMINE_CHECK((a) == (b))
#define PROCMINE_CHECK_NE(a, b) PROCMINE_CHECK((a) != (b))
#define PROCMINE_CHECK_LT(a, b) PROCMINE_CHECK((a) < (b))
#define PROCMINE_CHECK_LE(a, b) PROCMINE_CHECK((a) <= (b))
#define PROCMINE_CHECK_GT(a, b) PROCMINE_CHECK((a) > (b))
#define PROCMINE_CHECK_GE(a, b) PROCMINE_CHECK((a) >= (b))

#ifdef NDEBUG
#define PROCMINE_DCHECK(condition) \
  if (false && (condition))        \
  ::procmine::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()
#else
#define PROCMINE_DCHECK(condition) PROCMINE_CHECK(condition)
#endif

#endif  // PROCMINE_UTIL_LOGGING_H_
