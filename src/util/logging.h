// Lightweight leveled logging and CHECK macros.
//
// PROCMINE_CHECK(cond) aborts (with file:line) when `cond` is false, in every
// build type; PROCMINE_DCHECK compiles out in NDEBUG builds. PROCMINE_LOG
// writes a line to stderr when the message level is at or above the global
// threshold. Every line carries the worker's thread id and the monotonic
// elapsed time since process start, so interleaved output from the sharded
// parallel mining passes is attributable to a worker and orderable:
//
//   [INFO t2 +0.134s mine/relations.cc:71] ...      (text format)
//   {"elapsed_ms":134.2,"level":"INFO","tid":2,...} (JSON-lines format)

#ifndef PROCMINE_UTIL_LOGGING_H_
#define PROCMINE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace procmine {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error". Returns false
/// on anything else, leaving `level` untouched.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// Output shape of PROCMINE_LOG lines. kText is the bracketed human format;
/// kJsonLines emits one JSON object per line for machine consumption.
enum class LogFormat : int { kText = 0, kJsonLines = 1 };

void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// A small dense id for the calling thread (0 for the first thread that ever
/// logs or records a span, 1 for the next, ...). Stable for the thread's
/// lifetime; used by log lines and span events so the two are correlatable.
int CurrentThreadId();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace procmine

#define PROCMINE_LOG(level)                                              \
  ::procmine::internal::LogMessage(::procmine::LogLevel::k##level,       \
                                   __FILE__, __LINE__)                   \
      .stream()

#define PROCMINE_CHECK(condition)                                        \
  if (!(condition))                                                      \
  ::procmine::internal::FatalMessage(__FILE__, __LINE__, #condition)     \
      .stream()

#define PROCMINE_CHECK_EQ(a, b) PROCMINE_CHECK((a) == (b))
#define PROCMINE_CHECK_NE(a, b) PROCMINE_CHECK((a) != (b))
#define PROCMINE_CHECK_LT(a, b) PROCMINE_CHECK((a) < (b))
#define PROCMINE_CHECK_LE(a, b) PROCMINE_CHECK((a) <= (b))
#define PROCMINE_CHECK_GT(a, b) PROCMINE_CHECK((a) > (b))
#define PROCMINE_CHECK_GE(a, b) PROCMINE_CHECK((a) >= (b))

#ifdef NDEBUG
#define PROCMINE_DCHECK(condition) \
  if (false && (condition))        \
  ::procmine::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()
#else
#define PROCMINE_DCHECK(condition) PROCMINE_CHECK(condition)
#endif

#endif  // PROCMINE_UTIL_LOGGING_H_
