// Run budgets: bounded time / memory / input size with graceful degradation.
//
// A RunBudget carries the limits the user asked for (--deadline-ms,
// --max-memory-mb, --max-executions) and answers "are we over?" at phase
// boundaries. Exhaustion is sticky: once any resource trips, every later
// Check() reports the same resource, so a long pipeline degrades exactly
// once and all downstream phases see a consistent answer.
//
// Miners do not abort on exhaustion — they stop starting new phases, return
// the best model built so far, and record what was cut in a DegradationInfo
// that the RunReport serializes (degraded flag + cut phase + what was
// dropped). The CLI maps a degraded-but-successful run to its own exit code
// so scripts can tell "complete" from "partial".

#ifndef PROCMINE_UTIL_BUDGET_H_
#define PROCMINE_UTIL_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/timer.h"

namespace procmine {

/// Which budget resource ran out.
enum class BudgetResource : int8_t {
  kNone = 0,
  kDeadline = 1,
  kMemory = 2,
  kExecutions = 3,
};

/// "deadline" / "memory" / "executions" (empty for kNone).
std::string_view BudgetResourceName(BudgetResource resource);

/// Resident set size of this process in bytes (via /proc/self/statm);
/// 0 when unavailable.
int64_t CurrentRssBytes();

/// Tracks limits for one run. Thread-safe: Check() may race from shard
/// workers; the sticky exhausted state makes every caller agree.
class RunBudget {
 public:
  struct Limits {
    int64_t deadline_ms = -1;      ///< wall clock from Start(); <0 = unlimited
    int64_t max_memory_bytes = -1;  ///< rss ceiling; <0 = unlimited
    int64_t max_executions = -1;    ///< input size cap; <0 = unlimited
  };

  RunBudget() = default;
  explicit RunBudget(const Limits& limits) : limits_(limits) {}

  const Limits& limits() const { return limits_; }

  /// True when every limit is unlimited (Check() is then trivially kNone).
  bool Unlimited() const {
    return limits_.deadline_ms < 0 && limits_.max_memory_bytes < 0 &&
           limits_.max_executions < 0;
  }

  /// Starts (or restarts) the deadline clock. Call once, before ingestion.
  void Start() { watch_.Reset(); }

  /// Milliseconds since Start() (wall clock). Read-only: used by status
  /// surfaces to report deadline headroom without re-probing Check().
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }

  /// Returns the first resource that is exhausted, or kNone. Sticky: after
  /// a non-kNone return, every later call returns that same resource.
  BudgetResource Check();

  /// True when `count` executions exceed max_executions.
  bool OverExecutionLimit(int64_t count) const {
    return limits_.max_executions >= 0 && count > limits_.max_executions;
  }

  /// The already-recorded exhausted resource without re-probing the clock
  /// or rss (kNone if Check() never tripped).
  BudgetResource Exhausted() const {
    return static_cast<BudgetResource>(
        exhausted_.load(std::memory_order_relaxed));
  }

  /// Non-sticky memory probe for spill decisions: true when current RSS is
  /// above `fraction` of max_memory_bytes. Unlike Check(), crossing the
  /// high-water mark does NOT mark the budget exhausted — sealing a segment
  /// frees memory and the run continues, so the probe must keep answering
  /// honestly after each spill. Always false with no memory limit.
  bool OverMemoryHighWater(double fraction = 0.8) const {
    if (limits_.max_memory_bytes < 0) return false;
    return static_cast<double>(CurrentRssBytes()) >
           fraction * static_cast<double>(limits_.max_memory_bytes);
  }

 private:
  Limits limits_;
  StopWatch watch_;
  std::atomic<int8_t> exhausted_{0};
};

/// Amortizes an expensive probe (an rss read is a /proc round trip) over a
/// hot loop: Due() returns true once every `period` ticks. Single-threaded;
/// each shard worker keeps its own.
class ProbeTicker {
 public:
  explicit ProbeTicker(uint32_t period) : period_(period == 0 ? 1 : period) {}
  bool Due() { return ++tick_ % period_ == 0; }

 private:
  uint32_t period_;
  uint32_t tick_ = 0;
};

/// What a budget cut did to the run, for the RunReport.
struct DegradationInfo {
  bool degraded = false;
  BudgetResource resource = BudgetResource::kNone;
  std::string cut_phase;  ///< phase that was cut short or skipped
  std::string dropped;    ///< human description of what the model is missing
};

/// Records the first budget cut: if `budget` is exhausted and `*degradation`
/// is still clean, fills it in and returns true. Returns whether the budget
/// is exhausted (so callers write `if (BudgetCut(...)) break;`). Safe with
/// null budget/degradation (then always false).
bool BudgetCut(RunBudget* budget, DegradationInfo* degradation,
               std::string_view phase, std::string_view dropped);

}  // namespace procmine

#endif  // PROCMINE_UTIL_BUDGET_H_
