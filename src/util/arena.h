// Arena: a bump allocator for per-execution scratch.
//
// The general-DAG reduce path runs a transitive reduction per execution;
// the seed built a DirectedGraph (n adjacency vectors), a vector of
// DynamicBitsets, and assorted temporaries for every one of them — dozens
// of small heap allocations per execution, all dead microseconds later.
// An Arena turns that churn into pointer bumps: allocate freely while
// processing one execution, then Reset() rewinds the arena to empty while
// keeping every block for the next execution. Steady state performs zero
// heap traffic.
//
// Allocations are trivially destructible by contract (AllocateArray
// enforces it statically); Reset() never runs destructors.

#ifndef PROCMINE_UTIL_ARENA_H_
#define PROCMINE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace procmine {

class Arena {
 public:
  /// Every block is at least `min_block_bytes` (rounded up for oversized
  /// requests) and 64-byte aligned, so cache-line-aligned requests never
  /// waste more than the in-block padding.
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;  // 64 KiB
  static constexpr size_t kBlockAlignment = 64;

  explicit Arena(size_t min_block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power of
  /// two, at most kBlockAlignment). Never fails except by std::bad_alloc.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array of `n` elements, default-uninitialized. T must be trivially
  /// destructible: Reset() will not run destructors.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    static_assert(alignof(T) <= kBlockAlignment);
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, KEEPING all blocks for reuse. O(1): no frees, no
  /// destructor runs. Everything previously allocated is invalidated.
  void Reset();

  /// Bytes handed out since construction / the last Reset().
  size_t bytes_in_use() const { return bytes_in_use_; }
  /// Total block capacity held (survives Reset()).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    uint64_t* data;  // 64-byte aligned
    size_t capacity;
  };

  /// Makes blocks_[current_] able to hold `bytes`, appending a new block
  /// (doubling sizes) if the existing ones are exhausted.
  void NextBlock(size_t bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // index of the block being bumped
  size_t offset_ = 0;   // bytes used in blocks_[current_]
  size_t min_block_bytes_;
  size_t bytes_in_use_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_ARENA_H_
