// Deterministic pseudo-random number generation.
//
// All randomness in procmine flows through Rng instances constructed from
// explicit 64-bit seeds, so every experiment is reproducible bit-for-bit
// across runs and platforms. The generator is xoshiro256**, seeded via
// SplitMix64 (the recommended seeding procedure of its authors).

#ifndef PROCMINE_UTIL_RANDOM_H_
#define PROCMINE_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace procmine {

/// SplitMix64 step: returns the next state value. Used for seeding and as a
/// cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Constructs a generator from a seed. Equal seeds give equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t Index(size_t size) {
    PROCMINE_CHECK_GT(size, 0u);
    return static_cast<size_t>(Uniform(size));
  }

  /// Derives an independent child generator; child streams for distinct
  /// `stream_id`s are decorrelated from each other and from the parent.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

}  // namespace procmine

#endif  // PROCMINE_UTIL_RANDOM_H_
