#include "util/bit_matrix.h"

#include <new>

#include "util/arena.h"

namespace procmine {

namespace bits {

const char* KernelMode() {
#if PROCMINE_BITS_AVX2
  return "avx2";
#else
  return "scalar-unrolled";
#endif
}

}  // namespace bits

namespace {

size_t PaddedStride(size_t cols) {
  size_t words = (cols + 63) / 64;
  return (words + BitMatrix::kWordsPerLine - 1) &
         ~(BitMatrix::kWordsPerLine - 1);
}

}  // namespace

void BitMatrix::AllocateZeroed(Arena* arena) {
  words_per_row_ = (cols_ + 63) / 64;
  stride_ = PaddedStride(cols_);
  size_t total_words = rows_ * stride_;
  if (total_words == 0) {
    data_ = nullptr;
    owned_ = false;
    return;
  }
  if (arena != nullptr) {
    data_ = arena->AllocateArray<uint64_t>(total_words);
    owned_ = false;
  } else {
    data_ = static_cast<uint64_t*>(
        ::operator new(total_words * 8, std::align_val_t{kAlignment}));
    owned_ = true;
  }
  bits::Clear(data_, total_words);
}

void BitMatrix::ReleaseStorage() {
  if (owned_ && data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kAlignment});
  }
  data_ = nullptr;
  owned_ = false;
}

BitMatrix::BitMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
  AllocateZeroed(nullptr);
}

BitMatrix::BitMatrix(size_t rows, size_t cols, Arena* arena)
    : rows_(rows), cols_(cols) {
  AllocateZeroed(arena);
}

BitMatrix::BitMatrix(const BitMatrix& other)
    : rows_(other.rows_), cols_(other.cols_) {
  // Copies are always heap-owned, even when the source is arena scratch.
  AllocateZeroed(nullptr);
  if (data_ != nullptr) bits::Copy(data_, other.data_, rows_ * stride_);
}

BitMatrix::BitMatrix(BitMatrix&& other) noexcept
    : data_(other.data_),
      rows_(other.rows_),
      cols_(other.cols_),
      words_per_row_(other.words_per_row_),
      stride_(other.stride_),
      owned_(other.owned_) {
  other.data_ = nullptr;
  other.rows_ = other.cols_ = other.words_per_row_ = other.stride_ = 0;
  other.owned_ = false;
}

BitMatrix& BitMatrix::operator=(const BitMatrix& other) {
  if (this == &other) return *this;
  BitMatrix copy(other);
  *this = std::move(copy);
  return *this;
}

BitMatrix& BitMatrix::operator=(BitMatrix&& other) noexcept {
  if (this == &other) return *this;
  ReleaseStorage();
  data_ = other.data_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  words_per_row_ = other.words_per_row_;
  stride_ = other.stride_;
  owned_ = other.owned_;
  other.data_ = nullptr;
  other.rows_ = other.cols_ = other.words_per_row_ = other.stride_ = 0;
  other.owned_ = false;
  return *this;
}

BitMatrix::~BitMatrix() { ReleaseStorage(); }

void BitMatrix::Clear() {
  if (data_ != nullptr) bits::Clear(data_, rows_ * stride_);
}

void BitMatrix::OrWith(const BitMatrix& other) {
  PROCMINE_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  if (data_ != nullptr) bits::Or(data_, other.data_, rows_ * stride_);
}

void BitMatrix::AndNotWith(const BitMatrix& other) {
  PROCMINE_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  if (data_ != nullptr) bits::AndNot(data_, other.data_, rows_ * stride_);
}

size_t BitMatrix::Count() const {
  if (data_ == nullptr) return 0;
  return bits::Popcount(data_, rows_ * stride_);
}

bool operator==(const BitMatrix& a, const BitMatrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  if (a.data_ == nullptr || b.data_ == nullptr) {
    return a.data_ == b.data_;
  }
  return bits::Equal(a.data_, b.data_, a.rows_ * a.stride_);
}

}  // namespace procmine
