#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/logging.h"

namespace procmine {

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveThreadCount(int requested) {
  return requested <= 0 ? ThreadPool::HardwareConcurrency() : requested;
}

size_t PlanChunks(size_t total, int threads, size_t chunk_size) {
  if (total == 0) return 1;
  size_t workers = static_cast<size_t>(std::max(1, threads));
  size_t per_chunk = chunk_size;
  if (per_chunk == 0) {
    // Default: 4 chunks per worker. ceil so tiny inputs round to one chunk.
    per_chunk = (total + workers * 4 - 1) / (workers * 4);
  }
  per_chunk = std::max<size_t>(1, per_chunk);
  return std::min(total, (total + per_chunk - 1) / per_chunk);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, ResolveThreadCount(num_threads))) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(body)});
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.body();
  }
}

void ThreadPool::ParallelFor(size_t total, const ShardFn& fn) {
  const size_t shards = static_cast<size_t>(num_threads_);
  if (shards <= 1 || total <= 1) {
    if (total > 0) fn(0, 0, total);
    return;
  }

  // Completion state shared with the workers. Everything lives on this
  // stack frame; the final wait below guarantees no worker touches it after
  // ParallelFor returns.
  struct Completion {
    std::mutex mu;
    std::condition_variable done;
    size_t pending = 0;
    // First exception by shard index, so rethrow order is deterministic.
    size_t error_shard = 0;
    std::exception_ptr error;
  } state;
  state.pending = 0;

  auto run_shard = [&fn, &state](size_t shard, size_t begin, size_t end) {
    std::exception_ptr error;
    try {
      if (begin < end) fn(shard, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(state.mu);
    if (error && (!state.error || shard < state.error_shard)) {
      state.error = error;
      state.error_shard = shard;
    }
    if (--state.pending == 0) state.done.notify_one();
  };

  // Contiguous shard s covers [total*s/shards, total*(s+1)/shards).
  auto bound = [total, shards](size_t s) { return total * s / shards; };
  size_t submitted = 0;
  for (size_t s = 1; s < shards; ++s) {
    if (bound(s) >= bound(s + 1)) continue;  // empty shard
    ++submitted;
  }
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.pending = submitted + 1;  // + the caller's shard 0
  }
  for (size_t s = 1; s < shards; ++s) {
    size_t begin = bound(s), end = bound(s + 1);
    if (begin >= end) continue;
    Submit([&run_shard, s, begin, end] { run_shard(s, begin, end); });
  }
  // The caller works shard 0 instead of idling.
  run_shard(0, 0, bound(1));

  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.pending == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

void ThreadPool::ParallelForChunked(size_t num_chunks, const ChunkFn& fn) {
  if (num_chunks == 0) return;
  // Tiny inputs or a size-1 pool: run inline. Same chunk visit order as the
  // sequential reference, so this branch is trivially byte-identical.
  if (num_threads_ <= 1 || num_chunks <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  // All shared state lives on this frame; the final wait guarantees no
  // worker touches it after ParallelForChunked returns.
  struct Completion {
    std::atomic<size_t> next_chunk{0};  // the work-stealing counter
    std::mutex mu;
    std::condition_variable done;
    size_t pending = 0;
    size_t error_chunk = 0;
    std::exception_ptr error;
  } state;

  // Each participant drains chunks until the counter runs out. A worker
  // that hits an exception stops claiming chunks but the others drain the
  // remainder, so `pending` always reaches zero.
  auto drain = [&fn, &state, num_chunks] {
    std::exception_ptr error;
    size_t error_chunk = 0;
    for (;;) {
      size_t c = state.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      try {
        fn(c);
      } catch (...) {
        error = std::current_exception();
        error_chunk = c;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(state.mu);
    if (error && (!state.error || error_chunk < state.error_chunk)) {
      state.error = error;
      state.error_chunk = error_chunk;
    }
    if (--state.pending == 0) state.done.notify_one();
  };

  // No point waking more workers than there are chunks.
  size_t participants =
      std::min(static_cast<size_t>(num_threads_), num_chunks);
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.pending = participants;
  }
  for (size_t i = 1; i < participants; ++i) {
    Submit([&drain] { drain(); });
  }
  drain();  // the caller steals chunks too instead of idling

  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.pending == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace procmine
