// Crash-safe file output: write to a temp file, fsync, rename into place.
//
// A reader never observes a torn artifact: either the old file (or nothing)
// is at `path`, or the complete new contents are. The temp file lives next
// to the target (`<path>.tmp`) so the rename stays within one filesystem,
// and is unlinked on any failure. Write/fsync/rename are failpoint sites
// (atomic_write.open / .write / .fsync / .rename) so tests can prove the
// no-torn-output property under injected faults.

#ifndef PROCMINE_UTIL_ATOMIC_FILE_H_
#define PROCMINE_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace procmine {

/// Atomically replaces `path` with `content`. On error the target file is
/// untouched and the temp file has been removed (unless the process was
/// killed mid-write, in which case only `<path>.tmp` can be left behind).
Status WriteFileAtomic(const std::string& path, std::string_view content);

}  // namespace procmine

#endif  // PROCMINE_UTIL_ATOMIC_FILE_H_
