#include "util/random.h"

namespace procmine {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros; SplitMix64 of any seed cannot
  // produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  PROCMINE_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const uint64_t threshold = -bound % bound;  // == (2^64 - bound) mod bound
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  PROCMINE_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 random bits scaled to [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the parent's next output with the stream id through SplitMix64.
  uint64_t mix = NextUint64() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  uint64_t seed = SplitMix64(&mix);
  return Rng(seed);
}

}  // namespace procmine
