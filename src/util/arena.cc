#include "util/arena.h"

#include <algorithm>
#include <new>

#include "util/logging.h"

namespace procmine {

namespace {

uint64_t* AllocateAligned(size_t bytes) {
  return static_cast<uint64_t*>(
      ::operator new(bytes, std::align_val_t{Arena::kBlockAlignment}));
}

void FreeAligned(uint64_t* p) {
  ::operator delete(p, std::align_val_t{Arena::kBlockAlignment});
}

}  // namespace

Arena::Arena(size_t min_block_bytes)
    : min_block_bytes_(std::max<size_t>(min_block_bytes, kBlockAlignment)) {}

Arena::~Arena() {
  for (Block& b : blocks_) FreeAligned(b.data);
}

void* Arena::Allocate(size_t bytes, size_t align) {
  PROCMINE_DCHECK(align != 0 && (align & (align - 1)) == 0);
  PROCMINE_DCHECK(align <= kBlockAlignment);
  if (bytes == 0) bytes = 1;  // distinct non-null pointers, like malloc
  size_t aligned_offset = (offset_ + align - 1) & ~(align - 1);
  if (blocks_.empty() || current_ >= blocks_.size() ||
      aligned_offset + bytes > blocks_[current_].capacity) {
    NextBlock(bytes);
    aligned_offset = 0;  // block starts are kBlockAlignment-aligned
  }
  uint64_t* base = blocks_[current_].data;
  offset_ = aligned_offset + bytes;
  bytes_in_use_ += bytes;
  return reinterpret_cast<char*>(base) + aligned_offset;
}

void Arena::NextBlock(size_t bytes) {
  // Reuse a retained block if the next one fits; Reset() made them all free.
  size_t next = blocks_.empty() ? 0 : current_ + 1;
  if (next < blocks_.size() && bytes <= blocks_[next].capacity) {
    current_ = next;
    offset_ = 0;
    return;
  }
  // Double the last capacity so long runs settle into O(log) blocks, but
  // never allocate less than the request or the configured minimum.
  size_t capacity = min_block_bytes_;
  if (!blocks_.empty()) capacity = blocks_.back().capacity * 2;
  capacity = std::max(capacity, bytes);
  // Round to the alignment so capacity math stays line-granular.
  capacity = (capacity + kBlockAlignment - 1) & ~(kBlockAlignment - 1);
  blocks_.push_back(Block{AllocateAligned(capacity), capacity});
  bytes_reserved_ += capacity;
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  bytes_in_use_ = 0;
}

}  // namespace procmine
