// Varint / zigzag encoding primitives for the binary log format
// (LevelDB/RocksDB-style coding).

#ifndef PROCMINE_UTIL_CODING_H_
#define PROCMINE_UTIL_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace procmine {

/// Appends an unsigned LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Zigzag-maps a signed value so small magnitudes stay short, then varints.
void PutVarintSigned64(std::string* dst, int64_t value);

/// Appends a fixed-width little-endian 32-bit value.
void PutFixed32(std::string* dst, uint32_t value);

/// Appends length-prefixed bytes.
void PutLengthPrefixed(std::string* dst, std::string_view bytes);

/// Cursor-based decoder; each Get* advances `*cursor` on success and fails
/// with DataLoss on truncated or malformed input.
Result<uint64_t> GetVarint64(std::string_view* cursor);
Result<int64_t> GetVarintSigned64(std::string_view* cursor);
Result<uint32_t> GetFixed32(std::string_view* cursor);
Result<std::string_view> GetLengthPrefixed(std::string_view* cursor);

/// Zigzag mapping helpers (exposed for tests).
inline uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

}  // namespace procmine

#endif  // PROCMINE_UTIL_CODING_H_
