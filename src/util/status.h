// Status: error propagation without exceptions, in the Arrow/RocksDB idiom.
//
// Functions that can fail return a Status (or a Result<T>, see result.h).
// A Status is cheap to pass around in the OK case (a single pointer-sized
// field is empty) and carries a code plus a human-readable message on error.

#ifndef PROCMINE_UTIL_STATUS_H_
#define PROCMINE_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace procmine {

/// Machine-readable classification of an error.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kDataLoss = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or an error code with a message.
///
/// Usage:
///   Status DoWork();
///   PROCMINE_RETURN_NOT_OK(DoWork());
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string message);

  /// Named constructor for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk iff ok().
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty iff ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not ok(). For use at
  /// points where failure is a programming error.
  void Abort() const;
  void Abort(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps sizeof(Status) == sizeof(void*) and copy cheap
  // on the success path.
  std::shared_ptr<const State> state_;
};

}  // namespace procmine

/// Propagates an error status from the current function.
#define PROCMINE_RETURN_NOT_OK(expr)                    \
  do {                                                  \
    ::procmine::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (false)

/// Aborts if `expr` is not OK. For tests and main()s.
#define PROCMINE_CHECK_OK(expr)                         \
  do {                                                  \
    ::procmine::Status _st = (expr);                    \
    _st.Abort(#expr);                                   \
  } while (false)

#endif  // PROCMINE_UTIL_STATUS_H_
