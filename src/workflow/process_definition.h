// ProcessDefinition: a fully-specified business process, Definition 1 of the
// paper — the structure graph plus the output function o_P (how many output
// parameters each activity produces and from what ranges they are drawn) and
// the Boolean condition f_(u,v) on every edge.
//
// This is the executable artifact: the Engine interprets a ProcessDefinition
// to produce event logs, both for the synthetic evaluation (Section 8.1) and
// the simulated Flowmark processes (Section 8.2).

#ifndef PROCMINE_WORKFLOW_PROCESS_DEFINITION_H_
#define PROCMINE_WORKFLOW_PROCESS_DEFINITION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "workflow/condition.h"
#include "workflow/process_graph.h"

namespace procmine {

/// How an activity's output vector is generated when it executes: each
/// parameter i is drawn uniformly from [ranges[i].first, ranges[i].second].
struct OutputSpec {
  std::vector<std::pair<int64_t, int64_t>> ranges;

  int num_params() const { return static_cast<int>(ranges.size()); }

  /// k parameters each uniform in [lo, hi].
  static OutputSpec Uniform(int k, int64_t lo, int64_t hi);
};

/// Join behaviour of an activity with multiple incoming edges (the "logical
/// expression involving the activities that point to v" of Section 2).
enum class JoinKind : int8_t {
  kOr,   ///< runs if at least one incoming edge fired
  kAnd,  ///< runs only if all incoming edges fired
};

/// A complete, executable process definition.
class ProcessDefinition {
 public:
  ProcessDefinition() = default;
  explicit ProcessDefinition(ProcessGraph graph);

  const ProcessGraph& process_graph() const { return graph_; }
  const DirectedGraph& graph() const { return graph_.graph(); }
  NodeId num_activities() const { return graph_.num_activities(); }
  const std::string& name(NodeId v) const { return graph_.name(v); }

  /// Sets how activity v generates outputs (default: no outputs).
  void SetOutputSpec(NodeId v, OutputSpec spec);
  const OutputSpec& output_spec(NodeId v) const;

  /// Sets the condition on edge (from, to); the edge must exist in the
  /// graph. Default for every edge is `true`.
  void SetCondition(NodeId from, NodeId to, Condition condition);
  const Condition& condition(NodeId from, NodeId to) const;

  /// Sets the join kind of v (default kOr).
  void SetJoin(NodeId v, JoinKind kind);
  JoinKind join(NodeId v) const;

  /// Structural + referential validation: the graph validates (acyclic
  /// unless `require_acyclic` is false), and every condition only references
  /// parameters its source activity produces.
  Status Validate(bool require_acyclic = true) const;

 private:
  ProcessGraph graph_;
  std::vector<OutputSpec> output_specs_;
  std::vector<JoinKind> joins_;
  std::unordered_map<uint64_t, Condition> conditions_;  // PackEdge keyed
};

}  // namespace procmine

#endif  // PROCMINE_WORKFLOW_PROCESS_DEFINITION_H_
