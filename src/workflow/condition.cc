#include "workflow/condition.h"

#include "util/logging.h"
#include "util/strings.h"

namespace procmine {

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCmp(int64_t lhs, CmpOp op, int64_t rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

struct Condition::Node {
  enum class Kind : int8_t {
    kTrue,
    kFalse,
    kCmpConst,
    kCmpParam,
    kAnd,
    kOr,
    kNot
  };
  Kind kind;
  // kCmpConst: o[param] op value; kCmpParam: o[param] op o[rhs_param].
  int param = 0;
  int rhs_param = 0;
  CmpOp op = CmpOp::kLt;
  int64_t value = 0;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

Condition::Condition() : root_(nullptr) {}  // null root means `true`
Condition::Condition(std::shared_ptr<const Node> root)
    : root_(std::move(root)) {}

Condition Condition::True() { return Condition(); }

Condition Condition::False() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kFalse;
  return Condition(node);
}

Condition Condition::Compare(int param, CmpOp op, int64_t value) {
  PROCMINE_CHECK_GE(param, 0);
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCmpConst;
  node->param = param;
  node->op = op;
  node->value = value;
  return Condition(node);
}

Condition Condition::CompareParams(int lhs_param, CmpOp op, int rhs_param) {
  PROCMINE_CHECK_GE(lhs_param, 0);
  PROCMINE_CHECK_GE(rhs_param, 0);
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCmpParam;
  node->param = lhs_param;
  node->op = op;
  node->rhs_param = rhs_param;
  return Condition(node);
}

Condition Condition::And(Condition a, Condition b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->left = a.root_;
  node->right = b.root_;
  return Condition(node);
}

Condition Condition::Or(Condition a, Condition b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->left = a.root_;
  node->right = b.root_;
  return Condition(node);
}

Condition Condition::Not(Condition a) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNot;
  node->left = a.root_;
  return Condition(node);
}

bool Condition::Eval(const std::vector<int64_t>& output) const {
  struct Evaluator {
    const std::vector<int64_t>& out;
    bool Visit(const Condition::Node* node) const {
      if (node == nullptr) return true;  // null == constant true
      using K = Condition::Node::Kind;
      switch (node->kind) {
        case K::kTrue:
          return true;
        case K::kFalse:
          return false;
        case K::kCmpConst: {
          if (static_cast<size_t>(node->param) >= out.size()) return false;
          return EvalCmp(out[static_cast<size_t>(node->param)], node->op,
                         node->value);
        }
        case K::kCmpParam: {
          if (static_cast<size_t>(node->param) >= out.size() ||
              static_cast<size_t>(node->rhs_param) >= out.size()) {
            return false;
          }
          return EvalCmp(out[static_cast<size_t>(node->param)], node->op,
                         out[static_cast<size_t>(node->rhs_param)]);
        }
        case K::kAnd:
          return Visit(node->left.get()) && Visit(node->right.get());
        case K::kOr:
          return Visit(node->left.get()) || Visit(node->right.get());
        case K::kNot:
          return !Visit(node->left.get());
      }
      return false;
    }
  };
  return Evaluator{output}.Visit(root_.get());
}

bool Condition::IsAlwaysTrue() const {
  return root_ == nullptr || root_->kind == Node::Kind::kTrue;
}

Status Condition::Validate(int num_params) const {
  struct Checker {
    int num_params;
    Status Visit(const Condition::Node* node) const {
      if (node == nullptr) return Status::OK();
      using K = Condition::Node::Kind;
      switch (node->kind) {
        case K::kTrue:
        case K::kFalse:
          return Status::OK();
        case K::kCmpConst:
          if (node->param >= num_params) {
            return Status::InvalidArgument(
                StrFormat("condition references o[%d] but activity has only "
                          "%d output parameters",
                          node->param, num_params));
          }
          return Status::OK();
        case K::kCmpParam:
          if (node->param >= num_params || node->rhs_param >= num_params) {
            return Status::InvalidArgument(
                StrFormat("condition references o[%d] or o[%d] but activity "
                          "has only %d output parameters",
                          node->param, node->rhs_param, num_params));
          }
          return Status::OK();
        case K::kAnd:
        case K::kOr: {
          Status left = Visit(node->left.get());
          if (!left.ok()) return left;
          return Visit(node->right.get());
        }
        case K::kNot:
          return Visit(node->left.get());
      }
      return Status::OK();
    }
  };
  return Checker{num_params}.Visit(root_.get());
}

std::string Condition::ToString() const {
  struct Printer {
    std::string Visit(const Condition::Node* node) const {
      if (node == nullptr) return "true";
      using K = Condition::Node::Kind;
      switch (node->kind) {
        case K::kTrue:
          return "true";
        case K::kFalse:
          return "false";
        case K::kCmpConst:
          return StrFormat("o[%d] %s %lld", node->param,
                           std::string(CmpOpToString(node->op)).c_str(),
                           static_cast<long long>(node->value));
        case K::kCmpParam:
          return StrFormat("o[%d] %s o[%d]", node->param,
                           std::string(CmpOpToString(node->op)).c_str(),
                           node->rhs_param);
        case K::kAnd:
          return "(" + Visit(node->left.get()) + " and " +
                 Visit(node->right.get()) + ")";
        case K::kOr:
          return "(" + Visit(node->left.get()) + " or " +
                 Visit(node->right.get()) + ")";
        case K::kNot:
          return "not " + Visit(node->left.get());
      }
      return "?";
    }
  };
  return Printer{}.Visit(root_.get());
}

Condition Condition::Random(Rng* rng, int num_params, int max_depth,
                            int64_t const_lo, int64_t const_hi) {
  PROCMINE_CHECK_GT(num_params, 0);
  if (max_depth <= 0 || rng->Bernoulli(0.6)) {
    // Leaf: comparison against a constant (common case) or another param.
    int param = static_cast<int>(rng->Uniform(static_cast<uint64_t>(num_params)));
    CmpOp op = static_cast<CmpOp>(rng->Uniform(6));
    if (num_params >= 2 && rng->Bernoulli(0.2)) {
      int rhs = static_cast<int>(
          rng->Uniform(static_cast<uint64_t>(num_params)));
      return CompareParams(param, op, rhs);
    }
    return Compare(param, op, rng->UniformRange(const_lo, const_hi));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return And(Random(rng, num_params, max_depth - 1, const_lo, const_hi),
                 Random(rng, num_params, max_depth - 1, const_lo, const_hi));
    case 1:
      return Or(Random(rng, num_params, max_depth - 1, const_lo, const_hi),
                Random(rng, num_params, max_depth - 1, const_lo, const_hi));
    default:
      return Not(Random(rng, num_params, max_depth - 1, const_lo, const_hi));
  }
}

}  // namespace procmine
