// Parser for Condition expressions — the textual form Condition::ToString
// emits and the FDL definition language embeds:
//
//   cond    := or_expr
//   or_expr := and_expr ( 'or' and_expr )*
//   and_expr:= unary ( 'and' unary )*
//   unary   := 'not' unary | primary
//   primary := '(' cond ')' | 'true' | 'false' | operand CMP operand
//   operand := 'o' '[' INT ']' | INT
//   CMP     := < | <= | > | >= | == | !=
//
// 'and' binds tighter than 'or'; at least one side of a comparison must be
// a parameter reference (constant-vs-constant comparisons are folded).

#ifndef PROCMINE_WORKFLOW_CONDITION_PARSER_H_
#define PROCMINE_WORKFLOW_CONDITION_PARSER_H_

#include <string_view>

#include "util/result.h"
#include "workflow/condition.h"

namespace procmine {

/// Parses `text` into a Condition. Fails with InvalidArgument (message
/// includes the offending position) on syntax errors or trailing input.
Result<Condition> ParseCondition(std::string_view text);

}  // namespace procmine

#endif  // PROCMINE_WORKFLOW_CONDITION_PARSER_H_
