#include "workflow/process_graph.h"

#include <unordered_map>

#include "graph/algorithms.h"
#include "graph/dot.h"
#include "util/strings.h"

namespace procmine {

ProcessGraph::ProcessGraph(DirectedGraph graph, std::vector<std::string> names)
    : graph_(std::move(graph)), names_(std::move(names)) {
  PROCMINE_CHECK_EQ(static_cast<size_t>(graph_.num_nodes()), names_.size());
}

ProcessGraph ProcessGraph::FromNamedEdges(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  ActivityDictionary dict;
  std::vector<Edge> id_edges;
  id_edges.reserve(edges.size());
  for (const auto& [from, to] : edges) {
    NodeId f = dict.Intern(from);
    NodeId t = dict.Intern(to);
    id_edges.push_back(Edge{f, t});
  }
  DirectedGraph g = DirectedGraph::FromEdges(dict.size(), id_edges);
  return ProcessGraph(std::move(g), dict.names());
}

Result<NodeId> ProcessGraph::FindActivity(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<NodeId>(i);
  }
  return Status::NotFound("unknown activity: '" + name + "'");
}

Result<NodeId> ProcessGraph::Source() const {
  std::vector<NodeId> sources = Sources(graph_);
  if (sources.size() != 1) {
    return Status::FailedPrecondition(
        StrFormat("expected exactly one source, found %zu", sources.size()));
  }
  return sources[0];
}

Result<NodeId> ProcessGraph::Sink() const {
  std::vector<NodeId> sinks = Sinks(graph_);
  if (sinks.size() != 1) {
    return Status::FailedPrecondition(
        StrFormat("expected exactly one sink, found %zu", sinks.size()));
  }
  return sinks[0];
}

Status ProcessGraph::Validate(bool require_acyclic) const {
  if (graph_.num_nodes() == 0) {
    return Status::FailedPrecondition("process graph is empty");
  }
  PROCMINE_ASSIGN_OR_RETURN(NodeId source, Source());
  PROCMINE_RETURN_NOT_OK(Sink().status());
  if (require_acyclic && HasCycle(graph_)) {
    return Status::FailedPrecondition("process graph has a cycle");
  }
  if (!IsWeaklyConnected(graph_)) {
    return Status::FailedPrecondition("process graph is not connected");
  }
  std::vector<NodeId> reachable = ReachableFrom(graph_, source);
  if (reachable.size() != static_cast<size_t>(graph_.num_nodes())) {
    return Status::FailedPrecondition(StrFormat(
        "only %zu of %d activities reachable from the source",
        reachable.size(), graph_.num_nodes()));
  }
  return Status::OK();
}

std::string ProcessGraph::ToDot(const std::string& graph_name) const {
  DotOptions options;
  options.graph_name = graph_name;
  return procmine::ToDot(graph_, names_, options);
}

}  // namespace procmine
