#include "workflow/engine.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/strings.h"

namespace procmine {

Engine::Engine(const ProcessDefinition* definition, EngineOptions options)
    : def_(definition), options_(options) {
  PROCMINE_CHECK(def_ != nullptr);
}

namespace {

/// Draws an output vector per the activity's OutputSpec.
std::vector<int64_t> DrawOutputs(const OutputSpec& spec, Rng* rng) {
  std::vector<int64_t> out;
  out.reserve(spec.ranges.size());
  for (const auto& [lo, hi] : spec.ranges) {
    out.push_back(rng->UniformRange(lo, hi));
  }
  return out;
}

}  // namespace

Result<Execution> Engine::Run(const std::string& instance_name,
                              Rng* rng) const {
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    Result<Execution> result = RunOnce(instance_name, rng);
    if (result.ok()) return result;
    last = result.status();
    if (last.code() == StatusCode::kInternal) return last;  // hard failure
  }
  return Status::FailedPrecondition(StrFormat(
      "execution '%s' failed after %d attempts: %s", instance_name.c_str(),
      options_.max_attempts, last.message().c_str()));
}

Result<Execution> Engine::RunOnce(const std::string& instance_name,
                                  Rng* rng) const {
  switch (options_.mode) {
    case ExecutionMode::kDeadPath:
      return RunDeadPath(instance_name, rng);
    case ExecutionMode::kTokenFire:
      return RunTokenFire(instance_name, rng);
  }
  return Status::Internal("unknown execution mode");
}

Result<Execution> Engine::RunDeadPath(const std::string& instance_name,
                                      Rng* rng) const {
  if (options_.max_duration > 0) {
    return RunDeadPathWithAgents(instance_name, rng);
  }
  const DirectedGraph& g = def_->graph();
  PROCMINE_ASSIGN_OR_RETURN(NodeId source, def_->process_graph().Source());
  PROCMINE_ASSIGN_OR_RETURN(NodeId sink, def_->process_graph().Sink());

  const size_t n = static_cast<size_t>(g.num_nodes());
  std::vector<int64_t> resolved(n, 0);  // incoming edges with a truth value
  std::vector<int64_t> fired(n, 0);     // incoming edges that were true
  std::vector<bool> executed(n, false);
  std::vector<NodeId> ready = {source};

  Execution exec(instance_name);
  int64_t clock = 0;
  bool sink_ran = false;

  // Propagates a truth value along edge (from, to); when `to` becomes fully
  // resolved it either becomes ready or goes dead (propagating falsity).
  // Iterative worklist to avoid deep recursion on long chains.
  std::deque<std::pair<NodeId, bool>> signals;  // (target, value)
  auto flush_signals = [&]() {
    while (!signals.empty()) {
      auto [v, value] = signals.front();
      signals.pop_front();
      ++resolved[static_cast<size_t>(v)];
      if (value) ++fired[static_cast<size_t>(v)];
      if (resolved[static_cast<size_t>(v)] < g.InDegree(v)) continue;
      bool runs = def_->join(v) == JoinKind::kOr
                      ? fired[static_cast<size_t>(v)] > 0
                      : fired[static_cast<size_t>(v)] == g.InDegree(v);
      if (runs) {
        ready.push_back(v);
      } else {
        for (NodeId w : g.OutNeighbors(v)) signals.emplace_back(w, false);
      }
    }
  };

  auto execute = [&](NodeId v, int64_t start, int64_t end) {
    executed[static_cast<size_t>(v)] = true;
    if (v == sink) sink_ran = true;
    std::vector<int64_t> output = DrawOutputs(def_->output_spec(v), rng);
    for (NodeId w : g.OutNeighbors(v)) {
      signals.emplace_back(w, def_->condition(v, w).Eval(output));
    }
    ActivityInstance inst;
    inst.activity = v;
    inst.start = start;
    inst.end = end;
    if (options_.record_outputs) inst.output = std::move(output);
    exec.Append(std::move(inst));
  };

  while (!ready.empty()) {
    if (options_.parallel_overlap && ready.size() > 1) {
      // Run the whole ready set as one overlapping batch: member i gets the
      // interval [clock + i, clock + batch + i], so all pairs overlap and no
      // two start simultaneously.
      std::vector<NodeId> batch;
      batch.swap(ready);
      rng->Shuffle(&batch);
      int64_t batch_size = static_cast<int64_t>(batch.size());
      for (int64_t i = 0; i < batch_size; ++i) {
        execute(batch[static_cast<size_t>(i)], clock + i,
                clock + batch_size + i);
      }
      clock += 2 * batch_size;
    } else {
      size_t pick = rng->Index(ready.size());
      NodeId v = ready[pick];
      ready.erase(ready.begin() + static_cast<ptrdiff_t>(pick));
      execute(v, clock, clock);
      ++clock;
    }
    flush_signals();
  }

  if (!sink_ran) {
    return Status::FailedPrecondition("terminating activity never ran");
  }
  return exec;
}

Result<Execution> Engine::RunDeadPathWithAgents(
    const std::string& instance_name, Rng* rng) const {
  const DirectedGraph& g = def_->graph();
  PROCMINE_ASSIGN_OR_RETURN(NodeId source, def_->process_graph().Source());
  PROCMINE_ASSIGN_OR_RETURN(NodeId sink, def_->process_graph().Sink());
  PROCMINE_CHECK_GE(options_.num_agents, 1);
  PROCMINE_CHECK_LE(options_.min_duration, options_.max_duration);

  const size_t n = static_cast<size_t>(g.num_nodes());
  std::vector<int64_t> resolved(n, 0);
  std::vector<int64_t> fired(n, 0);
  // ready_time[v]: causality floor — max completion time over the signals
  // v has received, so v never starts before a predecessor finished.
  std::vector<int64_t> ready_time(n, 0);
  // Ready work items: (activity, time it became ready).
  std::vector<std::pair<NodeId, int64_t>> ready = {{source, 0}};
  std::vector<int64_t> agent_free(static_cast<size_t>(options_.num_agents),
                                  0);
  std::unordered_set<int64_t> used_starts;
  std::vector<ActivityInstance> instances;
  bool sink_ran = false;

  struct Signal {
    NodeId target;
    bool value;
    int64_t available_at;
  };
  std::deque<Signal> signals;
  auto flush_signals = [&]() {
    while (!signals.empty()) {
      Signal s = signals.front();
      signals.pop_front();
      size_t v = static_cast<size_t>(s.target);
      ++resolved[v];
      if (s.value) ++fired[v];
      ready_time[v] = std::max(ready_time[v], s.available_at);
      if (resolved[v] < g.InDegree(s.target)) continue;
      bool runs = def_->join(s.target) == JoinKind::kOr
                      ? fired[v] > 0
                      : fired[v] == g.InDegree(s.target);
      if (runs) {
        ready.emplace_back(s.target, ready_time[v]);
      } else {
        for (NodeId w : g.OutNeighbors(s.target)) {
          signals.push_back({w, false, ready_time[v]});
        }
      }
    }
  };

  while (!ready.empty()) {
    size_t pick = rng->Index(ready.size());
    auto [v, enable_time] = ready[pick];
    ready.erase(ready.begin() + static_cast<ptrdiff_t>(pick));

    // First agent to come free takes the work item. Starting strictly
    // after both the enabling completion and the agent's previous task
    // keeps "terminates before starts" (the mining precedence relation)
    // true for every genuine dependency and same-agent succession.
    size_t agent = 0;
    for (size_t a = 1; a < agent_free.size(); ++a) {
      if (agent_free[a] < agent_free[agent]) agent = a;
    }
    int64_t start = std::max(enable_time, agent_free[agent]) + 1;
    while (!used_starts.insert(start).second) ++start;  // distinct starts
    int64_t end = start + rng->UniformRange(options_.min_duration,
                                            options_.max_duration);
    agent_free[agent] = end;

    if (v == sink) sink_ran = true;
    std::vector<int64_t> output = DrawOutputs(def_->output_spec(v), rng);
    for (NodeId w : g.OutNeighbors(v)) {
      signals.push_back({w, def_->condition(v, w).Eval(output), end});
    }
    ActivityInstance inst;
    inst.activity = v;
    inst.start = start;
    inst.end = end;
    if (options_.record_outputs) inst.output = std::move(output);
    instances.push_back(std::move(inst));
    flush_signals();
  }

  if (!sink_ran) {
    return Status::FailedPrecondition("terminating activity never ran");
  }
  std::stable_sort(instances.begin(), instances.end(),
                   [](const ActivityInstance& a, const ActivityInstance& b) {
                     return a.start < b.start;
                   });
  Execution exec(instance_name);
  for (ActivityInstance& inst : instances) exec.Append(std::move(inst));
  return exec;
}

Result<Execution> Engine::RunTokenFire(const std::string& instance_name,
                                       Rng* rng) const {
  const DirectedGraph& g = def_->graph();
  PROCMINE_ASSIGN_OR_RETURN(NodeId source, def_->process_graph().Source());
  PROCMINE_ASSIGN_OR_RETURN(NodeId sink, def_->process_graph().Sink());

  std::vector<NodeId> pending = {source};
  Execution exec(instance_name);
  int64_t clock = 0;
  int steps = 0;

  while (!pending.empty()) {
    size_t pick = rng->Index(pending.size());
    NodeId v = pending[pick];
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(pick));

    if (++steps > options_.max_steps) {
      return Status::Internal(StrFormat(
          "execution '%s' exceeded max_steps=%d (unbounded loop?)",
          instance_name.c_str(), options_.max_steps));
    }
    std::vector<int64_t> output = DrawOutputs(def_->output_spec(v), rng);
    ActivityInstance inst;
    inst.activity = v;
    inst.start = clock;
    inst.end = clock;
    if (options_.record_outputs) inst.output = output;
    exec.Append(std::move(inst));
    ++clock;

    if (v == sink) return exec;  // terminating activity ends the execution

    for (NodeId w : g.OutNeighbors(v)) {
      if (def_->condition(v, w).Eval(output)) pending.push_back(w);
    }
  }
  return Status::FailedPrecondition("terminating activity never ran");
}

Result<EventLog> Engine::GenerateLog(size_t n, uint64_t seed,
                                     const std::string& instance_prefix) const {
  EventLog log;
  // Intern activity names in vertex-id order so the log's ActivityIds are
  // exactly the definition's NodeIds.
  for (NodeId v = 0; v < def_->num_activities(); ++v) {
    ActivityId id = log.dictionary().Intern(def_->name(v));
    PROCMINE_CHECK_EQ(id, v);
  }
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Rng child = rng.Fork(i);
    PROCMINE_ASSIGN_OR_RETURN(
        Execution exec,
        Run(StrFormat("%s_%06zu", instance_prefix.c_str(), i), &child));
    log.AddExecution(std::move(exec));
  }
  return log;
}

}  // namespace procmine
