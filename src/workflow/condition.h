// Condition: Boolean control-flow predicates on activity outputs.
//
// Section 2 of the paper annotates every edge (u,v) with a Boolean function
// f_(u,v) : N^k -> {0,1} evaluated on the output vector o(u). Conditions are
// immutable expression trees (comparisons of output parameters against
// constants or each other, combined with AND/OR/NOT), cheap to copy
// (shared_ptr nodes), and printable — the condition miner re-emits learned
// rules in this same form.

#ifndef PROCMINE_WORKFLOW_CONDITION_H_
#define PROCMINE_WORKFLOW_CONDITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace procmine {

/// Comparison operator of a leaf predicate.
enum class CmpOp : int8_t { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view CmpOpToString(CmpOp op);

/// Evaluates `lhs op rhs`.
bool EvalCmp(int64_t lhs, CmpOp op, int64_t rhs);

/// Immutable Boolean expression over an output vector o.
/// Grammar:  C ::= true | false | o[i] op const | o[i] op o[j]
///              | C and C | C or C | not C
class Condition {
 public:
  /// Default-constructed condition is `true` (unconditional edge).
  Condition();

  static Condition True();
  static Condition False();
  /// o[param] op value
  static Condition Compare(int param, CmpOp op, int64_t value);
  /// o[lhs_param] op o[rhs_param]
  static Condition CompareParams(int lhs_param, CmpOp op, int rhs_param);
  static Condition And(Condition a, Condition b);
  static Condition Or(Condition a, Condition b);
  static Condition Not(Condition a);

  /// Evaluates against the output vector. Parameter indexes beyond
  /// output.size() evaluate their leaf to false (a missing parameter can
  /// never satisfy a comparison).
  bool Eval(const std::vector<int64_t>& output) const;

  /// True iff the expression is the constant `true`.
  bool IsAlwaysTrue() const;

  /// OK iff every referenced parameter index is < num_params.
  Status Validate(int num_params) const;

  /// Human-readable form, e.g. "(o[0] > 5 and o[1] <= o[0])".
  std::string ToString() const;

  /// Generates a random condition of depth <= max_depth over num_params
  /// parameters with constants drawn from [const_lo, const_hi]. Used by the
  /// synthetic workload generator.
  static Condition Random(Rng* rng, int num_params, int max_depth,
                          int64_t const_lo, int64_t const_hi);

 private:
  struct Node;
  explicit Condition(std::shared_ptr<const Node> root);
  std::shared_ptr<const Node> root_;
};

}  // namespace procmine

#endif  // PROCMINE_WORKFLOW_CONDITION_H_
