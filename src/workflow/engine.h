// Engine: executes a ProcessDefinition and records event logs.
//
// This is the Flowmark-like substrate of Section 2: when an activity u
// terminates, its output o(u) is computed, the Boolean functions on u's
// outgoing edges are evaluated on that output, and each successor v runs
// when its start condition over the incoming edges is satisfied. Activities
// that become ready are picked in random order (they would be queued to
// "the next available agent").
//
// Two interpretation modes:
//  * kDeadPath (default, acyclic definitions): faithful dead-path
//    elimination — an activity is resolved once ALL incoming edges carry a
//    truth value; false paths propagate falsity downstream. Supports kAnd
//    and kOr joins. Guarantees each activity executes at most once.
//  * kTokenFire (cyclic definitions): each true edge fires a token that
//    enqueues its target, so loop bodies re-execute; terminates when the
//    sink runs or max_steps is hit. Joins are treated as kOr.

#ifndef PROCMINE_WORKFLOW_ENGINE_H_
#define PROCMINE_WORKFLOW_ENGINE_H_

#include <string>

#include "log/event_log.h"
#include "util/random.h"
#include "util/result.h"
#include "workflow/process_definition.h"

namespace procmine {

enum class ExecutionMode : int8_t { kDeadPath, kTokenFire };

struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kDeadPath;
  /// Record output vectors on END events (needed for conditions mining).
  bool record_outputs = true;
  /// When several activities are ready simultaneously, log them with
  /// overlapping (start, end) intervals instead of instantaneous events —
  /// exercises the paper's interval semantics where overlapping activities
  /// are independent.
  bool parallel_overlap = false;
  /// Agent-pool simulation (Section 2: ready activities are "inserted into
  /// a queue to be executed by the next available agent"). Active when
  /// max_duration > 0: each activity draws a duration in
  /// [min_duration, max_duration] and runs on the first free of
  /// `num_agents` agents, so concurrent activities genuinely overlap in
  /// time. Start times are kept pairwise distinct (the paper's no-two-
  /// simultaneous-starts assumption). kDeadPath mode only.
  int num_agents = 1;
  int64_t min_duration = 0;
  int64_t max_duration = 0;
  /// Safety bound on executed instances per execution (token mode loops).
  int max_steps = 100000;
  /// An execution whose sink is never reached (every path went dead) is
  /// retried with fresh randomness up to this many times.
  int max_attempts = 64;
};

/// Interprets a ProcessDefinition.
class Engine {
 public:
  /// `definition` must outlive the engine and be Validate()-clean for the
  /// chosen mode (acyclic for kDeadPath).
  Engine(const ProcessDefinition* definition, EngineOptions options = {});

  /// Runs one process execution to completion.
  /// Fails with FailedPrecondition if the sink was not reached after
  /// max_attempts tries, or Internal if max_steps was exceeded.
  Result<Execution> Run(const std::string& instance_name, Rng* rng) const;

  /// Runs `n` executions and assembles an EventLog whose activity ids are
  /// identical to the definition's vertex ids.
  Result<EventLog> GenerateLog(size_t n, uint64_t seed,
                               const std::string& instance_prefix =
                                   "case") const;

 private:
  Result<Execution> RunOnce(const std::string& instance_name,
                            Rng* rng) const;
  Result<Execution> RunDeadPath(const std::string& instance_name,
                                Rng* rng) const;
  Result<Execution> RunDeadPathWithAgents(const std::string& instance_name,
                                          Rng* rng) const;
  Result<Execution> RunTokenFire(const std::string& instance_name,
                                 Rng* rng) const;

  const ProcessDefinition* def_;
  EngineOptions options_;
};

}  // namespace procmine

#endif  // PROCMINE_WORKFLOW_ENGINE_H_
