#include "workflow/fdl.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"
#include "workflow/condition_parser.h"

namespace procmine {

namespace {

/// A raw declaration split out of the document body.
struct Declaration {
  std::string text;
  int64_t line;
};

/// Strips comments and splits the body on ';'.
std::vector<Declaration> SplitDeclarations(std::string_view body,
                                           int64_t first_line) {
  std::vector<Declaration> declarations;
  std::string current;
  int64_t line = first_line;
  int64_t start_line = first_line;
  bool in_comment = false;
  for (char c : body) {
    if (c == '\n') {
      ++line;
      in_comment = false;
      current += ' ';
      continue;
    }
    if (in_comment) continue;
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (c == ';') {
      if (!Trim(current).empty()) {
        declarations.push_back({std::string(Trim(current)), start_line});
      }
      current.clear();
      continue;
    }
    // The declaration starts on the line of its first visible character.
    if (Trim(current).empty() &&
        !std::isspace(static_cast<unsigned char>(c))) {
      start_line = line;
    }
    current += c;
  }
  if (!Trim(current).empty()) {
    declarations.push_back({std::string(Trim(current)), start_line});
  }
  return declarations;
}

Status DeclError(const Declaration& decl, const std::string& message) {
  return Status::InvalidArgument(StrFormat(
      "FDL line %lld: %s (in '%s')", static_cast<long long>(decl.line),
      message.c_str(), decl.text.c_str()));
}

struct ActivityDecl {
  std::string name;
  int outputs = 0;
  int64_t range_lo = 0;
  int64_t range_hi = 99;
};

struct EdgeDecl {
  std::string from;
  std::string to;
  std::string condition;  // empty = true
  Declaration origin;
};

struct JoinDecl {
  std::string activity;
  JoinKind kind;
  Declaration origin;
};

}  // namespace

Result<ProcessDefinition> ParseFdl(const std::string& text,
                                   bool require_acyclic) {
  // Header: process <name> { ... }
  size_t brace_open = text.find('{');
  size_t brace_close = text.rfind('}');
  if (brace_open == std::string::npos || brace_close == std::string::npos ||
      brace_close < brace_open) {
    return Status::InvalidArgument("FDL: expected 'process <name> { ... }'");
  }
  std::vector<std::string> header =
      SplitWhitespace(text.substr(0, brace_open));
  // Tolerate comment lines before the header by taking the last two tokens.
  if (header.size() < 2 || header[header.size() - 2] != "process") {
    return Status::InvalidArgument(
        "FDL: document must start with 'process <name>'");
  }
  int64_t first_line =
      1 + std::count(text.begin(),
                     text.begin() + static_cast<ptrdiff_t>(brace_open), '\n');

  std::vector<ActivityDecl> activities;
  std::vector<EdgeDecl> edges;
  std::vector<JoinDecl> joins;

  for (const Declaration& decl : SplitDeclarations(
           text.substr(brace_open + 1, brace_close - brace_open - 1),
           first_line)) {
    std::vector<std::string> tokens = SplitWhitespace(decl.text);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "activity") {
      if (tokens.size() < 2) return DeclError(decl, "activity needs a name");
      ActivityDecl activity;
      activity.name = tokens[1];
      size_t i = 2;
      while (i < tokens.size()) {
        if (tokens[i] == "outputs" && i + 1 < tokens.size()) {
          PROCMINE_ASSIGN_OR_RETURN(int64_t k, ParseInt64(tokens[i + 1]));
          if (k < 0 || k > 64) {
            return DeclError(decl, "outputs must be in [0, 64]");
          }
          activity.outputs = static_cast<int>(k);
          i += 2;
        } else if (tokens[i] == "range") {
          // range [ lo , hi ] — retokenize the remainder jointly to allow
          // arbitrary spacing.
          std::string rest = Join({tokens.begin() + static_cast<ptrdiff_t>(i) + 1,
                                   tokens.end()},
                                  " ");
          size_t open = rest.find('[');
          size_t comma = rest.find(',');
          size_t close = rest.find(']');
          if (open == std::string::npos || comma == std::string::npos ||
              close == std::string::npos || !(open < comma && comma < close)) {
            return DeclError(decl, "range expects [lo, hi]");
          }
          auto lo = ParseInt64(Trim(rest.substr(open + 1, comma - open - 1)));
          auto hi = ParseInt64(Trim(rest.substr(comma + 1, close - comma - 1)));
          if (!lo.ok() || !hi.ok() || *lo > *hi) {
            return DeclError(decl, "bad range bounds");
          }
          activity.range_lo = *lo;
          activity.range_hi = *hi;
          // Nothing may follow the range.
          if (!Trim(rest.substr(close + 1)).empty()) {
            return DeclError(decl, "unexpected tokens after range");
          }
          i = tokens.size();
        } else {
          return DeclError(decl, "unknown activity attribute '" + tokens[i] +
                                     "'");
        }
      }
      activities.push_back(std::move(activity));
    } else if (keyword == "edge") {
      // edge From -> To [when <condition>]
      std::vector<std::string> rest = tokens;
      if (rest.size() < 4 || rest[2] != "->") {
        return DeclError(decl, "edge expects 'edge From -> To [when ...]'");
      }
      EdgeDecl edge;
      edge.from = rest[1];
      edge.to = rest[3];
      edge.origin = decl;
      if (rest.size() > 4) {
        if (rest[4] != "when") {
          return DeclError(decl, "expected 'when' before the condition");
        }
        edge.condition = Join(
            {rest.begin() + 5, rest.end()}, " ");
        if (edge.condition.empty()) {
          return DeclError(decl, "empty condition after 'when'");
        }
      }
      edges.push_back(std::move(edge));
    } else if (keyword == "join") {
      if (tokens.size() != 3 || (tokens[2] != "and" && tokens[2] != "or")) {
        return DeclError(decl, "join expects 'join <activity> and|or'");
      }
      joins.push_back({tokens[1],
                       tokens[2] == "and" ? JoinKind::kAnd : JoinKind::kOr,
                       decl});
    } else {
      return DeclError(decl, "unknown declaration '" + keyword + "'");
    }
  }

  // Assemble: activities in declaration order, then edges.
  ActivityDictionary dict;
  for (const ActivityDecl& activity : activities) {
    if (dict.Find(activity.name).ok()) {
      return Status::InvalidArgument("FDL: duplicate activity '" +
                                     activity.name + "'");
    }
    dict.Intern(activity.name);
  }
  DirectedGraph graph(dict.size());
  for (const EdgeDecl& edge : edges) {
    auto from = dict.Find(edge.from);
    auto to = dict.Find(edge.to);
    if (!from.ok()) {
      return DeclError(edge.origin, "undeclared activity '" + edge.from + "'");
    }
    if (!to.ok()) {
      return DeclError(edge.origin, "undeclared activity '" + edge.to + "'");
    }
    if (!graph.AddEdge(*from, *to)) {
      return DeclError(edge.origin, "duplicate edge");
    }
  }

  ProcessDefinition def(ProcessGraph(std::move(graph), dict.names()));
  for (size_t i = 0; i < activities.size(); ++i) {
    const ActivityDecl& activity = activities[i];
    def.SetOutputSpec(static_cast<NodeId>(i),
                      OutputSpec::Uniform(activity.outputs,
                                          activity.range_lo,
                                          activity.range_hi));
  }
  for (const EdgeDecl& edge : edges) {
    if (edge.condition.empty()) continue;
    Result<Condition> condition = ParseCondition(edge.condition);
    if (!condition.ok()) {
      return DeclError(edge.origin,
                       std::string(condition.status().message()));
    }
    def.SetCondition(*dict.Find(edge.from), *dict.Find(edge.to),
                     condition.MoveValueOrDie());
  }
  for (const JoinDecl& join : joins) {
    auto id = dict.Find(join.activity);
    if (!id.ok()) {
      return DeclError(join.origin,
                       "undeclared activity '" + join.activity + "'");
    }
    def.SetJoin(*id, join.kind);
  }

  PROCMINE_RETURN_NOT_OK(def.Validate(require_acyclic));
  return def;
}

std::string ToFdl(const ProcessDefinition& definition,
                  const std::string& process_name) {
  std::ostringstream out;
  out << "process " << process_name << " {\n";
  for (NodeId v = 0; v < definition.num_activities(); ++v) {
    out << "  activity " << definition.name(v);
    const OutputSpec& spec = definition.output_spec(v);
    if (spec.num_params() > 0) {
      int64_t lo = spec.ranges[0].first;
      int64_t hi = spec.ranges[0].second;
      for (const auto& [range_lo, range_hi] : spec.ranges) {
        lo = std::min(lo, range_lo);
        hi = std::max(hi, range_hi);
      }
      out << " outputs " << spec.num_params() << " range [" << lo << ", "
          << hi << "]";
    }
    out << ";\n";
  }
  for (NodeId v = 0; v < definition.num_activities(); ++v) {
    if (definition.join(v) == JoinKind::kAnd) {
      out << "  join " << definition.name(v) << " and;\n";
    }
  }
  for (const Edge& e : definition.graph().Edges()) {
    out << "  edge " << definition.name(e.from) << " -> "
        << definition.name(e.to);
    const Condition& condition = definition.condition(e.from, e.to);
    if (!condition.IsAlwaysTrue()) {
      out << " when " << condition.ToString();
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

Result<ProcessDefinition> ReadFdlFile(const std::string& path,
                                      bool require_acyclic) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IOError("read failed: " + path);
  return ParseFdl(buffer.str(), require_acyclic);
}

Status WriteFdlFile(const ProcessDefinition& definition,
                    const std::string& path,
                    const std::string& process_name) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  file << ToFdl(definition, process_name);
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace procmine
