// ProcessGraph: the paper's process model graph — a directed graph whose
// vertices are named activities, with a single initiating (source) and a
// single terminating (sink) activity (Section 2, Definition 1 without the
// output functions and edge conditions; those live in ProcessDefinition).
//
// Mined graphs and ground-truth graphs are both ProcessGraphs, so they can
// be compared, rendered, and conformance-checked interchangeably.

#ifndef PROCMINE_WORKFLOW_PROCESS_GRAPH_H_
#define PROCMINE_WORKFLOW_PROCESS_GRAPH_H_

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "log/activity_dictionary.h"
#include "util/result.h"

namespace procmine {

/// A named-activity directed graph. Activity ids are the vertex ids.
class ProcessGraph {
 public:
  ProcessGraph() = default;

  /// Takes a structure graph and per-vertex activity names.
  /// names.size() must equal graph.num_nodes().
  ProcessGraph(DirectedGraph graph, std::vector<std::string> names);

  /// Builds from an edge list in name space:
  /// {{"A","B"},{"A","C"}} etc. New names are assigned ids in first-seen
  /// order.
  static ProcessGraph FromNamedEdges(
      const std::vector<std::pair<std::string, std::string>>& edges);

  const DirectedGraph& graph() const { return graph_; }
  DirectedGraph& mutable_graph() { return graph_; }

  NodeId num_activities() const { return graph_.num_nodes(); }
  const std::string& name(NodeId v) const {
    return names_[static_cast<size_t>(v)];
  }
  const std::vector<std::string>& names() const { return names_; }

  /// Id of the named activity, or NotFound.
  Result<NodeId> FindActivity(const std::string& name) const;

  /// The unique source (in-degree 0). Fails unless exactly one exists.
  Result<NodeId> Source() const;
  /// The unique sink (out-degree 0). Fails unless exactly one exists.
  Result<NodeId> Sink() const;

  /// Structural validation per Section 2: nonempty, unique source and sink,
  /// weakly connected, every vertex reachable from the source and reaching
  /// the sink. Pass `require_acyclic` for the Sections 3-4 setting.
  Status Validate(bool require_acyclic = true) const;

  /// DOT rendering with activity names as labels.
  std::string ToDot(const std::string& graph_name = "process") const;

 private:
  DirectedGraph graph_;
  std::vector<std::string> names_;
};

}  // namespace procmine

#endif  // PROCMINE_WORKFLOW_PROCESS_GRAPH_H_
