#include "workflow/condition_parser.h"

#include <cctype>

#include "util/strings.h"

namespace procmine {

namespace {

/// Hand-rolled tokenizer + recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Condition> Parse() {
    PROCMINE_ASSIGN_OR_RETURN(Condition cond, ParseOr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return cond;
  }

 private:
  /// One operand of a comparison: a parameter reference or a constant.
  struct Operand {
    bool is_param;
    int param = 0;
    int64_t value = 0;
  };

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("condition parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeSymbol(std::string_view symbol) {
    SkipSpace();
    if (text_.substr(pos_, symbol.size()) == symbol) {
      pos_ += symbol.size();
      return true;
    }
    return false;
  }

  /// Consumes a keyword (must not be followed by an identifier character).
  bool ConsumeKeyword(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  Result<int64_t> ConsumeInteger() {
    SkipSpace();
    size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == begin ||
        (pos_ == begin + 1 && !std::isdigit(
                                  static_cast<unsigned char>(text_[begin])))) {
      return Error("expected an integer");
    }
    return ParseInt64(text_.substr(begin, pos_ - begin));
  }

  Result<Condition> ParseOr() {
    PROCMINE_ASSIGN_OR_RETURN(Condition left, ParseAnd());
    while (ConsumeKeyword("or")) {
      PROCMINE_ASSIGN_OR_RETURN(Condition right, ParseAnd());
      left = Condition::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Condition> ParseAnd() {
    PROCMINE_ASSIGN_OR_RETURN(Condition left, ParseUnary());
    while (ConsumeKeyword("and")) {
      PROCMINE_ASSIGN_OR_RETURN(Condition right, ParseUnary());
      left = Condition::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Condition> ParseUnary() {
    if (ConsumeKeyword("not")) {
      PROCMINE_ASSIGN_OR_RETURN(Condition inner, ParseUnary());
      return Condition::Not(std::move(inner));
    }
    return ParsePrimary();
  }

  Result<Condition> ParsePrimary() {
    if (ConsumeSymbol("(")) {
      PROCMINE_ASSIGN_OR_RETURN(Condition inner, ParseOr());
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      return inner;
    }
    if (ConsumeKeyword("true")) return Condition::True();
    if (ConsumeKeyword("false")) return Condition::False();

    PROCMINE_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    PROCMINE_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
    PROCMINE_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());

    if (lhs.is_param && rhs.is_param) {
      return Condition::CompareParams(lhs.param, op, rhs.param);
    }
    if (lhs.is_param) {
      return Condition::Compare(lhs.param, op, rhs.value);
    }
    if (rhs.is_param) {
      // const OP o[i]  ==  o[i] FLIP(OP) const
      return Condition::Compare(rhs.param, Flip(op), lhs.value);
    }
    // Constant comparison folds to a constant condition.
    return EvalCmp(lhs.value, op, rhs.value) ? Condition::True()
                                             : Condition::False();
  }

  Result<Operand> ParseOperand() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == 'o' &&
        pos_ + 1 < text_.size() && text_[pos_ + 1] == '[') {
      pos_ += 2;
      PROCMINE_ASSIGN_OR_RETURN(int64_t index, ConsumeInteger());
      if (index < 0) return Error("parameter index must be >= 0");
      if (!ConsumeSymbol("]")) return Error("expected ']'");
      Operand operand;
      operand.is_param = true;
      operand.param = static_cast<int>(index);
      return operand;
    }
    PROCMINE_ASSIGN_OR_RETURN(int64_t value, ConsumeInteger());
    Operand operand;
    operand.is_param = false;
    operand.value = value;
    return operand;
  }

  Result<CmpOp> ParseCmpOp() {
    // Longest-match first.
    if (ConsumeSymbol("<=")) return CmpOp::kLe;
    if (ConsumeSymbol(">=")) return CmpOp::kGe;
    if (ConsumeSymbol("==")) return CmpOp::kEq;
    if (ConsumeSymbol("!=")) return CmpOp::kNe;
    if (ConsumeSymbol("<")) return CmpOp::kLt;
    if (ConsumeSymbol(">")) return CmpOp::kGt;
    return Error("expected a comparison operator");
  }

  static CmpOp Flip(CmpOp op) {
    switch (op) {
      case CmpOp::kLt:
        return CmpOp::kGt;
      case CmpOp::kLe:
        return CmpOp::kGe;
      case CmpOp::kGt:
        return CmpOp::kLt;
      case CmpOp::kGe:
        return CmpOp::kLe;
      case CmpOp::kEq:
      case CmpOp::kNe:
        return op;
    }
    return op;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Condition> ParseCondition(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace procmine
