// FDL — a Flowmark-style process Definition Language.
//
// The paper's substrate, IBM FlowMark, shipped a textual definition
// language (FDL); this module provides the procmine equivalent so process
// definitions are file artifacts: the engine can simulate a definition
// written by hand, and a mined + condition-annotated model can be exported
// back out as a runnable definition (see mine/reconstruct.h).
//
// Syntax (one statement per declaration, '#' comments, whitespace-free
// names):
//
//   process Order_Fulfillment {
//     activity Start outputs 1 range [0, 99];
//     activity Ship;
//     join Ship and;                       # default join is `or`
//     edge Start -> Ship when o[0] >= 50;  # default condition is `true`
//   }
//
// `outputs K` declares K output parameters; `range [lo, hi]` applies to all
// of them (finer-grained per-parameter ranges can be set via the API).

#ifndef PROCMINE_WORKFLOW_FDL_H_
#define PROCMINE_WORKFLOW_FDL_H_

#include <string>

#include "util/result.h"
#include "workflow/process_definition.h"

namespace procmine {

/// Parses one FDL document. The result validates structurally (unique
/// source/sink etc.) unless `require_acyclic` relaxes the DAG check for
/// cyclic processes.
Result<ProcessDefinition> ParseFdl(const std::string& text,
                                   bool require_acyclic = true);

/// Serializes a definition to FDL. Output round-trips through ParseFdl
/// (per-parameter ranges collapse to their widest common range).
std::string ToFdl(const ProcessDefinition& definition,
                  const std::string& process_name = "process");

Result<ProcessDefinition> ReadFdlFile(const std::string& path,
                                      bool require_acyclic = true);
Status WriteFdlFile(const ProcessDefinition& definition,
                    const std::string& path,
                    const std::string& process_name = "process");

}  // namespace procmine

#endif  // PROCMINE_WORKFLOW_FDL_H_
