#include "workflow/process_definition.h"

#include "util/strings.h"

namespace procmine {

OutputSpec OutputSpec::Uniform(int k, int64_t lo, int64_t hi) {
  PROCMINE_CHECK_GE(k, 0);
  PROCMINE_CHECK_LE(lo, hi);
  OutputSpec spec;
  spec.ranges.assign(static_cast<size_t>(k), {lo, hi});
  return spec;
}

ProcessDefinition::ProcessDefinition(ProcessGraph graph)
    : graph_(std::move(graph)),
      output_specs_(static_cast<size_t>(graph_.num_activities())),
      joins_(static_cast<size_t>(graph_.num_activities()), JoinKind::kOr) {}

void ProcessDefinition::SetOutputSpec(NodeId v, OutputSpec spec) {
  PROCMINE_CHECK(v >= 0 && v < num_activities());
  output_specs_[static_cast<size_t>(v)] = std::move(spec);
}

const OutputSpec& ProcessDefinition::output_spec(NodeId v) const {
  PROCMINE_CHECK(v >= 0 && v < num_activities());
  return output_specs_[static_cast<size_t>(v)];
}

void ProcessDefinition::SetCondition(NodeId from, NodeId to,
                                     Condition condition) {
  PROCMINE_CHECK(graph().HasEdge(from, to));
  conditions_[PackEdge(from, to)] = std::move(condition);
}

const Condition& ProcessDefinition::condition(NodeId from, NodeId to) const {
  static const Condition kTrue = Condition::True();
  auto it = conditions_.find(PackEdge(from, to));
  return it == conditions_.end() ? kTrue : it->second;
}

void ProcessDefinition::SetJoin(NodeId v, JoinKind kind) {
  PROCMINE_CHECK(v >= 0 && v < num_activities());
  joins_[static_cast<size_t>(v)] = kind;
}

JoinKind ProcessDefinition::join(NodeId v) const {
  PROCMINE_CHECK(v >= 0 && v < num_activities());
  return joins_[static_cast<size_t>(v)];
}

Status ProcessDefinition::Validate(bool require_acyclic) const {
  PROCMINE_RETURN_NOT_OK(graph_.Validate(require_acyclic));
  for (const Edge& e : graph().Edges()) {
    Status st = condition(e.from, e.to)
                    .Validate(output_spec(e.from).num_params());
    if (!st.ok()) {
      return Status::InvalidArgument(StrFormat(
          "edge (%s, %s): %s", name(e.from).c_str(), name(e.to).c_str(),
          st.message().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace procmine
