// Order fulfillment: an end-to-end domain scenario.
//
// Models an e-commerce order process (the kind of business process the
// paper's introduction motivates), executes it to produce a realistic event
// log, then plays the "enterprise without a workflow system" role: mines the
// model back from the log alone, verifies recovery, and learns the routing
// conditions (credit-check threshold, stock threshold) from the logged
// activity outputs.
//
//   $ ./order_fulfillment

#include <iostream>

#include "log/stats.h"
#include "log/writer.h"
#include "mine/condition_miner.h"
#include "mine/metrics.h"
#include "mine/miner.h"
#include "workflow/engine.h"

using namespace procmine;

namespace {

ProcessDefinition MakeOrderProcess() {
  ProcessGraph graph = ProcessGraph::FromNamedEdges({
      {"Receive_Order", "Credit_Check"},
      {"Credit_Check", "Reject_Order"},
      {"Credit_Check", "Check_Stock"},
      {"Check_Stock", "Backorder"},
      {"Check_Stock", "Pick_Items"},
      {"Backorder", "Pick_Items"},
      {"Pick_Items", "Pack"},
      {"Pack", "Ship"},
      {"Reject_Order", "Close_Order"},
      {"Ship", "Close_Order"},
  });
  ProcessDefinition def(std::move(graph));
  const ProcessGraph& g = def.process_graph();

  auto id = [&](const char* name) { return *g.FindActivity(name); };

  // Credit_Check outputs a score 0..99: < 20 rejects the order.
  def.SetOutputSpec(id("Credit_Check"), OutputSpec::Uniform(1, 0, 99));
  def.SetCondition(id("Credit_Check"), id("Reject_Order"),
                   Condition::Compare(0, CmpOp::kLt, 20));
  def.SetCondition(id("Credit_Check"), id("Check_Stock"),
                   Condition::Compare(0, CmpOp::kGe, 20));

  // Check_Stock outputs available units 0..9: 0 means backorder first.
  def.SetOutputSpec(id("Check_Stock"), OutputSpec::Uniform(1, 0, 9));
  def.SetCondition(id("Check_Stock"), id("Backorder"),
                   Condition::Compare(0, CmpOp::kEq, 0));
  def.SetCondition(id("Check_Stock"), id("Pick_Items"),
                   Condition::Compare(0, CmpOp::kGt, 0));
  return def;
}

}  // namespace

int main() {
  ProcessDefinition def = MakeOrderProcess();
  PROCMINE_CHECK_OK(def.Validate());

  // 1. Run the business for a quarter: 500 orders.
  Engine engine(&def);
  Result<EventLog> log = engine.GenerateLog(500, /*seed=*/2024, "order");
  PROCMINE_CHECK_OK(log.status());
  LogStats stats = ComputeLogStats(*log);
  std::cout << "generated " << stats.num_executions << " orders, "
            << stats.total_instances << " activity instances, "
            << stats.serialized_bytes / 1024 << " KB of log\n";

  // 2. Mine the model back from the log alone.
  Result<ProcessGraph> mined = ProcessMiner().Mine(*log);
  PROCMINE_CHECK_OK(mined.status());
  GraphComparison cmp = CompareByName(def.process_graph(), *mined);
  std::cout << "recovery: " << cmp.common_edges << "/" << cmp.truth_edges
            << " true edges found, " << cmp.spurious_edges
            << " spurious (exact=" << (cmp.ExactMatch() ? "yes" : "no")
            << ")\n";

  // 3. Learn the routing conditions from the recorded outputs.
  Result<AnnotatedProcess> annotated =
      ConditionMiner().Mine(*mined, *log);
  PROCMINE_CHECK_OK(annotated.status());
  std::cout << "\nlearned edge conditions:\n";
  for (const MinedCondition& c : annotated->conditions) {
    if (!c.learned) continue;
    std::cout << "  " << annotated->graph.name(c.edge.from) << " -> "
              << annotated->graph.name(c.edge.to) << ": " << c.rule
              << "   (holdout accuracy "
              << static_cast<int>(c.test_accuracy * 100) << "%)\n";
  }

  std::cout << "\n" << annotated->ToDot("order_fulfillment");
  return cmp.ExactMatch() ? 0 : 2;
}
