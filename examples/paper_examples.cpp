// Reproduces every worked example of the paper (Examples 3-9, Figures 1-6)
// with printed traces, so the paper can be followed along interactively.
//
//   $ ./paper_examples

#include <iostream>

#include "mine/cyclic_miner.h"
#include "mine/general_dag_miner.h"
#include "mine/miner.h"
#include "mine/relations.h"
#include "mine/special_dag_miner.h"

using namespace procmine;

namespace {

void PrintGraph(const ProcessGraph& g, const std::string& title) {
  std::cout << "  " << title << ":";
  for (const Edge& e : g.graph().Edges()) {
    std::cout << " " << g.name(e.from) << "->" << g.name(e.to);
  }
  std::cout << "\n";
}

void Example3() {
  std::cout << "\nExample 3 (Definitions 3-4: following and dependence)\n";
  EventLog log = EventLog::FromCompactStrings({"ABCE", "ACDE", "ADBE"});
  Relations rel = Relations::Compute(log);
  ActivityId a = *log.dictionary().Find("A");
  ActivityId b = *log.dictionary().Find("B");
  ActivityId d = *log.dictionary().Find("D");
  std::cout << "  log {ABCE, ACDE, ADBE}\n";
  std::cout << "  B depends on A: " << (rel.DependsOn(b, a) ? "yes" : "no")
            << "   B,D independent: "
            << (rel.Independent(b, d) ? "yes" : "no") << "\n";
  EventLog ext = EventLog::FromCompactStrings({"ABCE", "ACDE", "ADBE",
                                               "ADCE"});
  Relations rel2 = Relations::Compute(ext);
  std::cout << "  after adding ADCE -> B depends on D: "
            << (rel2.DependsOn(*ext.dictionary().Find("B"),
                               *ext.dictionary().Find("D"))
                    ? "yes"
                    : "no")
            << "\n";
}

void Example6() {
  std::cout << "\nExample 6 (Algorithm 1 / Figure 3)\n";
  EventLog log = EventLog::FromCompactStrings({"ABCDE", "ACDBE", "ACBDE"});
  auto mined = SpecialDagMiner().Mine(log);
  std::cout << "  log {ABCDE, ACDBE, ACBDE}\n";
  PrintGraph(*mined, "minimal conformal graph (= Figure 1)");
}

void Example7() {
  std::cout << "\nExample 7 (Algorithm 2 / Figure 4)\n";
  EventLog log =
      EventLog::FromCompactStrings({"ABCF", "ACDF", "ADEF", "AECF"});
  auto mined = GeneralDagMiner().Mine(log);
  std::cout << "  log {ABCF, ACDF, ADEF, AECF}; SCC {C,D,E} dissolved\n";
  PrintGraph(*mined, "conformal graph");
}

void Example8() {
  std::cout << "\nExample 8 (Algorithm 3 / Figure 6)\n";
  EventLog log = EventLog::FromCompactStrings(
      {"ABDCE", "ABDCBCE", "ABCBDCE", "ADE"});
  std::vector<ActivityId> to_base;
  EventLog labeled = CyclicMiner::LabelOccurrences(log, &to_base);
  std::cout << "  log {ABDCE, ABDCBCE, ABCBDCE, ADE}; labeled alphabet:";
  for (const std::string& name : labeled.dictionary().names()) {
    std::cout << " " << name;
  }
  std::cout << "\n";
  auto mined = CyclicMiner().Mine(log);
  PrintGraph(*mined, "merged cyclic graph (B<->C cycle)");
}

void Example9() {
  std::cout << "\nExample 9 (Section 6: noise threshold)\n";
  const int m = 50, k = 3;
  std::vector<std::string> execs(m - k, "ABCDE");
  execs.insert(execs.end(), k, "ADCBE");
  EventLog log = EventLog::FromCompactStrings(execs);
  for (int64_t threshold : {1, k + 1}) {
    MinerOptions options;
    options.algorithm = MinerAlgorithm::kSpecialDag;
    options.noise_threshold = threshold;
    auto mined = ProcessMiner(options).Mine(log);
    PrintGraph(*mined, "T=" + std::to_string(threshold));
  }
}

}  // namespace

int main() {
  std::cout << "procmine: the paper's worked examples\n";
  Example3();
  Example6();
  Example7();
  Example8();
  Example9();
  return 0;
}
