// Noise robustness: Section 6 hands-on.
//
// Corrupts a clean log with out-of-order reporting at rate epsilon, then
// shows how the mined graph degrades without a threshold and recovers with
// the analytically optimal threshold T* = m / (1 + log2(1/epsilon)).
//
//   $ ./noise_robustness

#include <iostream>

#include "mine/metrics.h"
#include "mine/miner.h"
#include "mine/noise.h"
#include "synth/log_generator.h"
#include "synth/noise_injector.h"
#include "synth/random_dag.h"

using namespace procmine;

int main() {
  // Ground truth: a 12-activity random process.
  RandomDagOptions dag_options;
  dag_options.num_activities = 12;
  dag_options.edge_density = 0.25;
  dag_options.seed = 99;
  ProcessGraph truth = GenerateRandomDag(dag_options);
  std::cout << "truth: " << truth.num_activities() << " activities, "
            << truth.graph().num_edges() << " edges\n";

  const size_t m = 400;
  Result<EventLog> clean = GenerateLinearExtensionLog(truth, m, 5);
  PROCMINE_CHECK_OK(clean.status());

  std::cout << "\n eps   | T used | edges | missing | spurious | exact\n";
  std::cout << " ------+--------+-------+---------+----------+------\n";
  for (double epsilon : {0.0, 0.01, 0.05, 0.10}) {
    EventLog log = *clean;
    if (epsilon > 0) {
      NoiseOptions noise;
      noise.swap_rate = epsilon;
      noise.seed = 1234;
      log = InjectNoise(*clean, noise);
    }
    for (bool use_threshold : {false, true}) {
      int64_t threshold = 1;
      if (use_threshold && epsilon > 0) {
        threshold = OptimalNoiseThreshold(static_cast<int64_t>(m), epsilon);
      } else if (use_threshold) {
        continue;  // nothing to tune on a clean log
      }
      MinerOptions options;
      options.algorithm = MinerAlgorithm::kSpecialDag;
      options.noise_threshold = threshold;
      Result<ProcessGraph> mined = ProcessMiner(options).Mine(log);
      if (!mined.ok()) {
        std::cout << "  " << epsilon << "  | mining failed: "
                  << mined.status().ToString() << "\n";
        continue;
      }
      GraphComparison cmp = CompareClosuresByName(truth, *mined);
      std::printf(" %.2f  | %6lld | %5lld | %7lld | %8lld | %s\n", epsilon,
                  static_cast<long long>(threshold),
                  static_cast<long long>(mined->graph().num_edges()),
                  static_cast<long long>(cmp.missing_edges),
                  static_cast<long long>(cmp.spurious_edges),
                  cmp.ExactMatch() ? "yes" : "no");
    }
  }

  std::cout << "\nThe unthresholded miner dissolves dependencies that the "
               "noise reversed;\nthe Section 6 threshold restores them.\n";
  return 0;
}
