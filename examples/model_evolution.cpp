// Model evolution: the Section 1 deployment narrative, end to end.
//
// An enterprise has a DESIGNED process. Practice drifts: a new expedited
// path appears and one designed step stops being used. Executions stream in;
// the incremental miner keeps the mined model current, and the model diff
// reports how practice deviates from the design — the paper's "evaluation of
// the workflow system by comparing the synthesized process graphs with
// purported graphs" and "evolution of the current process model".
//
//   $ ./model_evolution

#include <iostream>

#include "mine/incremental.h"
#include "mine/model_diff.h"
#include "workflow/engine.h"

using namespace procmine;

namespace {

ProcessGraph DesignedModel() {
  return ProcessGraph::FromNamedEdges({
      {"Receive", "Validate"},
      {"Validate", "Approve"},
      {"Approve", "Fulfill"},
      {"Fulfill", "Archive"},
      {"Archive", "Close"},
  });
}

/// What actually happens on the floor: an expedited path skips Approve,
/// and nobody archives anymore.
ProcessDefinition ActualPractice() {
  ProcessGraph graph = ProcessGraph::FromNamedEdges({
      {"Receive", "Validate"},
      {"Validate", "Approve"},
      {"Validate", "Expedite"},   // undocumented shortcut
      {"Approve", "Fulfill"},
      {"Expedite", "Fulfill"},
      {"Fulfill", "Close"},       // Archive skipped entirely
  });
  ProcessDefinition def(std::move(graph));
  const ProcessGraph& g = def.process_graph();
  NodeId validate = *g.FindActivity("Validate");
  def.SetOutputSpec(validate, OutputSpec::Uniform(1, 0, 99));
  def.SetCondition(validate, *g.FindActivity("Approve"),
                   Condition::Compare(0, CmpOp::kLt, 70));
  def.SetCondition(validate, *g.FindActivity("Expedite"),
                   Condition::Compare(0, CmpOp::kGe, 70));
  return def;
}

}  // namespace

int main() {
  ProcessGraph designed = DesignedModel();
  ProcessDefinition practice = ActualPractice();
  PROCMINE_CHECK_OK(practice.Validate());
  Engine engine(&practice);

  IncrementalMiner miner;
  std::cout << "executions | mined edges | discrepancies vs design\n";
  uint64_t seed = 1;
  for (size_t batch : {10u, 40u, 150u, 400u}) {
    Result<EventLog> log = engine.GenerateLog(batch, seed++, "case");
    PROCMINE_CHECK_OK(log.status());
    PROCMINE_CHECK_OK(miner.AddLog(*log));

    Result<ProcessGraph> mined = miner.CurrentGraph();
    PROCMINE_CHECK_OK(mined.status());
    ModelDiff diff = DiffModels(designed, *mined);
    std::cout << "  " << miner.num_executions() << "\t    | "
              << mined->graph().num_edges() << "\t  | "
              << diff.discrepancies.size() << "\n";
  }

  Result<ProcessGraph> final_model = miner.CurrentGraph();
  PROCMINE_CHECK_OK(final_model.status());
  ModelDiff diff = DiffModels(designed, *final_model);
  std::cout << "\nfinal audit of practice against the designed model:\n"
            << diff.Summary();

  std::cout << "\nmined model:\n" << final_model->ToDot("practice");
  return diff.structurally_equal() ? 1 : 0;  // drift EXPECTED here
}
