// Insurance claim handling: a CYCLIC process (Section 5 / Algorithm 3).
//
// A claim is assessed, and incomplete claims loop back through a
// request-more-documents / resubmit cycle until the assessor can decide.
// The log therefore contains repeated activities; mining goes through the
// instance-labeling cyclic miner and must expose the loop.
//
//   $ ./insurance_claim

#include <iostream>
#include <map>

#include "graph/algorithms.h"
#include "mine/metrics.h"
#include "mine/miner.h"
#include "workflow/engine.h"

using namespace procmine;

namespace {

ProcessDefinition MakeClaimProcess() {
  ProcessGraph graph = ProcessGraph::FromNamedEdges({
      {"File_Claim", "Assess"},
      {"Assess", "Request_Documents"},   // incomplete: loop entry
      {"Request_Documents", "Resubmit"},
      {"Resubmit", "Assess"},            // loop back
      {"Assess", "Approve"},
      {"Assess", "Deny"},
      {"Approve", "Close"},
      {"Deny", "Close"},
  });
  ProcessDefinition def(std::move(graph));
  const ProcessGraph& g = def.process_graph();
  auto id = [&](const char* name) { return *g.FindActivity(name); };

  // Assess outputs completeness 0..9 and merit 0..9.
  def.SetOutputSpec(id("Assess"), OutputSpec::Uniform(2, 0, 9));
  // Incomplete (completeness <= 2): request documents and loop.
  def.SetCondition(id("Assess"), id("Request_Documents"),
                   Condition::Compare(0, CmpOp::kLe, 2));
  // Complete and meritorious: approve; complete and weak: deny.
  def.SetCondition(
      id("Assess"), id("Approve"),
      Condition::And(Condition::Compare(0, CmpOp::kGt, 2),
                     Condition::Compare(1, CmpOp::kGe, 5)));
  def.SetCondition(
      id("Assess"), id("Deny"),
      Condition::And(Condition::Compare(0, CmpOp::kGt, 2),
                     Condition::Compare(1, CmpOp::kLt, 5)));
  return def;
}

}  // namespace

int main() {
  ProcessDefinition def = MakeClaimProcess();
  PROCMINE_CHECK_OK(def.Validate(/*require_acyclic=*/false));

  EngineOptions engine_options;
  engine_options.mode = ExecutionMode::kTokenFire;  // cyclic interpreter
  Engine engine(&def, engine_options);
  Result<EventLog> log = engine.GenerateLog(400, /*seed=*/7, "claim");
  PROCMINE_CHECK_OK(log.status());

  // How many times did claims loop?
  std::map<int64_t, int64_t> loop_histogram;
  ActivityId assess = *def.process_graph().FindActivity("Assess");
  for (const Execution& exec : log->executions()) {
    ++loop_histogram[exec.CountOf(assess)];
  }
  std::cout << "assessments per claim (loop iterations):\n";
  for (const auto& [count, claims] : loop_histogram) {
    std::cout << "  " << count << "x assess: " << claims << " claims\n";
  }

  // Mine: auto-selection must notice the repeats and use Algorithm 3.
  std::cout << "\nselected algorithm: "
            << (ProcessMiner::SelectAlgorithm(*log) == MinerAlgorithm::kCyclic
                    ? "cyclic (Algorithm 3)"
                    : "acyclic")
            << "\n";
  Result<ProcessGraph> mined = ProcessMiner().Mine(*log);
  PROCMINE_CHECK_OK(mined.status());

  GraphComparison cmp = CompareByName(def.process_graph(), *mined);
  std::cout << "recovery: " << cmp.common_edges << "/" << cmp.truth_edges
            << " true edges, " << cmp.spurious_edges << " spurious\n";
  std::cout << "mined graph has a cycle: "
            << (HasCycle(mined->graph()) ? "yes" : "no") << "\n";
  std::cout << "\n" << mined->ToDot("insurance_claim");
  return HasCycle(mined->graph()) ? 0 : 2;
}
