// Quickstart: mine a process model from a workflow log in ~20 lines.
//
// Reads a log (from a file given as argv[1], or a built-in sample), mines
// the process model graph with the automatic algorithm selection, checks
// conformance, and prints the model as DOT.
//
//   $ ./quickstart [log_file]

#include <cstdio>
#include <iostream>

#include "log/reader.h"
#include "mine/conformance.h"
#include "mine/miner.h"

using namespace procmine;

namespace {

constexpr char kSampleLog[] = R"(
# Three executions of a five-activity process (the paper's Example 6).
case1 A START 0
case1 A END 0
case1 B START 1
case1 B END 1
case1 C START 2
case1 C END 2
case1 D START 3
case1 D END 3
case1 E START 4
case1 E END 4
case2 A START 0
case2 A END 0
case2 C START 1
case2 C END 1
case2 D START 2
case2 D END 2
case2 B START 3
case2 B END 3
case2 E START 4
case2 E END 4
case3 A START 0
case3 A END 0
case3 C START 1
case3 C END 1
case3 B START 2
case3 B END 2
case3 D START 3
case3 D END 3
case3 E START 4
case3 E END 4
)";

}  // namespace

int main(int argc, char** argv) {
  // 1. Load the log.
  Result<EventLog> log = argc > 1 ? LogReader::ReadFile(argv[1])
                                  : LogReader::ReadString(kSampleLog);
  if (!log.ok()) {
    std::cerr << "failed to read log: " << log.status().ToString() << "\n";
    return 1;
  }
  std::cout << "log: " << log->num_executions() << " executions, "
            << log->num_activities() << " activities\n";

  // 2. Mine the process model (algorithm picked from the log's shape).
  ProcessMiner miner;
  Result<ProcessGraph> model = miner.Mine(*log);
  if (!model.ok()) {
    std::cerr << "mining failed: " << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "mined " << model->graph().num_edges() << " edges over "
            << model->num_activities() << " activities\n";

  // 3. Verify the model is conformal with the log (Definition 7).
  ConformanceChecker checker(&*model);
  ConformanceReport report = checker.CheckLog(*log);
  std::cout << report.Summary(log->dictionary());

  // 4. Emit the model as Graphviz DOT.
  std::cout << "\n" << model->ToDot("mined_process");
  return report.conformal() ? 0 : 2;
}
