#!/bin/sh
# Fault smoke gate: drives the real CLI under injected faults
# (PROCMINE_FAILPOINTS), hostile input, and exhausted budgets, asserting
# the documented exit-code taxonomy and that no torn or partial artifact
# is ever left behind:
#   0 ok, 1 analysis mismatch, 2 usage, 3 data error, 4 budget-degraded,
#   5 internal, 134 injected crash.
#
# Registered as the `fault_smoke` ctest (tests/CMakeLists.txt) with the
# built CLI and examples/logs/order_fulfillment.log. Standalone usage:
#   scripts/fault-smoke.sh <procmine-binary> <log>

set -eu

PROCMINE="${1:?usage: fault-smoke.sh <procmine-binary> <log>}"
LOG="${2:?usage: fault-smoke.sh <procmine-binary> <log>}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# expect_exit <want> <description> <cmd...>: run the command, capture its
# output, and require the exact exit code.
expect_exit() {
  want="$1"; what="$2"; shift 2
  set +e
  "$@" > "$TMP/out.txt" 2>&1
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    cat "$TMP/out.txt" >&2
    fail "$what: exit $got, want $want"
  fi
}

# A hostile log: clean executions interleaved with malformed lines and
# executions that cannot pair.
HOSTILE="$TMP/hostile.log"
i=0
while [ "$i" -lt 16 ]; do
  {
    echo "g$i A START $i"
    echo "g$i A END $((i + 1))"
    echo "g$i B START $((i + 2))"
    echo "g$i B END $((i + 4)) 7"
    echo "garbage line $i"
    echo "lost$i C END 9"
  } >> "$HOSTILE"
  i=$((i + 1))
done

# --- exit-code taxonomy ----------------------------------------------------
expect_exit 0 "clean mine" "$PROCMINE" mine "$LOG"
expect_exit 2 "missing command is a usage error" "$PROCMINE"
expect_exit 3 "nonexistent input is a data error" \
  "$PROCMINE" mine "$TMP/no-such-file.log"
expect_exit 3 "bad --recovery value is a data error" \
  "$PROCMINE" mine --recovery=lenient "$LOG"
expect_exit 3 "strict mining of a hostile log is a data error" \
  "$PROCMINE" mine "$HOSTILE"

# --- recovery-mode ingestion ----------------------------------------------
expect_exit 0 "quarantine mining of a hostile log succeeds" \
  "$PROCMINE" mine --recovery=quarantine --quarantine-out="$TMP/q1.txt" \
  --threads=1 --dot="$TMP/m1.dot" "$HOSTILE"
grep -q "skipped" "$TMP/out.txt" || fail "no skip summary on stderr"
expect_exit 0 "quarantine mining with 4 threads succeeds" \
  "$PROCMINE" mine --recovery=quarantine --quarantine-out="$TMP/q4.txt" \
  --threads=4 --dot="$TMP/m4.dot" "$HOSTILE"
head -n 1 "$TMP/q1.txt" | grep -q "procmine quarantine" \
  || fail "quarantine sidecar has no versioned header"
cmp "$TMP/q1.txt" "$TMP/q4.txt" \
  || fail "quarantine bytes differ between --threads=1 and --threads=4"
cmp "$TMP/m1.dot" "$TMP/m4.dot" \
  || fail "model bytes differ between --threads=1 and --threads=4"

# --- budget degradation ----------------------------------------------------
expect_exit 4 "zero deadline degrades the report" \
  "$PROCMINE" report --deadline-ms=0 --out="$TMP/degraded.json" "$LOG"
grep -q "DEGRADED" "$TMP/out.txt" || fail "degraded run not announced"
grep -q '"degraded": true' "$TMP/degraded.json" \
  || fail "degraded report JSON does not say so"
grep -q '"cut_phase"' "$TMP/degraded.json" \
  || fail "degraded report JSON names no cut phase"
expect_exit 4 "tiny execution cap degrades mining" \
  "$PROCMINE" mine --max-executions=5 "$LOG"

# --- injected faults -------------------------------------------------------
expect_exit 3 "injected report-write error is a data error" \
  env PROCMINE_FAILPOINTS="report.write=error" \
  "$PROCMINE" report --out="$TMP/faulted.json" "$LOG"
[ ! -e "$TMP/faulted.json" ] || fail "faulted report left a file behind"

expect_exit 3 "injected rename error is a data error" \
  env PROCMINE_FAILPOINTS="atomic_write.rename=error" \
  "$PROCMINE" report --out="$TMP/renamed.json" "$LOG"
[ ! -e "$TMP/renamed.json" ] || fail "failed rename left the target"
[ ! -e "$TMP/renamed.json.tmp" ] || fail "failed rename leaked a temp file"

expect_exit 134 "injected crash aborts before the rename commits" \
  env PROCMINE_FAILPOINTS="atomic_write.rename=crash" \
  "$PROCMINE" report --out="$TMP/crashed.json" "$LOG"
[ ! -e "$TMP/crashed.json" ] || fail "crashed run left a torn report"

# Short writes and EINTR must be absorbed, not surfaced.
expect_exit 0 "short-write injection still produces the full artifact" \
  env PROCMINE_FAILPOINTS="atomic_write.write=short:7" \
  "$PROCMINE" report --out="$TMP/short.json" "$LOG"
expect_exit 0 "clean reference report" \
  "$PROCMINE" report --out="$TMP/ref.json" "$LOG"
cmp "$TMP/short.json" "$TMP/ref.json" \
  || fail "short-write artifact differs from the clean one"

echo "fault smoke OK"
