#!/bin/sh
# Drift smoke gate: generates a condition-flip scenario, runs the monitor,
# and validates the whole observable surface:
#   * the drift report parses and its invariants hold (window arithmetic,
#     alert/window cross-references, schema_version 3),
#   * the alert feed is valid JSONL naming the injected flip with a witness,
#   * alerts, report, and registry bytes are identical for --threads=1,
#     --threads=4, and --stream,
#   * the registry round-trips: every version parses, versions are
#     contiguous, and the parent-hash chain links each file to its parent,
#   * an injected crash mid-publish leaves no torn version file, and a rerun
#     over the surviving directory resumes after the durable prefix,
#   * a drift-free noisy control at the Section 6 epsilon raises no alerts.
#
# Registered as the `drift_smoke` ctest (tests/CMakeLists.txt). Standalone:
#   scripts/drift-smoke.sh <procmine-binary>

set -eu

PROCMINE="${1:?usage: drift-smoke.sh <procmine-binary>}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$PROCMINE" synth --drift=condition_flipped --executions=400 --cut=200 \
  --seed=11 --out="$TMP/flip.log" > /dev/null

run_monitor() {
  # run_monitor <tag> [extra flags...]; exit 1 (drift found) is the
  # expected verdict, anything else is a failure.
  tag="$1"; shift
  mkdir -p "$TMP/$tag"
  rc=0
  "$PROCMINE" monitor "$TMP/flip.log" --window-executions=100 \
    --registry-dir="$TMP/$tag/reg" --alerts-out="$TMP/$tag/alerts.jsonl" \
    --report-out="$TMP/$tag/report.json" "$@" 2> /dev/null || rc=$?
  [ "$rc" -eq 1 ] || {
    echo "FAIL: monitor ($tag) exited $rc, want 1 (drift detected)" >&2
    exit 1
  }
}

run_monitor t1 --threads=1
run_monitor t4 --threads=4
run_monitor stream --stream

cmp "$TMP/t1/alerts.jsonl" "$TMP/t4/alerts.jsonl" || {
  echo "FAIL: alert feed differs between --threads=1 and --threads=4" >&2
  exit 1
}
cmp "$TMP/t1/alerts.jsonl" "$TMP/stream/alerts.jsonl" || {
  echo "FAIL: alert feed differs between batch and --stream" >&2
  exit 1
}
for v in 1 2 3 4; do
  cmp "$TMP/t1/reg/v00000$v.json" "$TMP/t4/reg/v00000$v.json" || {
    echo "FAIL: registry v$v differs between thread counts" >&2
    exit 1
  }
  cmp "$TMP/t1/reg/v00000$v.json" "$TMP/stream/reg/v00000$v.json" || {
    echo "FAIL: registry v$v differs between batch and --stream" >&2
    exit 1
  }
done

# Injected crash on the third snapshot publish: versions 1-2 stay durable,
# no torn v3, and a rerun resumes from the recovered registry.
rc=0
env PROCMINE_FAILPOINTS='atomic_write.rename=crash@4' \
  "$PROCMINE" monitor "$TMP/flip.log" --window-executions=100 \
  --registry-dir="$TMP/crash/reg" > /dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] && [ "$rc" -ne 1 ] || {
  echo "FAIL: crash-injected monitor exited $rc, want a crash exit" >&2
  exit 1
}
[ ! -f "$TMP/crash/reg/v000003.json" ] || {
  echo "FAIL: torn registry version survived the injected crash" >&2
  exit 1
}
rc=0
"$PROCMINE" monitor "$TMP/flip.log" --window-executions=100 \
  --registry-dir="$TMP/crash/reg" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || {
  echo "FAIL: rerun over crashed registry exited $rc, want 1" >&2
  exit 1
}

# Drift-free noisy control: swap noise at the monitor's epsilon, no change
# injected -> the Section 6 gates must keep the feed empty (exit 0).
"$PROCMINE" synth --drift=none --executions=600 --swap-rate=0.05 --seed=12 \
  --out="$TMP/quiet.log" > /dev/null
"$PROCMINE" monitor "$TMP/quiet.log" --window-executions=100 \
  --epsilon=0.05 --alerts-out="$TMP/quiet.jsonl" > /dev/null 2>&1 || {
  echo "FAIL: drift-free noisy control raised alerts (exit $?)" >&2
  exit 1
}
[ ! -s "$TMP/quiet.jsonl" ] || {
  echo "FAIL: drift-free noisy control wrote a non-empty alert feed" >&2
  exit 1
}

python3 - "$TMP/t1" "$TMP/crash/reg" <<'PYEOF'
import json
import os
import sys

out_dir, crashed_reg = sys.argv[1], sys.argv[2]


def crc32c(data):
    # Reflected CRC-32C (Castagnoli), matching src/util/crc32c.cc. zlib's
    # crc32 uses the IEEE polynomial and would not match.
    crc = 0xFFFFFFFF
    for b in data:
        crc ^= b
        for _ in range(8):
            crc = (crc >> 1) ^ (0x82F63B78 if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF

# --- drift report invariants ---
with open(os.path.join(out_dir, "report.json")) as f:
    report = json.load(f)
assert report["schema_version"] == 3, report["schema_version"]
assert report["report"] == "drift"
assert report["drift_detected"] is True
assert report["num_alerts"] == len(report["alerts"]) >= 1
assert report["num_windows"] == len(report["windows"]) == 4

W = report["monitor"]["window_executions"]
for i, w in enumerate(report["windows"]):
    assert w["index"] == i, w
    assert w["num_executions"] == w["last_execution"] - w["first_execution"] + 1
    assert w["num_executions"] <= W, w
    assert 0 < w["support_low"] < w["support_high"] <= W, w
    assert w["noise_threshold"] >= 1, w
    assert w["registry_version"] == i + 1, w
per_window = [w["num_alerts"] for w in report["windows"]]

# --- alert feed: valid JSONL, cross-consistent with the report ---
with open(os.path.join(out_dir, "alerts.jsonl")) as f:
    alerts = [json.loads(line) for line in f if line.strip()]
assert len(alerts) == report["num_alerts"]
kinds = {"edge_appeared", "edge_vanished", "direction_flipped",
         "support_surge", "support_collapse"}
for a in alerts:
    assert a["alert"] in kinds, a
    assert a["window_first"] <= a["witness_execution"] <= a["window_last"] \
        or a["witness_execution"] == -1, a
    per_window[a["window"]] -= 1
assert all(n == 0 for n in per_window), "per-window alert counts mismatch"
flip = [a for a in alerts if a["alert"] == "direction_flipped"]
assert flip and flip[0]["witness_name"] == "drift_000200", flip

# --- registry round-trip: contiguous versions, linked parent hashes ---
def check_registry(reg_dir, expect_latest):
    parent = "none"
    for v in range(1, expect_latest + 1):
        path = os.path.join(reg_dir, f"v{v:06d}.json")
        raw = open(path, "rb").read()
        snap = json.loads(raw)
        assert snap["snapshot_schema"] == 1, path
        assert snap["version"] == v, path
        assert snap["parent_hash"] == parent, (
            f"{path}: parent hash chain broken")
        assert snap["activities"] == sorted(snap["activities"]), path
        names = set(snap["activities"])
        for e in snap["edges"]:
            assert e["from"] in names and e["to"] in names, e
            assert e["support"] >= snap["noise_threshold"], e
        parent = f"{crc32c(raw):08x}"
    current = open(os.path.join(reg_dir, "CURRENT")).read().split()
    assert current == [str(expect_latest), parent], current
    assert not os.path.exists(
        os.path.join(reg_dir, f"v{expect_latest + 1:06d}.json"))

check_registry(os.path.join(out_dir, "reg"), 4)
check_registry(crashed_reg, 6)  # 2 recovered + 4 republished by the rerun

print(f"drift smoke OK: {len(alerts)} alerts, 4 windows, "
      f"registry chains verified")
PYEOF
