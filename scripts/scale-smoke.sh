#!/bin/sh
# Out-of-core scale smoke gate. Two halves:
#
#  1. Runs the bench_scale harness (quick mode) and validates
#     BENCH_scale.json with python3: overall pass, peak RSS within the
#     memory budget for every size, and out-of-core/in-memory identity on
#     every size that was cross-checked.
#
#  2. Drives the real CLI end to end:
#       * synth --stream-out produces a store whose mined model is
#         byte-identical to mining the same synth flags via --out,
#         at --threads=1 and --threads=4 and two --segment-events sizes;
#       * mine --spill-dir on the text log matches the direct mine;
#       * mine --max-memory-mb on a store exits 0 (no degradation) and
#         reports the store footprint;
#       * a torn segment file fails closed under the default strict
#         policy (exit 3) and mines the salvaged prefix with a loss
#         summary under --recovery=skip;
#       * stats on a store reports the footprint without decoding it.
#
# Registered as the `scale_smoke` ctest (tests/CMakeLists.txt). Standalone:
#   scripts/scale-smoke.sh <procmine-binary> <bench_scale-binary>

set -eu

PROCMINE="${1:?usage: scale-smoke.sh <procmine-binary> <bench_scale-binary>}"
BENCH_SCALE="${2:?usage: scale-smoke.sh <procmine-binary> <bench_scale-binary>}"

# The bench runs with the scratch dir as cwd (it writes BENCH_scale.json
# there), so both binaries must be absolute.
PROCMINE="$(cd "$(dirname "$PROCMINE")" && pwd)/$(basename "$PROCMINE")"
BENCH_SCALE="$(cd "$(dirname "$BENCH_SCALE")" && pwd)/$(basename "$BENCH_SCALE")"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- 1. bench harness + JSON invariants ---------------------------------

(cd "$TMP" && PROCMINE_BENCH_QUICK=1 "$BENCH_SCALE" > bench_scale.out) || {
  echo "FAIL: bench_scale exited non-zero" >&2
  cat "$TMP/bench_scale.out" >&2
  exit 1
}

python3 - "$TMP/BENCH_scale.json" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["pass"] is True, "harness reported failure"
assert doc["sizes"], "no sizes recorded"
for size in doc["sizes"]:
    events = size["events"]
    assert events >= size["target_events"], (
        f"{events} events generated, wanted >= {size['target_events']}")
    assert size["rss_within_budget"] is True, f"RSS bar missed at {events}"
    assert size["peak_rss_mb"] <= size["budget_mb"], (
        f"peak {size['peak_rss_mb']} MiB > budget {size['budget_mb']} MiB")
    assert size["segments"] > 1, f"only {size['segments']} segment at {events}"
    assert size["identity_checked"] is True, f"identity not checked at {events}"
    assert size["identical"] is True, f"model diverged at {events}"
    assert size["edges"] > 0, f"empty model at {events}"
    assert size["events_per_sec"] > 0
print("BENCH_scale.json invariants hold "
      f"({len(doc['sizes'])} sizes, budget {doc['budget_mb']} MiB)")
PYEOF

# --- 2. CLI end-to-end --------------------------------------------------

SYNTH_FLAGS="--activities=10 --executions=400 --seed=21"

"$PROCMINE" synth $SYNTH_FLAGS --out="$TMP/ref.log" > /dev/null
"$PROCMINE" mine "$TMP/ref.log" --dot="$TMP/ref.dot" > /dev/null 2>&1

for seg in 128 4096; do
  for threads in 1 4; do
    tag="s${seg}t${threads}"
    "$PROCMINE" synth $SYNTH_FLAGS --segment-events="$seg" \
      --stream-out="$TMP/store_$tag" > /dev/null 2>&1
    "$PROCMINE" mine "$TMP/store_$tag" --threads="$threads" \
      --dot="$TMP/$tag.dot" > /dev/null 2>&1 || {
      echo "FAIL: mine store ($tag) exited $?" >&2
      exit 1
    }
    cmp "$TMP/ref.dot" "$TMP/$tag.dot" || {
      echo "FAIL: store model ($tag) differs from the in-memory mine" >&2
      exit 1
    }
  done
done

"$PROCMINE" mine "$TMP/ref.log" --spill-dir="$TMP/spill" \
  --dot="$TMP/spill.dot" > /dev/null 2>&1 || {
  echo "FAIL: mine --spill-dir exited $?" >&2
  exit 1
}
cmp "$TMP/ref.dot" "$TMP/spill.dot" || {
  echo "FAIL: --spill-dir model differs from the direct mine" >&2
  exit 1
}

# A bounded mine over a store: exit 0 (complete model, no degradation) and
# the footprint lines on stderr.
"$PROCMINE" mine "$TMP/store_s128t1" --max-memory-mb=256 \
  --dot="$TMP/budget.dot" 2> "$TMP/budget.err" > /dev/null || {
  echo "FAIL: budgeted store mine exited $? (degraded or failed)" >&2
  cat "$TMP/budget.err" >&2
  exit 1
}
cmp "$TMP/ref.dot" "$TMP/budget.dot" || {
  echo "FAIL: budgeted store mine changed the model" >&2
  exit 1
}
grep -q "mined out of core" "$TMP/budget.err" || {
  echo "FAIL: budgeted store mine did not report out-of-core stats" >&2
  exit 1
}
grep -q "^cache: " "$TMP/budget.err" || {
  echo "FAIL: budgeted store mine did not report the cache footprint" >&2
  exit 1
}

# stats reads the manifest only.
"$PROCMINE" stats "$TMP/store_s128t1" > "$TMP/stats.out"
grep -q "segment store" "$TMP/stats.out" || {
  echo "FAIL: stats did not recognize the store" >&2
  exit 1
}
grep -q "on-disk bytes:" "$TMP/stats.out" || {
  echo "FAIL: stats is missing the footprint" >&2
  exit 1
}

# --- torn-segment recovery ---------------------------------------------

# Tear the final segment file in half. Strict mining must fail closed
# (exit 3, data error); --recovery=skip must mine the salvaged prefix and
# say what was lost.
VICTIM="$(ls "$TMP/store_s128t1"/*.seg | sort | tail -1)"
SIZE="$(wc -c < "$VICTIM")"
HALF=$((SIZE / 2))
head -c "$HALF" "$VICTIM" > "$VICTIM.torn" && mv "$VICTIM.torn" "$VICTIM"

rc=0
"$PROCMINE" mine "$TMP/store_s128t1" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || {
  echo "FAIL: strict mine of a torn store exited $rc, want 3" >&2
  exit 1
}

rc=0
"$PROCMINE" mine "$TMP/store_s128t1" --recovery=skip \
  > /dev/null 2> "$TMP/salvage.err" || rc=$?
[ "$rc" -eq 0 ] || {
  echo "FAIL: --recovery=skip mine of a torn store exited $rc" >&2
  cat "$TMP/salvage.err" >&2
  exit 1
}
grep -qi "dropped" "$TMP/salvage.err" || {
  echo "FAIL: salvage mine did not summarize the loss" >&2
  cat "$TMP/salvage.err" >&2
  exit 1
}

echo "scale-smoke: all gates passed"
