#!/bin/sh
# Builds the out-of-core suites under AddressSanitizer + UBSan and runs
# them: the segment store codec (varint/zigzag decode over torn and
# corrupted inputs is exactly where an out-of-bounds read would hide),
# the spill/evict path (LRU cache frees decoded windows while shared_ptr
# handles may still be live), the windowed out-of-core miner, the
# recovery/salvage machinery it reuses, the telemetry sampler's
# /proc parsing + ring/serialization paths, and the streaming server's
# wire/journal decoders (length-prefixed frames and crc-framed journal
# records parsed from hostile or torn byte streams). Run whenever
# src/log/segment_store, src/mine/ooc_miner, src/obs/telemetry,
# src/serve/, or the binary-log salvage path changes.
#
# Usage: scripts/asan-verify.sh [build-dir]   (default: build-asan)

set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROCMINE_SANITIZE=address \
  -DPROCMINE_BUILD_BENCHMARKS=OFF \
  -DPROCMINE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j \
  --target segment_store_test binary_log_test recovery_test \
           format_fuzz_test budget_test telemetry_test serve_test

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'SegmentStore|SegmentCodec|OocIdentity|BinaryLog|RecoveryMatrix|BinarySalvage|StreamingRecovery|RecoveryPolicy|FormatFuzz|RunBudget|Telemetry|Serve'
