#!/bin/sh
# Continuous-telemetry smoke gate. Drives the real CLI with the telemetry
# flags and validates the artifacts with python3:
#
#  1. A spill-dir mine with all three artifacts at a fast interval:
#       * the JSONL time-series parses line by line, is schema-versioned,
#         has strictly increasing seq, and every cumulative counter is
#         monotonically non-decreasing across samples;
#       * the OpenMetrics exposition parses (TYPE lines, sample lines,
#         terminating # EOF) and carries the mining + process metrics;
#       * the status file parses, its heartbeat is fresh, and its progress
#         section saw the run (executions read, windows visited,
#         segment-cache loads).
#  2. The mined model is byte-identical with and without telemetry.
#  3. A degraded run (--deadline-ms=0, exit 4) still seals all artifacts,
#     and the status file names the exhausted resource.
#  4. Kill-mid-run: a long mine with a status file is SIGKILLed while
#     sampling; whatever survives on disk must still be a complete,
#     parseable JSON document (atomic rewrites never leave a torn file).
#  5. `procmine top` renders the status file (exit 0/1), and exits 3 on
#     garbage.
#
# Registered as the `telemetry_smoke` ctest (bench/CMakeLists.txt).
# Standalone:  scripts/telemetry-smoke.sh <procmine-binary>

set -eu

PROCMINE="${1:?usage: telemetry-smoke.sh <procmine-binary>}"
PROCMINE="$(cd "$(dirname "$PROCMINE")" && pwd)/$(basename "$PROCMINE")"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

echo "== synth workload"
"$PROCMINE" synth --activities=12 --executions=4000 --seed=11 --out=demo.log

echo "== 1. spill mine with all telemetry artifacts"
"$PROCMINE" mine demo.log --spill-dir=store --segment-events=512 \
  --telemetry-out=tel.jsonl --metrics-openmetrics=metrics.om \
  --status-file=status.json --telemetry-interval-ms=20 \
  > model_with.txt

python3 - <<'PYEOF'
import json
import time

# --- JSONL: per-line parse, seq strictly increasing, counters monotonic.
samples = []
with open("tel.jsonl") as f:
    for i, line in enumerate(f):
        try:
            samples.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise SystemExit(f"FAIL: tel.jsonl line {i} unparseable: {e}")
assert len(samples) >= 2, f"only {len(samples)} samples"
prev_seq = -1
prev_counters = {}
for s in samples:
    assert s["schema_version"] == 1, s["schema_version"]
    assert s["seq"] > prev_seq, "seq not strictly increasing"
    prev_seq = s["seq"]
    assert s["process"]["rss_bytes"] > 0
    for name, value in s["counters"].items():
        assert value >= prev_counters.get(name, 0), (
            f"counter {name} went backwards: {prev_counters.get(name)} "
            f"-> {value}")
        prev_counters[name] = value
final = samples[-1]["counters"]
assert final.get("ooc.executions_mined", 0) >= 4000, final
assert final.get("segment.loads", 0) > 0, "no segment loads recorded"
assert final.get("ooc.windows_visited", 0) > 0, "no windows visited"

# --- OpenMetrics: structural parse, required families, terminator.
with open("metrics.om") as f:
    lines = f.read().splitlines()
assert lines[-1] == "# EOF", "missing # EOF terminator"
families = set()
samples_seen = 0
for line in lines[:-1]:
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ")
        assert kind in ("counter", "gauge", "histogram", "info"), line
        families.add(name)
    elif line and not line.startswith("#"):
        name_and_labels, _, value = line.rpartition(" ")
        float(value)  # must be numeric
        samples_seen += 1
assert samples_seen > 0
for required in ("procmine_ooc_executions_mined",
                 "procmine_segment_cache_hits",
                 "process_resident_memory_bytes",
                 "process_cpu_seconds",
                 "procmine_telemetry_heartbeat_unix_seconds"):
    assert required in families, f"missing family {required}"

# --- Status: parses, fresh heartbeat, progress saw the run.
with open("status.json") as f:
    status = json.load(f)
assert status["schema_version"] == 1
assert status["command"] == "mine"
age_ms = time.time() * 1000 - status["heartbeat_unix_ms"]
assert age_ms < 60000, f"heartbeat {age_ms}ms old"
assert status["progress"]["executions_scanned"] >= 4000, status["progress"]
assert status["progress"]["windows_visited"] > 0
assert status["cache"]["loads"] > 0
print("telemetry artifacts: ok "
      f"({len(samples)} samples, {len(families)} metric families)")
PYEOF

echo "== 2. model byte-identity with telemetry off"
"$PROCMINE" mine demo.log --spill-dir=store2 --segment-events=512 \
  > model_without.txt
test -s model_with.txt || { echo "FAIL: empty model output" >&2; exit 1; }
cmp model_with.txt model_without.txt || {
  echo "FAIL: model differs with telemetry enabled" >&2
  exit 1
}

echo "== 3. degraded run still seals artifacts"
rc=0
"$PROCMINE" mine demo.log --deadline-ms=0 \
  --telemetry-out=tel4.jsonl --metrics-openmetrics=metrics4.om \
  --status-file=status4.json > /dev/null 2>&1 || rc=$?
test "$rc" -eq 4 || { echo "FAIL: expected exit 4, got $rc" >&2; exit 1; }
python3 - <<'PYEOF'
import json
with open("status4.json") as f:
    status = json.load(f)
assert status["budget"] is not None, "degraded run lost its budget picture"
assert status["budget"]["exhausted"] == "deadline", status["budget"]
with open("metrics4.om") as f:
    assert f.read().endswith("# EOF\n"), "exposition not sealed"
with open("tel4.jsonl") as f:
    for line in f:
        json.loads(line)
print("degraded-run artifacts: ok")
PYEOF

echo "== 4. SIGKILL mid-run never tears the status file"
"$PROCMINE" synth --activities=16 --executions=60000 --seed=13 --out=big.log
"$PROCMINE" mine big.log --spill-dir=bigstore \
  --status-file=live.json --metrics-openmetrics=live.om \
  --telemetry-interval-ms=5 > /dev/null 2>&1 &
MINER=$!
# Wait for the first status write, then kill mid-sampling.
tries=0
while [ ! -s live.json ] && [ "$tries" -lt 200 ]; do
  tries=$((tries + 1))
  sleep 0.01
done
sleep 0.07
kill -9 "$MINER" 2>/dev/null || true
wait "$MINER" 2>/dev/null || true
python3 - <<'PYEOF'
import json
with open("live.json") as f:
    status = json.load(f)  # a torn write would fail here
assert status["schema_version"] == 1
with open("live.om") as f:
    text = f.read()
assert text.endswith("# EOF\n"), "exposition torn by SIGKILL"
print("kill-mid-run artifacts: ok (complete documents)")
PYEOF

echo "== 5. procmine top"
rc=0
"$PROCMINE" top status.json > top.out 2>&1 || rc=$?
test "$rc" -eq 0 -o "$rc" -eq 1 || {
  echo "FAIL: top exit $rc" >&2; cat top.out >&2; exit 1; }
grep -q "procmine pid" top.out
grep -q "phase:" top.out
echo "garbage" > garbage.json
rc=0
"$PROCMINE" top garbage.json > /dev/null 2>&1 || rc=$?
test "$rc" -eq 3 || { echo "FAIL: top on garbage exit $rc, want 3" >&2; exit 1; }

echo "telemetry smoke: all checks passed"
