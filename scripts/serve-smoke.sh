#!/bin/sh
# Serve smoke gate: drives the real `procmine serve` daemon end to end and
# proves the ISSUE's kill-resilience criteria on the wire, not in-process:
#   * a hostile client (corrupt / torn / oversize frames) never disturbs a
#     concurrent healthy session, and the server survives every attack,
#   * a session that trips its RunBudget answers degraded frames (client
#     exit 4), mirroring the CLI exit-4 contract,
#   * SIGKILL between ack and publish + restart + journal replay yields a
#     model byte-identical to an uninterrupted run,
#   * a crash at ack time (PROCMINE_FAILPOINTS=serve.journal.append=crash)
#     loses exactly the unacked batch: the restarted server's execution
#     count equals the last acked total,
#   * SIGTERM drains gracefully: the model publishes to the registry, and a
#     second generation resumes the version hash chain (v1 -> v2).
#
# Registered as the `serve_smoke` ctest (tests/CMakeLists.txt). Standalone:
#   scripts/serve-smoke.sh <procmine-binary>

set -eu

PROCMINE="${1:?usage: serve-smoke.sh <procmine-binary>}"

TMP="$(mktemp -d)"
cleanup() {
  [ -z "${SERVER_PID:-}" ] || kill -9 "$SERVER_PID" 2> /dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT
SERVER_PID=""

wait_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: socket $1 never appeared" >&2; exit 1; }
    sleep 0.05
  done
}

# start_server <tag> [extra serve flags...] — socket at $TMP/<tag>.sock,
# stderr at $TMP/<tag>.log, pid in $SERVER_PID.
start_server() {
  tag="$1"; shift
  "$PROCMINE" serve --socket="$TMP/$tag.sock" "$@" 2> "$TMP/$tag.log" &
  SERVER_PID=$!
  wait_socket "$TMP/$tag.sock"
}

stop_server() {
  # stop_server <signal> <want-rc>
  kill "-$1" "$SERVER_PID"
  rc=0; wait "$SERVER_PID" || rc=$?
  SERVER_PID=""
  [ "$rc" -eq "$2" ] || {
    echo "FAIL: server exited $rc after SIG$1, want $2" >&2
    exit 1
  }
}

"$PROCMINE" synth --activities=7 --executions=60 --density=0.3 --seed=13 \
  --out="$TMP/log.bin" > /dev/null

# --- reference: an uninterrupted server, one session, full log ------------
start_server ref
"$PROCMINE" client --socket="$TMP/ref.sock" --session=s1 "$TMP/log.bin" \
  --batch-executions=5 --query-out="$TMP/ref_model.txt" --close \
  2> /dev/null
[ -s "$TMP/ref_model.txt" ] || {
  echo "FAIL: reference run produced no model" >&2
  exit 1
}
stop_server TERM 0

# --- hostile client vs healthy session, plus budget degradation ----------
start_server iso --threads=4
"$PROCMINE" client --socket="$TMP/iso.sock" --garbage 2> /dev/null || {
  echo "FAIL: garbage client round 1 (server did not survive)" >&2
  exit 1
}
"$PROCMINE" client --socket="$TMP/iso.sock" --session=s1 "$TMP/log.bin" \
  --batch-executions=7 2> /dev/null || {
  echo "FAIL: healthy client failed alongside hostile one (exit $?)" >&2
  exit 1
}
"$PROCMINE" client --socket="$TMP/iso.sock" --garbage 2> /dev/null || {
  echo "FAIL: garbage client round 2 (server did not survive)" >&2
  exit 1
}
"$PROCMINE" client --socket="$TMP/iso.sock" --session=s1 \
  --query-out="$TMP/iso_model.txt" 2> /dev/null
cmp -s "$TMP/iso_model.txt" "$TMP/ref_model.txt" || {
  echo "FAIL: hostile frames disturbed the healthy session's model" >&2
  exit 1
}
# A tenant with a 10-execution budget fed 60 executions must come back
# degraded (exit 4), with the other tenant untouched.
rc=0
"$PROCMINE" client --socket="$TMP/iso.sock" --session=capped \
  --session-max-executions=10 "$TMP/log.bin" --batch-executions=7 \
  2> "$TMP/capped.log" || rc=$?
[ "$rc" -eq 4 ] || {
  echo "FAIL: over-budget session client exited $rc, want 4 (degraded)" >&2
  exit 1
}
grep -q "degraded(resource=executions" "$TMP/capped.log" || {
  echo "FAIL: degraded ack did not name the exhausted resource" >&2
  exit 1
}
stop_server TERM 0

# --- SIGKILL between ack and publish; restart replays byte-identically ----
start_server kill9 --journal-dir="$TMP/jd" --registry-root="$TMP/reg"
"$PROCMINE" client --socket="$TMP/kill9.sock" --session=s1 "$TMP/log.bin" \
  --batch-executions=5 2> /dev/null
stop_server KILL 137
[ ! -f "$TMP/reg/s1/v000001.json" ] || {
  echo "FAIL: model published before close/drain (kill landed too late)" >&2
  exit 1
}
start_server recover --journal-dir="$TMP/jd" --registry-root="$TMP/reg"
grep -q "recovered 1 session" "$TMP/recover.log" || {
  echo "FAIL: restart did not report a recovered session" >&2
  cat "$TMP/recover.log" >&2
  exit 1
}
"$PROCMINE" client --socket="$TMP/recover.sock" --session=s1 \
  --query-out="$TMP/replayed_model.txt" 2> /dev/null
cmp -s "$TMP/replayed_model.txt" "$TMP/ref_model.txt" || {
  echo "FAIL: replayed model differs from the uninterrupted run" >&2
  exit 1
}
# SIGTERM drain publishes the recovered session's model: registry v1.
stop_server TERM 0
[ -f "$TMP/reg/s1/v000001.json" ] || {
  echo "FAIL: graceful drain did not publish v1" >&2
  exit 1
}

# --- crash at ack time: unacked batch is lost, acked prefix survives ------
rc=0
env PROCMINE_FAILPOINTS='serve.journal.append=crash@6' \
  "$PROCMINE" serve --socket="$TMP/ack.sock" --journal-dir="$TMP/jd2" \
  2> /dev/null &
SERVER_PID=$!
wait_socket "$TMP/ack.sock"
rc=0
"$PROCMINE" client --socket="$TMP/ack.sock" --session=s2 "$TMP/log.bin" \
  --batch-executions=1 2> "$TMP/ack_client.log" || rc=$?
[ "$rc" -ne 0 ] || {
  echo "FAIL: client survived a server that crashed mid-ack" >&2
  exit 1
}
rc=0; wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[ "$rc" -eq 134 ] || {
  echo "FAIL: crash-injected server exited $rc, want 134" >&2
  exit 1
}
acked="$(sed -n 's/.*batch: ok.*total=\([0-9]*\).*/\1/p' "$TMP/ack_client.log" | tail -1)"
[ -n "$acked" ] && [ "$acked" -eq 6 ] || {
  echo "FAIL: expected 6 acked batches before the crash, saw '${acked:-none}'" >&2
  exit 1
}
start_server ackrec --journal-dir="$TMP/jd2"
"$PROCMINE" client --socket="$TMP/ackrec.sock" --session=s2 \
  --query 2> "$TMP/ackrec_query.log" > /dev/null
recovered="$(sed -n 's/.*query: ok.*total=\([0-9]*\).*/\1/p' "$TMP/ackrec_query.log" | tail -1)"
[ "${recovered:-x}" = "$acked" ] || {
  echo "FAIL: recovered $recovered executions, want exactly the $acked acked" >&2
  exit 1
}
stop_server TERM 0

# --- second generation resumes the registry hash chain: v1 -> v2 ----------
start_server gen2 --journal-dir="$TMP/jd" --registry-root="$TMP/reg"
grep -q "recovered" "$TMP/gen2.log" && {
  echo "FAIL: sealed journal was resurrected" >&2
  exit 1
}
"$PROCMINE" client --socket="$TMP/gen2.sock" --session=s1 "$TMP/log.bin" \
  --batch-executions=10 2> /dev/null
stop_server TERM 0

python3 - "$TMP/reg/s1" <<'PYEOF'
import json
import os
import sys

reg = sys.argv[1]


def crc32c(data):
    # Reflected CRC-32C (Castagnoli), matching src/util/crc32c.cc.
    crc = 0xFFFFFFFF
    for b in data:
        crc ^= b
        for _ in range(8):
            crc = (crc >> 1) ^ (0x82F63B78 if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


parent = "none"
for v in (1, 2):
    raw = open(os.path.join(reg, f"v{v:06d}.json"), "rb").read()
    snap = json.loads(raw)
    assert snap["version"] == v, snap["version"]
    assert snap["parent_hash"] == parent, f"v{v}: hash chain broken"
    assert snap["window"]["num_executions"] == 60, snap["window"]
    assert snap["edges"], f"v{v}: published model has no edges"
    parent = f"{crc32c(raw):08x}"
current = open(os.path.join(reg, "CURRENT")).read().split()
assert current == ["2", parent], current
print("serve smoke OK: isolation, degradation, kill -9 replay, "
      "crash-at-ack, registry chain v1->v2")
PYEOF
