#!/bin/sh
# Builds the suite under ThreadSanitizer and runs the tests that exercise
# the concurrent machinery: the obs metrics/span recorders, the thread
# pool (including the work-stealing chunked mode), the shared striped
# memo table, the parallel-determinism sweep (threads x chunk-size), the
# sharded parallel log parser (ingest equivalence), the run-report
# builder (provenance recording + thread-count-invariant report bytes),
# the robustness layer (recovery-mode sharded quarantine merges,
# failpoints, budgets), the drift monitor + model registry (whose
# outputs must be identical however ingestion was sharded), the
# out-of-core segment store + windowed miner (window fan-out at
# threads {2,8} over the spill/evict path), and the telemetry sampler
# (a background thread snapshotting the registry while counter writers
# race it), and the streaming server (concurrent submitters multiplexing
# sessions onto the pump + thread pool, plus the socket front end's
# connection threads racing a hostile client). Run whenever the parallel
# pipeline, src/obs/, the ingestion layer, the segment store, or
# src/serve/ changes.
#
# Usage: scripts/tsan-verify.sh [build-dir]   (default: build-tsan)

set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROCMINE_SANITIZE=thread \
  -DPROCMINE_BUILD_BENCHMARKS=OFF \
  -DPROCMINE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j \
  --target obs_metrics_test obs_trace_test thread_pool_test \
           striped_memo_test parallel_determinism_test \
           ingest_equivalence_test mapped_file_test report_test \
           recovery_test failpoint_test budget_test \
           drift_test registry_test segment_store_test telemetry_test \
           serve_test

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'Obs|ThreadPool|StripedMemo|ParallelDeterminism|IngestEquivalence|MappedFile|RunReport|RecoveryMatrix|BinarySalvage|StreamingRecovery|RecoveryPolicy|Failpoint|RunBudget|MinerBudget|ReportBudget|DriftMonitor|SupportHighWatermark|Registry|SegmentStore|SegmentCodec|OocIdentity|Telemetry|Serve'
