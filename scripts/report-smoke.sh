#!/bin/sh
# Run-report smoke gate: mines a log with --report-out/--report-dot, checks
# the JSON parses, and validates the report invariants that matter:
#   * every kept edge's support reaches the mined threshold,
#   * the kept candidates are exactly the model's edges,
#   * the sensitivity table has >= 5 distinct sorted thresholds whose
#     kept+dropped always partition the candidate set,
#   * one verdict per execution, inconsistent ones naming a violation,
#   * report bytes are identical for --threads=1 and --threads=4.
#
# Registered as the `report_smoke` ctest (tests/CMakeLists.txt) with the
# built CLI and examples/logs/order_fulfillment.log. Standalone usage:
#   scripts/report-smoke.sh <procmine-binary> <log> [threshold]

set -eu

PROCMINE="${1:?usage: report-smoke.sh <procmine-binary> <log> [threshold]}"
LOG="${2:?usage: report-smoke.sh <procmine-binary> <log> [threshold]}"
THRESHOLD="${3:-2}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$PROCMINE" mine "$LOG" --threshold="$THRESHOLD" \
  --report-out="$TMP/report.json" --report-dot="$TMP/report.dot" \
  > "$TMP/model.dot"
"$PROCMINE" mine "$LOG" --threshold="$THRESHOLD" --threads=1 \
  --report-out="$TMP/report_t1.json" > /dev/null
"$PROCMINE" mine "$LOG" --threshold="$THRESHOLD" --threads=4 \
  --report-out="$TMP/report_t4.json" > /dev/null

cmp "$TMP/report_t1.json" "$TMP/report_t4.json" || {
  echo "FAIL: report bytes differ between --threads=1 and --threads=4" >&2
  exit 1
}

grep -q 'style=dashed' "$TMP/report.dot" || {
  echo "FAIL: annotated DOT has no dashed dropped edges" >&2
  exit 1
}

python3 - "$TMP/report.json" "$THRESHOLD" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)  # raises on malformed JSON -> nonzero exit
threshold = int(sys.argv[2])

edges = report["edges"]
assert edges, "no candidate edges recorded"
kept = [(e["from"], e["to"]) for e in edges if e["status"] == "kept"]
for e in edges:
    assert e["support"] >= 1, e
    assert 0 <= e["first_witness"] <= e["last_witness"], e
    assert e["last_witness"] < report["num_executions"], e
    if e["status"] == "kept":
        assert e["support"] >= threshold, f"kept edge below threshold: {e}"

model_edges = [(e["from"], e["to"]) for e in report["model"]["edges"]]
if not report["occurrence_labeled"]:
    assert sorted(kept) == sorted(model_edges), (
        "kept candidates != model edges")

rows = report["sensitivity"]
assert len(rows) >= 5, f"sensitivity table too small: {len(rows)} rows"
thresholds = [r["threshold"] for r in rows]
assert thresholds == sorted(set(thresholds)), "thresholds not sorted/unique"
for row in rows:
    assert row["edges_kept"] + row["edges_dropped"] == len(edges), row
    assert 0.0 <= row["spurious_bound"] <= 1.0, row
    assert 0.0 <= row["lost_bound"] <= 1.0, row

verdicts = report["conformance"]["verdicts"]
assert len(verdicts) == report["num_executions"], "one verdict per execution"
for v in verdicts:
    if not v["consistent"]:
        assert v["violation"], v

for name in report["metrics"]["counters"]:
    assert "memo_hits" not in name and "memo_misses" not in name, (
        f"thread-count-dependent counter leaked into the report: {name}")

print(f"report smoke OK: {len(edges)} candidates, {len(kept)} kept, "
      f"{len(rows)} sweep rows, {len(verdicts)} verdicts")
PYEOF
