#!/bin/sh
# Quick-mode ingestion smoke: builds bench_ingest in an existing (or fresh)
# Release tree and runs the BenchIngestQuick ctest gate, which fails if the
# zero-copy text path drops below 3x the legacy reader's events/sec.
# Also runs the ingest equivalence suite first, so a speedup measured on a
# wrong parse never counts.
#
# Usage: scripts/bench-smoke.sh [build-dir]   (default: build)

set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j --target bench_ingest ingest_equivalence_test

ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'IngestEquivalence'
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'BenchIngestQuick'
echo "ingestion smoke OK: see $BUILD_DIR/BENCH_ingest.json"
