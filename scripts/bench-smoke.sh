#!/bin/sh
# Quick-mode perf smoke: builds the gated benches in an existing (or fresh)
# Release tree and runs their ctest gates.
#
#  * BenchIngestQuick — fails if the zero-copy text path drops below 3x the
#    legacy reader's events/sec. The ingest equivalence suite runs first, so
#    a speedup measured on a wrong parse never counts.
#  * BenchKernelsQuick — fails if the unrolled/SIMD word kernels or the
#    BitMatrix closure/reduce paths fall below the seed-style baselines.
#    The bit_matrix property suite runs first, for the same reason.
#
# Usage: scripts/bench-smoke.sh [build-dir]   (default: build)

set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j --target bench_ingest ingest_equivalence_test \
  bench_kernels bit_matrix_test

ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'IngestEquivalence'
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'BenchIngestQuick'
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'BitsKernel|BitMatrix'
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'BenchKernelsQuick'
echo "perf smoke OK: see $BUILD_DIR/BENCH_ingest.json and $BUILD_DIR/BENCH_kernels.json"
