// procmine — command-line front end.
//
//   procmine mine <log> [--algorithm=auto|special|general|cyclic]
//                       [--threshold=N|auto] [--threads=N|auto]
//                       [--chunk-size=N] [--dot=FILE] [--conditions]
//   procmine check <log> --model=EDGEFILE      conformance of a model
//   procmine diff <log> --model=EDGEFILE       designed-vs-mined diff
//   procmine stats <log>                       log statistics + validation
//   procmine noise <log>                       epsilon estimate + T*
//   procmine report <log> [--out=FILE] [--dot=FILE]
//                  mining run report: edge provenance, conformance audit,
//                  noise-threshold sensitivity
//   procmine monitor <log> [--window-executions=W] [--slide=S]
//                  [--registry-dir=DIR] [--alerts-out=FILE]
//                  windowed drift monitoring: versioned model registry +
//                  JSON-lines alert feed; exit 1 when drift was detected
//   procmine synth --activities=N --executions=M [--density=D] [--seed=S]
//                  --out=FILE                  synthetic workload
//                  (--drift=KIND generates a change-point scenario instead)
//   procmine convert <in> <out>                format conversion by extension
//   procmine serve --socket=PATH [--journal-dir=DIR] [--registry-root=DIR]
//                  long-running streaming mining daemon (docs/serving.md):
//                  sessions over a unix socket, crash recovery by journal
//                  replay, graceful drain on SIGTERM
//   procmine client --socket=PATH --session=NAME [log] [--query] [--close]
//                  scripted client for the serve protocol (--garbage sends
//                  hostile frames to prove fault isolation)
//
// Global observability flags (valid on every command):
//   --trace-out=FILE    record phase spans, write Chrome trace-event JSON
//                       (open in chrome://tracing or ui.perfetto.dev) and
//                       print a per-phase summary to stderr
//   --metrics-out=FILE  record pipeline counters, write a JSON snapshot
//   --log-level=LEVEL   debug|info|warning|error (default info)
//   --log-json          emit log lines as JSON objects (machine-parseable)
//
// Continuous telemetry (any command; see docs/observability.md). Any of
// these starts a background sampler that snapshots counters + process
// stats on an interval, so a long run is observable while it runs:
//   --telemetry-out=FILE       JSONL time-series, one sample per line
//   --metrics-openmetrics=FILE OpenMetrics 1.0 exposition, atomically
//                              rewritten each tick (Prometheus textfile)
//   --status-file=FILE         heartbeat/status JSON, atomically rewritten
//                              each tick (poll with `procmine top`)
//   --telemetry-interval-ms=N  sampling interval (default 250)
//   procmine top <status-file> pretty-prints a status file once; exit 1
//                              when the heartbeat looks stale
//
// Robustness flags (any log-reading command; see docs/robustness.md):
//   --recovery=POLICY      strict (default) | skip | quarantine — what to do
//                          with malformed lines / executions
//   --quarantine-out=FILE  write rejected inputs to a sidecar (implies
//                          --recovery=quarantine)
//   --deadline-ms=N        wall-clock budget; exhausted -> partial model
//   --max-memory-mb=N      rss budget, checked at phase boundaries
//   --max-executions=N     mine only the first N executions
//
// Exit codes: 0 success; 1 analysis mismatch (check/diff found a
// discrepancy); 2 usage error; 3 data error (unreadable, malformed, or
// unwritable input/output); 4 run completed but was budget-degraded;
// 5 internal error.
//
// Log files are read by extension: .bin (binary format), .xes (XES XML),
// anything else as the text event format. Text logs are memory-mapped and
// parsed in parallel; --threads controls both ingestion sharding and the
// miners, and the result is byte-identical for every value. --chunk-size
// sets the executions-per-chunk granularity of the work-stealing mining
// passes (0/absent = 4 chunks per worker) — a tuning knob only, the model
// is identical for every value. Model edge files are plain text, one
// "From To" pair per line, '#' comments allowed.

#include <sys/socket.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/ascii.h"
#include "graph/dot.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "log/binary_log.h"
#include "log/recovery.h"
#include "mine/performance.h"
#include "log/reader.h"
#include "log/segment_store.h"
#include "log/stats.h"
#include "log/validate.h"
#include "log/transform.h"
#include "log/writer.h"
#include "log/xes.h"
#include "log/streaming_reader.h"
#include "mine/conformance.h"
#include "mine/drift.h"
#include "mine/miner.h"
#include "mine/model_diff.h"
#include "mine/noise.h"
#include "mine/ooc_miner.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "synth/drift_scenario.h"
#include "mine/reconstruct.h"
#include "mine/sequential_patterns.h"
#include "mine/trace.h"
#include "workflow/engine.h"
#include "workflow/fdl.h"
#include "synth/log_generator.h"
#include "synth/random_dag.h"
#include "util/atomic_file.h"
#include "util/budget.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/mapped_file.h"
#include "util/strings.h"

using namespace procmine;

namespace {

/// Parsed command line: positional arguments and --key=value flags.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (StartsWith(arg, "--")) {
      size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        args.flags[std::string(arg.substr(2))] = "";
      } else {
        args.flags[std::string(arg.substr(2, eq - 2))] =
            std::string(arg.substr(eq + 1));
      }
    } else {
      args.positional.emplace_back(arg);
    }
  }
  return args;
}

/// The --threads flag as a pool-size knob: auto (default) = hardware
/// concurrency (0), otherwise the literal value. Errors fall back to auto
/// so the miner option parsing can report them properly.
int ThreadsFlag(const Args& args) {
  std::string threads = args.Get("threads", "auto");
  if (threads == "auto") return 0;
  auto parsed = ParseInt64(threads);
  return parsed.ok() ? static_cast<int>(*parsed) : 0;
}

// Exit-code taxonomy (documented in docs/robustness.md). Analysis commands
// keep 1 for "the check itself failed" (non-conformal, model diff) so that
// scripts can tell a negative verdict from a broken input.
constexpr int kExitOk = 0;
constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;
constexpr int kExitData = 3;
constexpr int kExitDegraded = 4;
constexpr int kExitInternal = 5;

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kIOError:
    case StatusCode::kDataLoss:
      return kExitData;
    default:
      return kExitInternal;
  }
}

/// Prints `status` and maps it to an exit code.
int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return ExitCodeForStatus(status);
}

/// Resolves --recovery / --quarantine-out into a policy. --quarantine-out
/// implies quarantine; combining it with an explicit non-quarantine
/// --recovery is a contradiction and rejected.
Result<RecoveryPolicy> RecoveryFlag(const Args& args) {
  RecoveryPolicy policy = RecoveryPolicy::kStrict;
  if (args.Has("recovery")) {
    PROCMINE_ASSIGN_OR_RETURN(policy,
                              ParseRecoveryPolicy(args.Get("recovery")));
  }
  if (args.Has("quarantine-out")) {
    if (args.Has("recovery") && policy != RecoveryPolicy::kQuarantine) {
      return Status::InvalidArgument(
          "--quarantine-out requires --recovery=quarantine (or omit "
          "--recovery)");
    }
    policy = RecoveryPolicy::kQuarantine;
  }
  return policy;
}

/// Parses --deadline-ms / --max-memory-mb / --max-executions.
Result<RunBudget::Limits> BudgetLimitsFromArgs(const Args& args) {
  RunBudget::Limits limits;
  if (args.Has("deadline-ms")) {
    PROCMINE_ASSIGN_OR_RETURN(limits.deadline_ms,
                              ParseInt64(args.Get("deadline-ms")));
  }
  if (args.Has("max-memory-mb")) {
    PROCMINE_ASSIGN_OR_RETURN(int64_t mb,
                              ParseInt64(args.Get("max-memory-mb")));
    limits.max_memory_bytes = mb * (int64_t{1} << 20);
  }
  if (args.Has("max-executions")) {
    PROCMINE_ASSIGN_OR_RETURN(limits.max_executions,
                              ParseInt64(args.Get("max-executions")));
  }
  return limits;
}

/// Reads a log honoring --recovery / --quarantine-out. When the caller
/// passes a report sink it receives the full IngestionReport; either way
/// the quarantine sidecar is written and any loss is summarized on stderr.
Result<EventLog> ReadLogAuto(const std::string& path, const Args& args,
                             IngestionReport* report_out = nullptr) {
  PROCMINE_ASSIGN_OR_RETURN(RecoveryPolicy policy, RecoveryFlag(args));
  IngestionReport local;
  IngestionReport* report = report_out != nullptr ? report_out : &local;
  report->policy = policy;
  Result<EventLog> log = Status::Internal("unreachable");
  if (EndsWith(path, ".bin")) {
    BinaryDecodeOptions options;
    options.recovery = policy;
    options.report = report;
    log = ReadBinaryLogFile(path, options);
  } else if (EndsWith(path, ".xes")) {
    if (policy != RecoveryPolicy::kStrict) {
      std::fprintf(stderr, "note: --recovery does not apply to .xes inputs\n");
    }
    log = ReadXesFile(path);
  } else {
    // Text ingestion shards across --threads workers; the parsed log, the
    // report, and the quarantine bytes are identical for any thread count.
    LogParseOptions options;
    options.num_threads = ThreadsFlag(args);
    options.recovery = policy;
    options.report = report;
    log = LogReader::ReadFile(path, options);
  }
  if (!log.ok()) return log;
  if (args.Has("quarantine-out")) {
    PROCMINE_RETURN_NOT_OK(
        WriteQuarantineFile(args.Get("quarantine-out"), *report));
    std::fprintf(stderr, "wrote quarantine to %s\n",
                 args.Get("quarantine-out").c_str());
  }
  if (report->AnyLoss()) {
    std::fprintf(stderr, "%s", report->SummaryText().c_str());
  }
  return log;
}

Status WriteLogAuto(const EventLog& log, const std::string& path) {
  if (EndsWith(path, ".bin")) return WriteBinaryLogFile(log, path);
  if (EndsWith(path, ".xes")) return WriteXesFile(log, path);
  if (EndsWith(path, ".csv")) return LogWriter::WriteCsvFile(log, path);
  return LogWriter::WriteFile(log, path);
}

Result<ProcessGraph> ReadEdgeListModel(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open: " + path);
  std::vector<std::pair<std::string, std::string>> edges;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: expected 'From To'", path.c_str(),
                    static_cast<long long>(line_no)));
    }
    edges.emplace_back(fields[0], fields[1]);
  }
  return ProcessGraph::FromNamedEdges(edges);
}

/// `log` may be null (the out-of-core path, which never materializes one);
/// --threshold=auto then has nothing to estimate from and is rejected.
Result<MinerOptions> MinerOptionsFromArgs(const Args& args,
                                          const EventLog* log) {
  MinerOptions options;
  std::string algorithm = args.Get("algorithm", "auto");
  if (algorithm == "auto") {
    options.algorithm = MinerAlgorithm::kAuto;
  } else if (algorithm == "special") {
    options.algorithm = MinerAlgorithm::kSpecialDag;
  } else if (algorithm == "general") {
    options.algorithm = MinerAlgorithm::kGeneralDag;
  } else if (algorithm == "cyclic") {
    options.algorithm = MinerAlgorithm::kCyclic;
  } else {
    return Status::InvalidArgument("unknown --algorithm: " + algorithm);
  }
  std::string threshold = args.Get("threshold", "1");
  if (threshold == "auto") {
    if (log == nullptr) {
      return Status::InvalidArgument(
          "--threshold=auto needs the whole log in memory; pass an explicit "
          "threshold when mining a segment store");
    }
    options.noise_threshold = SuggestNoiseThreshold(*log);
    std::fprintf(stderr, "estimated noise rate %.4f -> threshold %lld\n",
                 EstimateNoiseRate(*log),
                 static_cast<long long>(options.noise_threshold));
  } else {
    PROCMINE_ASSIGN_OR_RETURN(options.noise_threshold,
                              ParseInt64(threshold));
  }
  // Default: all hardware threads. The model is byte-identical for any
  // thread count; --threads=1 forces the sequential reference path.
  std::string threads = args.Get("threads", "auto");
  if (threads == "auto") {
    options.num_threads = 0;  // 0 = hardware concurrency
  } else {
    PROCMINE_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(threads));
    options.num_threads = static_cast<int>(parsed);
  }
  // Work-stealing granularity knob; any value yields the same model.
  if (args.Has("chunk-size")) {
    PROCMINE_ASSIGN_OR_RETURN(int64_t chunk,
                              ParseInt64(args.Get("chunk-size")));
    if (chunk < 0) {
      return Status::InvalidArgument("--chunk-size must be >= 0");
    }
    options.chunk_size = static_cast<size_t>(chunk);
  }
  return options;
}

/// Parses --sweep=T1,T2,... into RunReportOptions::sweep.
Result<std::vector<int64_t>> ParseSweep(const std::string& spec) {
  std::vector<int64_t> sweep;
  for (const std::string& field : Split(spec, ',')) {
    PROCMINE_ASSIGN_OR_RETURN(int64_t t, ParseInt64(field));
    sweep.push_back(t);
  }
  return sweep;
}

Result<obs::RunReportOptions> ReportOptionsFromArgs(const Args& args,
                                                    const EventLog& log) {
  PROCMINE_ASSIGN_OR_RETURN(MinerOptions miner_options,
                            MinerOptionsFromArgs(args, &log));
  obs::RunReportOptions options;
  options.algorithm = miner_options.algorithm;
  options.noise_threshold = miner_options.noise_threshold;
  options.num_threads = miner_options.num_threads;
  options.chunk_size = miner_options.chunk_size;
  if (args.Has("sweep")) {
    PROCMINE_ASSIGN_OR_RETURN(options.sweep, ParseSweep(args.Get("sweep")));
  }
  if (args.Has("unstable-cutoff")) {
    PROCMINE_ASSIGN_OR_RETURN(options.unstable_cutoff,
                              ParseDouble(args.Get("unstable-cutoff")));
  }
  return options;
}

/// Writes the JSON / annotated-DOT artifacts named by `json_flag` and
/// `dot_flag`. Atomic: a crash or injected fault mid-write never leaves a
/// torn file at the target path.
Status WriteReportArtifacts(const obs::RunReport& report, const Args& args,
                            const std::string& json_flag,
                            const std::string& dot_flag) {
  if (args.Has(json_flag)) {
    if (auto fp = PROCMINE_FAILPOINT("report.write"); fp) {
      return fp.ToStatus("report.write");
    }
    PROCMINE_RETURN_NOT_OK(
        WriteFileAtomic(args.Get(json_flag), report.ToJson()));
    std::fprintf(stderr, "wrote run report to %s\n",
                 args.Get(json_flag).c_str());
  }
  if (args.Has(dot_flag)) {
    PROCMINE_RETURN_NOT_OK(
        WriteFileAtomic(args.Get(dot_flag), report.ToAnnotatedDot()));
    std::fprintf(stderr, "wrote annotated dot to %s\n",
                 args.Get(dot_flag).c_str());
  }
  return Status::OK();
}

/// Common tail for budget-carrying commands: a clean run exits 0, a
/// degraded one announces what was cut and exits 4.
int FinishWithDegradation(const DegradationInfo& degradation) {
  if (!degradation.degraded) return kExitOk;
  std::fprintf(stderr, "DEGRADED: %s budget exhausted at %s; %s\n",
               std::string(BudgetResourceName(degradation.resource)).c_str(),
               degradation.cut_phase.c_str(), degradation.dropped.c_str());
  return kExitDegraded;
}

/// Store knobs shared by synth --stream-out, mine <store>, and --spill-dir:
/// --segment-events (seal size), --resident-mb (reader cache bound; defaults
/// to a quarter of --max-memory-mb when a budget is set), plus the recovery
/// policy and the writer's spill budget.
Result<SegmentStoreOptions> StoreOptionsFromArgs(const Args& args,
                                                 RecoveryPolicy policy,
                                                 RunBudget* budget) {
  SegmentStoreOptions options;
  options.recovery = policy;
  options.budget = budget;
  if (args.Has("segment-events")) {
    PROCMINE_ASSIGN_OR_RETURN(options.target_segment_events,
                              ParseInt64(args.Get("segment-events")));
    if (options.target_segment_events <= 0) {
      return Status::InvalidArgument("--segment-events must be > 0");
    }
  }
  if (args.Has("resident-mb")) {
    PROCMINE_ASSIGN_OR_RETURN(int64_t mb, ParseInt64(args.Get("resident-mb")));
    if (mb <= 0) return Status::InvalidArgument("--resident-mb must be > 0");
    options.max_resident_bytes = mb * (int64_t{1} << 20);
  } else if (budget != nullptr && budget->limits().max_memory_bytes > 0) {
    // Leave most of the budget to the mining accumulators and one decoded
    // window; the cache always keeps at least the current segment resident.
    options.max_resident_bytes =
        std::max<int64_t>(budget->limits().max_memory_bytes / 4, 1 << 20);
  }
  return options;
}

/// One stderr line of store footprint, shared by `stats` and the post-mine
/// summary.
void PrintFootprint(const SegmentStoreFootprint& fp, FILE* out) {
  std::fprintf(out,
               "store: %lld segments, %lld executions, %lld events, "
               "%.1f MiB on disk (~%.1f MiB decoded, %.2fx)\n",
               static_cast<long long>(fp.segments),
               static_cast<long long>(fp.executions),
               static_cast<long long>(fp.events),
               static_cast<double>(fp.disk_bytes) / (1 << 20),
               static_cast<double>(fp.estimated_memory_bytes) / (1 << 20),
               fp.CompressionRatio());
  std::fprintf(out,
               "cache: %lld/%lld segments resident (%.1f of %.1f MiB, "
               "peak %.1f), %lld loads, %lld evictions\n",
               static_cast<long long>(fp.resident_segments),
               static_cast<long long>(fp.segments),
               static_cast<double>(fp.resident_bytes) / (1 << 20),
               static_cast<double>(fp.max_resident_bytes) / (1 << 20),
               static_cast<double>(fp.peak_resident_bytes) / (1 << 20),
               static_cast<long long>(fp.loads),
               static_cast<long long>(fp.evictions));
}

/// The shared output tail of every mine path: model summary, stdout DOT or
/// ASCII, --dot sidecar, degradation exit code.
int EmitModel(const ProcessGraph& model, const Args& args,
              const DegradationInfo& degradation) {
  std::fprintf(stderr, "mined %lld edges over %d activities\n",
               static_cast<long long>(model.graph().num_edges()),
               model.num_activities());
  if (args.Has("ascii")) {
    std::cout << RenderAscii(model.graph(), model.names());
  } else {
    std::cout << model.ToDot("mined_process");
  }
  if (args.Has("dot")) {
    Status st = WriteDotFile(model.graph(), model.names(), args.Get("dot"));
    if (!st.ok()) return Fail(st);
  }
  return FinishWithDegradation(degradation);
}

/// Mines a segment-store directory out of core: bounded-resident windowed
/// passes, byte-identical model (see mine/ooc_miner.h).
int CommandMineStore(const Args& args) {
  const std::string& dir = args.positional[0];
  for (const char* flag : {"report-out", "report-dot", "conditions", "fdl"}) {
    if (args.Has(flag)) {
      std::cerr << "--" << flag
                << " needs the whole log in memory; materialize first "
                   "(procmine convert <store> <log>) or mine the text log\n";
      return kExitUsage;
    }
  }
  auto limits = BudgetLimitsFromArgs(args);
  if (!limits.ok()) return Fail(limits.status());
  RunBudget budget(*limits);
  DegradationInfo degradation;
  budget.Start();
  obs::TelemetryBudgetScope telemetry_budget(&budget);

  auto policy = RecoveryFlag(args);
  if (!policy.ok()) return Fail(policy.status());
  auto store_options = StoreOptionsFromArgs(args, *policy, &budget);
  if (!store_options.ok()) return Fail(store_options.status());
  auto store = SegmentStore::Open(dir, *store_options);
  if (!store.ok()) return Fail(store.status());

  auto options = MinerOptionsFromArgs(args, nullptr);
  if (!options.ok()) return Fail(options.status());
  options->budget = &budget;
  options->degradation = &degradation;

  OocMineStats stats;
  auto model = OutOfCoreMiner(*options).Mine(&*store, &stats);
  if (!model.ok()) return Fail(model.status());
  if (args.Has("quarantine-out")) {
    Status st = WriteQuarantineFile(args.Get("quarantine-out"),
                                    store->report());
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote quarantine to %s\n",
                 args.Get("quarantine-out").c_str());
  }
  if (store->report().AnyLoss()) {
    std::fprintf(stderr, "%s", store->report().SummaryText().c_str());
  }
  std::fprintf(stderr, "mined out of core: %lld window loads over %lld "
               "executions (%lld events)\n",
               static_cast<long long>(stats.windows),
               static_cast<long long>(stats.executions),
               static_cast<long long>(stats.events));
  PrintFootprint(store->Footprint(), stderr);
  return EmitModel(*model, args, degradation);
}

/// mine <text-log> --spill-dir=DIR: stream the text log into a segment
/// store (the writer's RSS probe seals segments at the memory high-water
/// mark, so ingestion never materializes the log), then mine it out of
/// core. The store is left behind for reuse.
int CommandMineSpill(const Args& args) {
  const std::string& path = args.positional[0];
  const std::string dir = args.Get("spill-dir");
  if (IsSegmentStoreDir(path)) {
    std::cerr << "--spill-dir applies to text logs; '" << path
              << "' is already a segment store\n";
    return kExitUsage;
  }
  if (!EndsWith(path, ".bin") && !EndsWith(path, ".xes")) {
    auto limits = BudgetLimitsFromArgs(args);
    if (!limits.ok()) return Fail(limits.status());
    RunBudget budget(*limits);
    budget.Start();
    obs::TelemetryBudgetScope telemetry_budget(&budget);
    PROCMINE_PHASE("ingest.spill");
    auto policy = RecoveryFlag(args);
    if (!policy.ok()) return Fail(policy.status());
    auto store_options = StoreOptionsFromArgs(args, *policy, &budget);
    if (!store_options.ok()) return Fail(store_options.status());

    auto writer = SegmentedLogWriter::Create(dir, *store_options);
    if (!writer.ok()) return Fail(writer.status());
    IngestionReport ingestion;
    StreamOptions stream_options;
    stream_options.recovery = *policy;
    stream_options.report = &ingestion;
    auto streamed = StreamLogFile(
        path,
        [&](const Execution& exec, const ActivityDictionary& dict) {
          return writer->Append(exec, dict);
        },
        stream_options);
    if (!streamed.ok()) return Fail(streamed.status());
    Status st = writer->Finish();
    if (!st.ok()) return Fail(st);
    if (ingestion.AnyLoss()) {
      std::fprintf(stderr, "%s", ingestion.SummaryText().c_str());
    }
    std::fprintf(stderr,
                 "spilled %lld executions (%lld events) into %lld segments "
                 "at %s (%lld budget-forced seals)\n",
                 static_cast<long long>(writer->executions()),
                 static_cast<long long>(writer->events()),
                 static_cast<long long>(writer->segments_sealed()),
                 dir.c_str(), static_cast<long long>(writer->spill_seals()));
  } else {
    // Binary/XES decoding is already one bounded pass; materialize and
    // convert through the writer.
    auto log = ReadLogAuto(path, args);
    if (!log.ok()) return Fail(log.status());
    auto policy = RecoveryFlag(args);
    if (!policy.ok()) return Fail(policy.status());
    auto store_options = StoreOptionsFromArgs(args, *policy, nullptr);
    if (!store_options.ok()) return Fail(store_options.status());
    auto writer = SegmentedLogWriter::Create(dir, *store_options);
    if (!writer.ok()) return Fail(writer.status());
    Status st = writer->AppendLog(*log);
    if (st.ok()) st = writer->Finish();
    if (!st.ok()) return Fail(st);
  }
  Args store_args = args;
  store_args.positional[0] = dir;
  store_args.flags.erase("spill-dir");
  return CommandMineStore(store_args);
}

int CommandMine(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine mine <log> [--algorithm=...] "
                 "[--threshold=N|auto] [--threads=N|auto] [--chunk-size=N] "
                 "[--dot=FILE] "
                 "[--report-out=FILE] [--report-dot=FILE] [--conditions] "
                 "[--recovery=strict|skip|quarantine] [--quarantine-out=FILE] "
                 "[--deadline-ms=N] [--max-memory-mb=N] [--max-executions=N]\n"
                 "       procmine mine <store-dir> [--resident-mb=N] ...\n"
                 "       procmine mine <log> --spill-dir=DIR "
                 "[--segment-events=N] ...\n";
    return kExitUsage;
  }
  // A segment-store directory mines out of core; --spill-dir converts a
  // text log into one first. Both share the model-emitting tail.
  if (IsSegmentStoreDir(args.positional[0])) return CommandMineStore(args);
  if (args.Has("spill-dir")) return CommandMineSpill(args);
  auto limits = BudgetLimitsFromArgs(args);
  if (!limits.ok()) return Fail(limits.status());
  RunBudget budget(*limits);
  DegradationInfo degradation;
  budget.Start();  // the deadline covers ingestion too
  obs::TelemetryBudgetScope telemetry_budget(&budget);

  IngestionReport ingestion;
  obs::SetCurrentPhase("ingest");
  auto log = ReadLogAuto(args.positional[0], args, &ingestion);
  if (!log.ok()) return Fail(log.status());
  obs::SetCurrentPhase("mine");
  auto options = MinerOptionsFromArgs(args, &*log);
  if (!options.ok()) return Fail(options.status());
  options->budget = &budget;
  options->degradation = &degradation;
  ProcessMiner miner(*options);

  // --report-out / --report-dot: mine once with provenance recording and
  // reuse the report's model below instead of mining again.
  std::optional<obs::RunReport> report;
  if (args.Has("report-out") || args.Has("report-dot")) {
    auto report_options = ReportOptionsFromArgs(args, *log);
    if (!report_options.ok()) return Fail(report_options.status());
    report_options->budget = &budget;
    if (ingestion.policy != RecoveryPolicy::kStrict) {
      report_options->ingestion = &ingestion;
    }
    auto built = obs::BuildRunReport(*log, *report_options);
    if (!built.ok()) return Fail(built.status());
    report = std::move(*built);
    degradation = report->degradation;
    Status st = WriteReportArtifacts(*report, args, "report-out",
                                     "report-dot");
    if (!st.ok()) return Fail(st);
  }

  if (args.Has("conditions")) {
    auto annotated = miner.MineWithConditions(*log);
    if (!annotated.ok()) return Fail(annotated.status());
    std::cout << annotated->ToDot("mined_process");
    if (args.Has("fdl")) {
      // Export the mined model as a runnable FDL definition.
      auto reconstructed = ReconstructDefinition(*annotated, *log);
      if (!reconstructed.ok()) return Fail(reconstructed.status());
      Status st = WriteFdlFile(*reconstructed, args.Get("fdl"), "mined");
      if (!st.ok()) return Fail(st);
      std::fprintf(stderr, "wrote runnable definition to %s\n",
                   args.Get("fdl").c_str());
    }
    for (const MinedCondition& c : annotated->conditions) {
      if (c.learned) {
        std::fprintf(stderr, "condition %s -> %s: %s (holdout %.3f)\n",
                     annotated->graph.name(c.edge.from).c_str(),
                     annotated->graph.name(c.edge.to).c_str(),
                     c.rule.c_str(), c.test_accuracy);
      }
    }
    if (args.Has("dot")) {
      std::ofstream out(args.Get("dot"));
      out << annotated->ToDot("mined_process");
    }
    return FinishWithDegradation(degradation);
  }

  Result<ProcessGraph> model = report.has_value()
                                   ? Result<ProcessGraph>(
                                         std::move(report->model))
                                   : miner.Mine(*log);
  if (!model.ok()) return Fail(model.status());
  return EmitModel(*model, args, degradation);
}

int CommandCheck(const Args& args) {
  if (args.positional.empty() || !args.Has("model")) {
    std::cerr << "usage: procmine check <log> --model=EDGEFILE\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  auto model = ReadEdgeListModel(args.Get("model"));
  if (!log.ok() || !model.ok()) {
    return Fail(log.ok() ? model.status() : log.status());
  }
  // Align the model's ids with the log's dictionary by name.
  DirectedGraph aligned(log->num_activities());
  std::vector<std::string> names = log->dictionary().names();
  for (const Edge& e : model->graph().Edges()) {
    auto from = log->dictionary().Find(model->name(e.from));
    auto to = log->dictionary().Find(model->name(e.to));
    if (!from.ok() || !to.ok()) {
      // Model activity never appears in the log: extend the vertex set.
      NodeId f = from.ok() ? *from : aligned.AddNode();
      if (!from.ok()) names.push_back(model->name(e.from));
      NodeId t = to.ok() ? *to : aligned.AddNode();
      if (!to.ok()) names.push_back(model->name(e.to));
      aligned.AddEdge(f, t);
      continue;
    }
    aligned.AddEdge(*from, *to);
  }
  ProcessGraph aligned_model(std::move(aligned), names);
  ConformanceChecker checker(&aligned_model);
  ConformanceReport report = checker.CheckLog(*log);
  std::cout << report.Summary(log->dictionary());
  return report.conformal() ? kExitOk : kExitMismatch;
}

int CommandDiff(const Args& args) {
  if (args.positional.empty() || !args.Has("model")) {
    std::cerr << "usage: procmine diff <log> --model=EDGEFILE\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  auto designed = ReadEdgeListModel(args.Get("model"));
  if (!log.ok() || !designed.ok()) {
    return Fail(log.ok() ? designed.status() : log.status());
  }
  auto mined = ProcessMiner().Mine(*log);
  if (!mined.ok()) return Fail(mined.status());
  ModelDiff diff = DiffModels(*designed, *mined);
  if (args.Has("json")) {
    // Machine-readable mode: canonically sorted discrepancies as JSON, to
    // stdout or (atomically) to the named file.
    if (args.Get("json").empty()) {
      std::cout << diff.ToJson();
    } else {
      Status st = WriteFileAtomic(args.Get("json"), diff.ToJson());
      if (!st.ok()) return Fail(st);
      std::fprintf(stderr, "wrote diff to %s\n", args.Get("json").c_str());
    }
  } else {
    std::cout << diff.Summary();
  }
  return diff.structurally_equal() ? kExitOk : kExitMismatch;
}

int CommandMonitor(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine monitor <log> [--window-executions=W] "
                 "[--slide=S] [--threshold=N|auto] [--epsilon=E] "
                 "[--bound-cutoff=P] [--min-final-window=N] "
                 "[--registry-dir=DIR] [--alerts-out=FILE] "
                 "[--report-out=FILE] [--threads=N|auto] [--stream]\n";
    return kExitUsage;
  }
  const std::string& path = args.positional[0];

  DriftOptions options;
  auto window = ParseInt64(args.Get("window-executions", "100"));
  auto slide = ParseInt64(args.Get("slide", "0"));
  auto min_final = ParseInt64(args.Get("min-final-window", "0"));
  if (!window.ok() || !slide.ok() || !min_final.ok()) {
    std::cerr << "bad numeric flag\n";
    return kExitData;
  }
  options.window_executions = *window;
  options.slide = *slide;
  options.min_final_window = *min_final;
  if (options.window_executions < 2 || options.slide < 0 ||
      options.slide > options.window_executions ||
      options.min_final_window < 0) {
    std::cerr << "need --window-executions >= 2 and 0 <= --slide <= "
                 "--window-executions\n";
    return kExitUsage;
  }
  std::string threshold = args.Get("threshold", "auto");
  if (threshold == "auto") {
    options.noise_threshold = 0;  // Section 6 optimum T* per window
  } else {
    auto parsed = ParseInt64(threshold);
    if (!parsed.ok()) {
      std::cerr << "bad --threshold\n";
      return kExitData;
    }
    options.noise_threshold = *parsed;
  }
  if (args.Has("epsilon")) {
    auto epsilon = ParseDouble(args.Get("epsilon"));
    if (!epsilon.ok()) {
      std::cerr << "bad --epsilon\n";
      return kExitData;
    }
    options.epsilon = *epsilon;
  }
  if (args.Has("bound-cutoff")) {
    auto cutoff = ParseDouble(args.Get("bound-cutoff"));
    if (!cutoff.ok()) {
      std::cerr << "bad --bound-cutoff\n";
      return kExitData;
    }
    options.bound_cutoff = *cutoff;
  }

  std::optional<obs::ModelRegistry> registry;
  if (args.Has("registry-dir")) {
    auto opened = obs::ModelRegistry::Open(args.Get("registry-dir"));
    if (!opened.ok()) return Fail(opened.status());
    registry = std::move(*opened);
  }
  DriftMonitor monitor(options,
                       registry.has_value() ? &*registry : nullptr);

  // --stream scans text logs execution-by-execution in bounded memory;
  // the default path parses the whole log first (sharded across --threads).
  // The monitor mines sequentially either way, so registry, alerts, and
  // report are byte-identical for both paths and any thread count.
  obs::SetCurrentPhase("monitor.ingest");
  if (args.Has("stream")) {
    if (EndsWith(path, ".bin") || EndsWith(path, ".xes")) {
      std::cerr << "--stream applies to text logs only\n";
      return kExitUsage;
    }
    auto policy = RecoveryFlag(args);
    if (!policy.ok()) return Fail(policy.status());
    StreamOptions stream_options;
    stream_options.recovery = *policy;
    auto stats = StreamLogFile(
        path,
        [&monitor](const Execution& exec, const ActivityDictionary& dict) {
          return monitor.Add(exec, dict);
        },
        stream_options);
    if (!stats.ok()) return Fail(stats.status());
  } else {
    auto log = ReadLogAuto(path, args);
    if (!log.ok()) return Fail(log.status());
    Status st = monitor.AddLog(*log);
    if (!st.ok()) return Fail(st);
  }
  Status st = monitor.Finish();
  if (!st.ok()) return Fail(st);

  // Deterministic JSON-lines alert feed.
  std::string feed;
  for (const DriftAlert& alert : monitor.alerts()) {
    feed += alert.ToJsonLine();
  }
  if (args.Has("alerts-out")) {
    st = WriteFileAtomic(args.Get("alerts-out"), feed);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %zu alerts to %s\n", monitor.alerts().size(),
                 args.Get("alerts-out").c_str());
  } else {
    std::cout << feed;
  }

  DriftReport report = monitor.BuildReport(path);
  if (args.Has("report-out")) {
    st = WriteFileAtomic(args.Get("report-out"), report.ToJson());
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote drift report to %s\n",
                 args.Get("report-out").c_str());
  }
  std::fprintf(stderr,
               "monitored %lld executions in %lld windows: %zu alerts%s\n",
               static_cast<long long>(monitor.num_executions()),
               static_cast<long long>(monitor.num_windows()),
               monitor.alerts().size(),
               registry.has_value()
                   ? StrFormat(", registry at v%lld",
                               static_cast<long long>(
                                   registry->latest_version()))
                         .c_str()
                   : "");
  // Like check/diff: a negative verdict (drift found) is exit 1, so scripts
  // can tell "the process moved" from "the monitor broke".
  return report.drift_detected() ? kExitMismatch : kExitOk;
}

int CommandStats(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine stats <log|store-dir>\n";
    return 2;
  }
  // A segment store reports its footprint from the manifest alone — no
  // segment is decoded, so this stays cheap at any store size.
  if (IsSegmentStoreDir(args.positional[0])) {
    auto policy = RecoveryFlag(args);
    if (!policy.ok()) return Fail(policy.status());
    auto store_options = StoreOptionsFromArgs(args, *policy, nullptr);
    if (!store_options.ok()) return Fail(store_options.status());
    auto store = SegmentStore::Open(args.positional[0], *store_options);
    if (!store.ok()) return Fail(store.status());
    SegmentStoreFootprint fp = store->Footprint();
    std::printf("segment store %s\n", args.positional[0].c_str());
    std::printf("  activities:       %d\n", store->dictionary().size());
    std::printf("  segments:         %lld\n",
                static_cast<long long>(fp.segments));
    std::printf("  executions:       %lld\n",
                static_cast<long long>(fp.executions));
    std::printf("  events:           %lld\n",
                static_cast<long long>(fp.events));
    std::printf("  on-disk bytes:    %lld (%.1f MiB)\n",
                static_cast<long long>(fp.disk_bytes),
                static_cast<double>(fp.disk_bytes) / (1 << 20));
    std::printf("  decoded estimate: %lld (%.1f MiB, %.2fx on-disk)\n",
                static_cast<long long>(fp.estimated_memory_bytes),
                static_cast<double>(fp.estimated_memory_bytes) / (1 << 20),
                fp.CompressionRatio());
    std::printf("  resident bound:   %.1f MiB (%lld segments resident, "
                "%lld loads, %lld hits, %lld evictions)\n",
                static_cast<double>(fp.max_resident_bytes) / (1 << 20),
                static_cast<long long>(fp.resident_segments),
                static_cast<long long>(fp.loads),
                static_cast<long long>(fp.cache_hits),
                static_cast<long long>(fp.evictions));
    std::printf("  reader cache:     max_resident_bytes=%lld recovery=%s\n",
                static_cast<long long>(fp.max_resident_bytes),
                std::string(RecoveryPolicyName(store_options->recovery))
                    .c_str());

    // Per-segment damage table from the manifest plus a stat() per file —
    // still no segment is decoded, so operators can size the damage of a
    // torn store without paying for a mine. --verify-crc additionally
    // checksums each file's payload (reads bytes, decodes nothing).
    const bool verify_crc = args.Has("verify-crc");
    int64_t damaged = 0;
    int64_t executions_at_risk = 0;
    std::printf("  segments (executions, disk bytes, status%s):\n",
                verify_crc ? "; --verify-crc on" : "");
    for (const SegmentInfo& info : store->segments()) {
      const std::string path = args.positional[0] + "/" + info.file;
      std::string status = "ok";
      struct stat st;
      if (::stat(path.c_str(), &st) != 0) {
        status = "missing";
      } else if (st.st_size != info.disk_bytes) {
        status = StrFormat("size-mismatch (%lld on disk, manifest %lld)",
                           static_cast<long long>(st.st_size),
                           static_cast<long long>(info.disk_bytes));
      } else if (verify_crc) {
        auto mapped = MappedFile::Open(path);
        if (!mapped.ok()) {
          status = StrFormat("unreadable (%s)",
                             mapped.status().message().c_str());
        } else {
          Status crc = segment_internal::VerifySegmentChecksum(mapped->data());
          if (!crc.ok()) status = std::string(crc.message());
        }
      }
      if (status != "ok") {
        ++damaged;
        executions_at_risk += info.executions;
      }
      std::printf("    %-24s %10lld %12lld  %s\n", info.file.c_str(),
                  static_cast<long long>(info.executions),
                  static_cast<long long>(info.disk_bytes), status.c_str());
    }
    if (damaged > 0) {
      std::printf("  damage:           %lld of %lld segments damaged, up to "
                  "%lld executions at risk (mine with --recovery=skip or "
                  "quarantine to salvage)\n",
                  static_cast<long long>(damaged),
                  static_cast<long long>(fp.segments),
                  static_cast<long long>(executions_at_risk));
    }
    return 0;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  if (!log.ok()) return Fail(log.status());
  LogStats stats = ComputeLogStats(*log);
  std::cout << stats.ToString(log->dictionary());
  std::vector<LogIssue> issues = ValidateLog(*log);
  if (issues.empty()) {
    std::cout << "validation: clean\n";
  } else {
    std::cout << "validation: " << issues.size() << " issues\n";
    for (const LogIssue& issue : issues) {
      std::cout << "  " << issue.process_instance << ": "
                << ToString(issue.kind) << " " << issue.detail << "\n";
    }
  }
  return 0;
}

/// `procmine top <status-file>`: one-shot pretty-printer for the heartbeat
/// file a `--status-file` run keeps rewriting. Exit 0 when the run looks
/// alive, 1 when the heartbeat is stale (likely hung or dead), 3 when the
/// file is unreadable or unparseable.
int CommandTop(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine top <status-file>\n";
    return kExitUsage;
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    return Fail(Status::IOError(
        StrFormat("cannot read status file %s", args.positional[0].c_str())));
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto doc = json::Parse(text);
  if (!doc.ok()) return Fail(doc.status());

  auto num = [](const json::Value* obj, std::string_view key) -> int64_t {
    if (obj == nullptr) return 0;
    const json::Value* v = obj->Find(key);
    return v != nullptr && v->is_number() ? v->AsInt64() : 0;
  };
  auto str = [](const json::Value* obj, std::string_view key) -> std::string {
    if (obj == nullptr) return "";
    const json::Value* v = obj->Find(key);
    return v != nullptr && v->is_string() ? v->AsString() : "";
  };
  auto mib = [](int64_t bytes) {
    return static_cast<double>(bytes) / (1 << 20);
  };
  const json::Value* root = &*doc;
  const json::Value* progress = root->Find("progress");
  const json::Value* budget = root->Find("budget");
  const json::Value* cache = root->Find("cache");
  const json::Value* process = root->Find("process");

  const int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::system_clock::now()
                                 .time_since_epoch())
                             .count();
  const int64_t heartbeat_ms = num(root, "heartbeat_unix_ms");
  const int64_t interval_ms = std::max<int64_t>(num(root, "interval_ms"), 1);
  const int64_t age_ms = std::max<int64_t>(now_ms - heartbeat_ms, 0);
  // A live sampler rewrites the file every interval; allow generous jitter
  // before declaring the run hung.
  const bool stale = age_ms > std::max<int64_t>(4 * interval_ms, 2000);

  std::printf("procmine pid %lld  %s %s\n",
              static_cast<long long>(num(root, "pid")),
              str(root, "command").c_str(), str(root, "source").c_str());
  std::printf("  phase:     %-24s heartbeat %.1fs ago%s\n",
              str(root, "phase").c_str(),
              static_cast<double>(age_ms) / 1000.0,
              stale ? "  ** STALE: run may be hung or dead **" : "");
  std::printf("  uptime:    %.1fs  sample %lld  interval %lldms\n",
              static_cast<double>(num(root, "uptime_ms")) / 1000.0,
              static_cast<long long>(num(root, "seq")),
              static_cast<long long>(interval_ms));
  const int64_t total = num(progress, "executions_total");
  const int64_t scanned = num(progress, "executions_scanned");
  if (total > 0) {
    std::printf("  progress:  %lld executions read, %lld/%lld scanned "
                "(%.1f%%), %lld/%lld windows\n",
                static_cast<long long>(num(progress, "executions_read")),
                static_cast<long long>(scanned),
                static_cast<long long>(total),
                100.0 * static_cast<double>(scanned) /
                    static_cast<double>(total),
                static_cast<long long>(num(progress, "windows_visited")),
                static_cast<long long>(num(progress, "windows_total")));
  } else {
    std::printf("  progress:  %lld executions read, %lld scanned\n",
                static_cast<long long>(num(progress, "executions_read")),
                static_cast<long long>(scanned));
  }
  if (budget != nullptr && budget->is_object()) {
    std::string exhausted = str(budget, "exhausted");
    std::printf("  budget:    deadline %lldms (headroom %lldms), "
                "memory %.1f MiB (headroom %.1f MiB), exhausted: %s\n",
                static_cast<long long>(num(budget, "deadline_ms")),
                static_cast<long long>(num(budget, "deadline_headroom_ms")),
                mib(num(budget, "max_memory_bytes")),
                mib(num(budget, "memory_headroom_bytes")),
                exhausted.empty() ? "none" : exhausted.c_str());
  }
  if (cache != nullptr && cache->is_object()) {
    std::printf("  cache:     %.1f MiB resident, %lld loads, %lld hits, "
                "%lld evictions, %lld spill seals\n",
                mib(num(cache, "resident_bytes")),
                static_cast<long long>(num(cache, "loads")),
                static_cast<long long>(num(cache, "hits")),
                static_cast<long long>(num(cache, "evictions")),
                static_cast<long long>(num(cache, "spill_seals")));
    if (num(cache, "salvage_events") > 0) {
      std::printf("  salvage:   %lld events, %lld salvaged, %lld lost\n",
                  static_cast<long long>(num(cache, "salvage_events")),
                  static_cast<long long>(num(cache, "salvaged_executions")),
                  static_cast<long long>(num(cache, "lost_executions")));
    }
  }
  if (process != nullptr && process->is_object()) {
    const json::Value* cpu_user = process->Find("cpu_user_s");
    const json::Value* cpu_sys = process->Find("cpu_system_s");
    const double cpu =
        (cpu_user != nullptr && cpu_user->is_number() ? cpu_user->AsDouble()
                                                      : 0.0) +
        (cpu_sys != nullptr && cpu_sys->is_number() ? cpu_sys->AsDouble()
                                                    : 0.0);
    std::printf("  process:   rss %.1f MiB, cpu %.1fs, %lld threads, "
                "%lld fds, io read %.1f MiB written %.1f MiB\n",
                mib(num(process, "rss_bytes")), cpu,
                static_cast<long long>(num(process, "threads")),
                static_cast<long long>(num(process, "open_fds")),
                mib(std::max<int64_t>(num(process, "io_read_bytes"), 0)),
                mib(std::max<int64_t>(num(process, "io_write_bytes"), 0)));
  }
  return stale ? kExitMismatch : kExitOk;
}

int CommandVariants(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine variants <log> [--top=K]\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  if (!log.ok()) return Fail(log.status());
  auto top = ParseInt64(args.Get("top", "20"));
  if (!top.ok()) {
    std::cerr << "bad --top\n";
    return kExitData;
  }
  std::vector<int64_t> multiplicity;
  EventLog variants = DeduplicateSequences(*log, &multiplicity);
  // Sort variant indices by multiplicity, descending.
  std::vector<size_t> order(variants.num_executions());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return multiplicity[a] > multiplicity[b];
  });
  std::printf("%zu executions, %zu distinct variants\n",
              log->num_executions(), variants.num_executions());
  for (size_t rank = 0;
       rank < order.size() && rank < static_cast<size_t>(*top); ++rank) {
    const Execution& exec = variants.execution(order[rank]);
    std::string flat;
    for (ActivityId a : exec.Sequence()) {
      if (!flat.empty()) flat += " ";
      flat += variants.dictionary().Name(a);
    }
    std::printf("%6lld x  %s\n",
                static_cast<long long>(multiplicity[order[rank]]),
                flat.c_str());
  }
  return 0;
}

int CommandExplain(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine explain <log> [--edge=From,To] "
                 "[--threshold=N]\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  if (!log.ok()) return Fail(log.status());
  GeneralDagMinerOptions options;
  auto threshold = ParseInt64(args.Get("threshold", "1"));
  if (!threshold.ok()) {
    std::cerr << "bad --threshold\n";
    return kExitData;
  }
  options.noise_threshold = *threshold;
  auto trace = TraceGeneralDagMining(*log, options);
  if (!trace.ok()) return Fail(trace.status());
  if (args.Has("edge")) {
    std::vector<std::string> parts = Split(args.Get("edge"), ',');
    if (parts.size() != 2) {
      std::cerr << "--edge expects From,To\n";
      return 2;
    }
    auto from = log->dictionary().Find(parts[0]);
    auto to = log->dictionary().Find(parts[1]);
    if (!from.ok() || !to.ok()) {
      std::cerr << "unknown activity in --edge\n";
      return kExitData;
    }
    std::cout << trace->ExplainEdge(log->dictionary(), *from, *to);
    return 0;
  }
  std::cout << trace->Narrate(log->dictionary());
  return 0;
}

int CommandPerf(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine perf <log> [--dot=FILE]\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  if (!log.ok()) return Fail(log.status());
  auto model = ProcessMiner().Mine(*log);
  if (!model.ok()) return Fail(model.status());
  PerformanceReport report = AnalyzePerformance(*model, *log);
  std::cout << report.Summary(log->dictionary());
  if (args.Has("dot")) {
    std::ofstream out(args.Get("dot"));
    if (!out) {
      std::cerr << "cannot write " << args.Get("dot") << "\n";
      return kExitData;
    }
    out << PerformanceDot(*model, report);
  }
  return 0;
}

int CommandNoise(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine noise <log>\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  if (!log.ok()) return Fail(log.status());
  double epsilon = EstimateNoiseRate(*log);
  std::printf("estimated out-of-order rate (epsilon): %.4f\n", epsilon);
  std::printf("suggested threshold T for m=%zu executions: %lld\n",
              log->num_executions(),
              static_cast<long long>(SuggestNoiseThreshold(*log)));
  return 0;
}

int CommandReport(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine report <log> [--algorithm=...] "
                 "[--threshold=N|auto] [--threads=N|auto] [--chunk-size=N] "
                 "[--out=FILE] "
                 "[--dot=FILE] [--sweep=T1,T2,...] [--unstable-cutoff=P] "
                 "[--recovery=strict|skip|quarantine] [--quarantine-out=FILE] "
                 "[--deadline-ms=N] [--max-memory-mb=N] [--max-executions=N]\n";
    return kExitUsage;
  }
  // Reports are built from recorded counters, so recording must be on even
  // without --metrics-out.
  obs::SetMetricsEnabled(true);
  auto limits = BudgetLimitsFromArgs(args);
  if (!limits.ok()) return Fail(limits.status());
  RunBudget budget(*limits);
  budget.Start();
  obs::TelemetryBudgetScope telemetry_budget(&budget);
  PROCMINE_PHASE("report.build");
  IngestionReport ingestion;
  auto log = ReadLogAuto(args.positional[0], args, &ingestion);
  if (!log.ok()) return Fail(log.status());
  auto options = ReportOptionsFromArgs(args, *log);
  if (!options.ok()) return Fail(options.status());
  options->budget = &budget;
  if (ingestion.policy != RecoveryPolicy::kStrict) {
    options->ingestion = &ingestion;
  }
  auto report = obs::BuildRunReport(*log, *options);
  if (!report.ok()) return Fail(report.status());
  Status st = WriteReportArtifacts(*report, args, "out", "dot");
  if (!st.ok()) return Fail(st);
  std::cout << report->SummaryText() << "\n"
            << report->SensitivityTableText();
  return FinishWithDegradation(report->degradation);
}

/// `synth --drift=KIND`: a known process whose behaviour changes at --cut,
/// for measuring drift-detection latency (see synth/drift_scenario.h).
int CommandSynthDrift(const Args& args) {
  auto kind = ParseDriftKind(args.Get("drift"));
  if (!kind.ok()) return Fail(kind.status());
  DriftScenarioOptions options;
  options.kind = *kind;
  auto executions = ParseInt64(args.Get("executions"));
  auto seed = ParseInt64(args.Get("seed", "1"));
  if (!executions.ok() || !seed.ok()) {
    std::cerr << "bad numeric flag\n";
    return kExitData;
  }
  options.num_executions = *executions;
  options.seed = static_cast<uint64_t>(*seed);
  options.cut = options.num_executions / 2;
  if (args.Has("cut")) {
    auto cut = ParseInt64(args.Get("cut"));
    if (!cut.ok()) {
      std::cerr << "bad --cut\n";
      return kExitData;
    }
    options.cut = *cut;
  }
  if (args.Has("swap-rate")) {
    auto rate = ParseDouble(args.Get("swap-rate"));
    if (!rate.ok()) {
      std::cerr << "bad --swap-rate\n";
      return kExitData;
    }
    options.swap_rate = *rate;
  }
  if (args.Has("shift-from")) {
    auto p = ParseDouble(args.Get("shift-from"));
    if (!p.ok()) {
      std::cerr << "bad --shift-from\n";
      return kExitData;
    }
    options.shift_from = *p;
  }
  if (args.Has("shift-to")) {
    auto p = ParseDouble(args.Get("shift-to"));
    if (!p.ok()) {
      std::cerr << "bad --shift-to\n";
      return kExitData;
    }
    options.shift_to = *p;
  }
  if (args.Has("ramp")) {
    auto ramp = ParseInt64(args.Get("ramp"));
    if (!ramp.ok()) {
      std::cerr << "bad --ramp\n";
      return kExitData;
    }
    options.ramp_executions = *ramp;
  }
  auto log = GenerateDriftLog(options);
  if (!log.ok()) return Fail(log.status());
  Status st = WriteLogAuto(*log, args.Get("out"));
  if (!st.ok()) return Fail(st);
  std::fprintf(stderr,
               "wrote %zu executions (drift=%s at cut %lld) to %s\n",
               log->num_executions(),
               std::string(DriftKindName(options.kind)).c_str(),
               static_cast<long long>(options.cut), args.Get("out").c_str());
  return 0;
}

/// synth --stream-out=DIR: the deterministic streamed generator. Walks the
/// same truth DAG with the same RNG as --out, but hands each execution
/// straight to a SegmentedLogWriter — the log is never materialized, so
/// --events can run to 10^9 on a bounded-memory container. Sized by
/// --executions, --events (raw events; stops at whichever comes first), or
/// both.
int CommandSynthStream(const Args& args) {
  if (!args.Has("activities") ||
      (!args.Has("executions") && !args.Has("events"))) {
    std::cerr << "usage: procmine synth --activities=N --stream-out=DIR "
                 "(--executions=M | --events=E) [--density=D] [--seed=S] "
                 "[--segment-events=N] [--max-memory-mb=N] "
                 "[--truth-dot=FILE]\n";
    return kExitUsage;
  }
  auto activities = ParseInt64(args.Get("activities"));
  auto seed = ParseInt64(args.Get("seed", "1"));
  if (!activities.ok() || !seed.ok()) {
    std::cerr << "bad numeric flag\n";
    return kExitData;
  }
  int64_t max_events = 0;
  size_t num_executions = std::numeric_limits<size_t>::max() / 2;
  if (args.Has("events")) {
    auto events = ParseInt64(args.Get("events"));
    if (!events.ok() || *events <= 0) {
      std::cerr << "bad --events\n";
      return kExitData;
    }
    max_events = *events;
  }
  if (args.Has("executions")) {
    auto executions = ParseInt64(args.Get("executions"));
    if (!executions.ok() || *executions <= 0) {
      std::cerr << "bad --executions\n";
      return kExitData;
    }
    num_executions = static_cast<size_t>(*executions);
  }

  RandomDagOptions dag_options;
  dag_options.num_activities = static_cast<int32_t>(*activities);
  dag_options.seed = static_cast<uint64_t>(*seed);
  if (args.Has("density")) {
    auto density = ParseDouble(args.Get("density"));
    if (!density.ok()) {
      std::cerr << "bad --density\n";
      return kExitData;
    }
    dag_options.edge_density = *density;
  } else {
    dag_options.edge_density = PaperEdgeDensity(dag_options.num_activities);
  }
  ProcessGraph truth = GenerateRandomDag(dag_options);

  auto limits = BudgetLimitsFromArgs(args);
  if (!limits.ok()) return Fail(limits.status());
  RunBudget budget(*limits);
  budget.Start();
  obs::TelemetryBudgetScope telemetry_budget(&budget);
  PROCMINE_PHASE("synth.stream");
  auto store_options =
      StoreOptionsFromArgs(args, RecoveryPolicy::kStrict, &budget);
  if (!store_options.ok()) return Fail(store_options.status());
  auto writer =
      SegmentedLogWriter::Create(args.Get("stream-out"), *store_options);
  if (!writer.ok()) return Fail(writer.status());

  ActivityDictionary dict;
  for (NodeId v = 0; v < truth.num_activities(); ++v) {
    dict.Intern(truth.name(v));
  }
  WalkLogOptions log_options;
  log_options.num_executions = num_executions;
  log_options.seed = static_cast<uint64_t>(*seed) + 1;
  StreamWalkStats stats;
  Status st = StreamWalkLog(
      truth, log_options, max_events,
      [&](Execution&& exec) { return writer->Append(exec, dict); }, &stats);
  if (st.ok()) st = writer->Finish();
  if (!st.ok()) return Fail(st);
  if (args.Has("truth-dot")) {
    PROCMINE_CHECK_OK(
        WriteDotFile(truth.graph(), truth.names(), args.Get("truth-dot")));
  }
  std::fprintf(stderr,
               "streamed %lld executions (%lld events) over %d activities "
               "(%lld true edges) into %lld segments at %s "
               "(%lld budget-forced seals)\n",
               static_cast<long long>(stats.executions),
               static_cast<long long>(stats.events), truth.num_activities(),
               static_cast<long long>(truth.graph().num_edges()),
               static_cast<long long>(writer->segments_sealed()),
               args.Get("stream-out").c_str(),
               static_cast<long long>(writer->spill_seals()));
  return 0;
}

int CommandSynth(const Args& args) {
  if (args.Has("stream-out")) return CommandSynthStream(args);
  if (args.Has("drift")) {
    if (!args.Has("executions") || !args.Has("out")) {
      std::cerr << "usage: procmine synth --drift=none|edge_added|"
                   "edge_removed|condition_flipped|frequency_shift "
                   "--executions=M [--cut=N] [--seed=S] [--swap-rate=E] "
                   "[--shift-from=P] [--shift-to=P] [--ramp=N] --out=FILE\n";
      return 2;
    }
    return CommandSynthDrift(args);
  }
  if (!args.Has("activities") || !args.Has("executions") ||
      !args.Has("out")) {
    std::cerr << "usage: procmine synth --activities=N --executions=M "
                 "[--density=D] [--seed=S] --out=FILE [--truth-dot=FILE] "
                 "(or: synth --drift=KIND --executions=M --out=FILE)\n";
    return 2;
  }
  auto activities = ParseInt64(args.Get("activities"));
  auto executions = ParseInt64(args.Get("executions"));
  auto seed = ParseInt64(args.Get("seed", "1"));
  if (!activities.ok() || !executions.ok() || !seed.ok()) {
    std::cerr << "bad numeric flag\n";
    return kExitData;
  }
  RandomDagOptions dag_options;
  dag_options.num_activities = static_cast<int32_t>(*activities);
  dag_options.seed = static_cast<uint64_t>(*seed);
  if (args.Has("density")) {
    auto density = ParseDouble(args.Get("density"));
    if (!density.ok()) {
      std::cerr << "bad --density\n";
      return kExitData;
    }
    dag_options.edge_density = *density;
  } else {
    dag_options.edge_density =
        PaperEdgeDensity(dag_options.num_activities);
  }
  ProcessGraph truth = GenerateRandomDag(dag_options);
  WalkLogOptions log_options;
  log_options.num_executions = static_cast<size_t>(*executions);
  log_options.seed = static_cast<uint64_t>(*seed) + 1;
  auto log = GenerateWalkLog(truth, log_options);
  if (!log.ok()) return Fail(log.status());
  Status st = WriteLogAuto(*log, args.Get("out"));
  if (!st.ok()) return Fail(st);
  if (args.Has("truth-dot")) {
    PROCMINE_CHECK_OK(WriteDotFile(truth.graph(), truth.names(),
                                   args.Get("truth-dot")));
  }
  std::fprintf(stderr,
               "wrote %zu executions over %d activities (%lld true edges) "
               "to %s\n",
               log->num_executions(), truth.num_activities(),
               static_cast<long long>(truth.graph().num_edges()),
               args.Get("out").c_str());
  return 0;
}

int CommandSimulate(const Args& args) {
  if (!args.Has("definition") || !args.Has("executions") ||
      !args.Has("out")) {
    std::cerr << "usage: procmine simulate --definition=FDL "
                 "--executions=M [--seed=S] [--cyclic] [--agents=K "
                 "--max-duration=D] --out=FILE\n";
    return 2;
  }
  bool cyclic = args.Has("cyclic");
  auto def = ReadFdlFile(args.Get("definition"), !cyclic);
  if (!def.ok()) return Fail(def.status());
  auto executions = ParseInt64(args.Get("executions"));
  auto seed = ParseInt64(args.Get("seed", "1"));
  if (!executions.ok() || !seed.ok()) {
    std::cerr << "bad numeric flag\n";
    return kExitData;
  }
  EngineOptions options;
  if (cyclic) options.mode = ExecutionMode::kTokenFire;
  if (args.Has("agents")) {
    auto agents = ParseInt64(args.Get("agents"));
    auto max_duration = ParseInt64(args.Get("max-duration", "10"));
    if (!agents.ok() || !max_duration.ok()) {
      std::cerr << "bad numeric flag\n";
      return kExitData;
    }
    options.num_agents = static_cast<int>(*agents);
    options.min_duration = 1;
    options.max_duration = *max_duration;
  }
  Engine engine(&*def, options);
  auto log = engine.GenerateLog(static_cast<size_t>(*executions),
                                static_cast<uint64_t>(*seed));
  if (!log.ok()) return Fail(log.status());
  Status st = WriteLogAuto(*log, args.Get("out"));
  if (!st.ok()) return Fail(st);
  std::fprintf(stderr, "simulated %zu executions to %s\n",
               log->num_executions(), args.Get("out").c_str());
  return 0;
}

int CommandPatterns(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: procmine patterns <log> [--support=N] "
                 "[--max-length=K] [--maximal]\n";
    return 2;
  }
  auto log = ReadLogAuto(args.positional[0], args);
  if (!log.ok()) return Fail(log.status());
  SequentialPatternOptions options;
  auto support = ParseInt64(args.Get("support", "2"));
  auto max_length = ParseInt64(args.Get("max-length", "6"));
  if (!support.ok() || !max_length.ok()) {
    std::cerr << "bad numeric flag\n";
    return kExitData;
  }
  options.min_support = *support;
  options.max_length = static_cast<int>(*max_length);
  options.max_patterns = 100000;
  auto patterns = MineSequentialPatterns(*log, options);
  if (args.Has("maximal")) patterns = MaximalPatterns(patterns);
  for (const SequentialPattern& p : patterns) {
    std::cout << p.ToString(log->dictionary()) << "\n";
  }
  std::fprintf(stderr, "%zu patterns\n", patterns.size());
  return 0;
}

int CommandConvert(const Args& args) {
  if (args.positional.size() != 2) {
    std::cerr << "usage: procmine convert <in> <out> [--to-store "
                 "[--segment-events=N]]\n";
    return 2;
  }
  // Segment stores take part in conversion: a store input is materialized
  // (honoring --recovery salvage), --to-store writes the output as one.
  Result<EventLog> log = Status::Internal("unreachable");
  if (IsSegmentStoreDir(args.positional[0])) {
    auto policy = RecoveryFlag(args);
    if (!policy.ok()) return Fail(policy.status());
    auto store_options = StoreOptionsFromArgs(args, *policy, nullptr);
    if (!store_options.ok()) return Fail(store_options.status());
    auto store = SegmentStore::Open(args.positional[0], *store_options);
    if (!store.ok()) return Fail(store.status());
    log = store->Materialize();
    if (log.ok() && store->report().AnyLoss()) {
      std::fprintf(stderr, "%s", store->report().SummaryText().c_str());
    }
  } else {
    log = ReadLogAuto(args.positional[0], args);
  }
  if (!log.ok()) return Fail(log.status());
  if (args.Has("to-store")) {
    auto store_options =
        StoreOptionsFromArgs(args, RecoveryPolicy::kStrict, nullptr);
    if (!store_options.ok()) return Fail(store_options.status());
    auto writer =
        SegmentedLogWriter::Create(args.positional[1], *store_options);
    if (!writer.ok()) return Fail(writer.status());
    Status st = writer->AppendLog(*log);
    if (st.ok()) st = writer->Finish();
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %lld executions into %lld segments at %s\n",
                 static_cast<long long>(writer->executions()),
                 static_cast<long long>(writer->segments_sealed()),
                 args.positional[1].c_str());
    return 0;
  }
  Status st = WriteLogAuto(*log, args.positional[1]);
  if (!st.ok()) return Fail(st);
  return 0;
}

void PrintUsage() {
  std::cerr <<
      "procmine: mining process models from workflow logs\n"
      "commands:\n"
      "  mine <log|store-dir> [--algorithm=...] [--threshold=N|auto]\n"
      "             [--dot=FILE]\n"
      "             [--threads=N|auto] [--chunk-size=N] [--ascii]\n"
      "             [--conditions [--fdl=FILE]]\n"
      "             [--report-out=FILE] [--report-dot=FILE]\n"
      "             [--spill-dir=DIR [--segment-events=N]]\n"
      "             [--resident-mb=N]\n"
      "             (a segment-store directory mines out of core with\n"
      "              bounded resident memory and a byte-identical model;\n"
      "              --spill-dir streams a text log into one first)\n"
      "             (--report-out: full run report JSON — edge provenance,\n"
      "              conformance verdicts, noise-threshold sensitivity;\n"
      "              --report-dot: DOT with dropped candidates dashed gray)\n"
      "             (--threads: worker threads for the work-stealing mining\n"
      "              passes; auto = all hardware threads, 1 = sequential;\n"
      "              --chunk-size: executions per stolen chunk, 0 = auto;\n"
      "              the mined model is identical for every combination)\n"
      "  check <log> --model=EDGEFILE\n"
      "  diff <log> --model=EDGEFILE\n"
      "  stats <log|store-dir>   (stores: segment/byte/cache footprint)\n"
      "  perf <log> [--dot=FILE]\n"
      "  explain <log> [--edge=From,To] [--threshold=N]\n"
      "  variants <log> [--top=K]\n"
      "  noise <log>\n"
      "  report <log> [--algorithm=...] [--threshold=N|auto] [--out=FILE]\n"
      "         [--dot=FILE] [--chunk-size=N] [--sweep=T1,T2,...]\n"
      "         [--unstable-cutoff=P]\n"
      "  monitor <log> [--window-executions=W] [--slide=S]\n"
      "          [--threshold=N|auto] [--epsilon=E] [--bound-cutoff=P]\n"
      "          [--min-final-window=N] [--registry-dir=DIR]\n"
      "          [--alerts-out=FILE] [--report-out=FILE] [--stream]\n"
      "          (windowed drift monitoring: mines every window, keeps a\n"
      "           versioned model registry, emits a JSON-lines alert feed\n"
      "           and a schema_version-3 drift report; exit 1 = drift)\n"
      "  synth --activities=N --executions=M [--density=D] [--seed=S]\n"
      "        --out=FILE [--truth-dot=FILE]\n"
      "  synth --activities=N --stream-out=DIR (--executions=M | --events=E)\n"
      "        [--segment-events=N] [--max-memory-mb=N]\n"
      "        (streamed generator: writes a segment store directly, never\n"
      "         materializing the log; RNG-identical to --out)\n"
      "  synth --drift=none|edge_added|edge_removed|condition_flipped|\n"
      "        frequency_shift --executions=M [--cut=N] [--swap-rate=E]\n"
      "        [--shift-from=P] [--shift-to=P] [--ramp=N] [--seed=S]\n"
      "        --out=FILE   (drift scenario with a known change point)\n"
      "  simulate --definition=FDL --executions=M [--seed=S] [--cyclic]\n"
      "           [--agents=K --max-duration=D] --out=FILE\n"
      "  patterns <log> [--support=N] [--max-length=K] [--maximal]\n"
      "  convert <in> <out> [--to-store [--segment-events=N]]\n"
      "  top <status-file>   (pretty-print the heartbeat a --status-file\n"
      "      run keeps rewriting; exit 0 fresh, 1 stale)\n"
      "  serve --socket=PATH [--journal-dir=DIR] [--registry-root=DIR]\n"
      "        [--threads=N] [--queue-batches=N] [--max-frame-mb=N]\n"
      "        [--max-queued-mb=N] [--idle-timeout-ms=N] [--max-sessions=N]\n"
      "        [--no-fsync] [--max-memory-mb=N global shed high-water]\n"
      "        [session defaults: --threshold=N --recovery=POLICY\n"
      "         --session-deadline-ms=N --session-max-memory-mb=N\n"
      "         --session-max-executions=N]\n"
      "        (streaming mining daemon; SIGTERM drains gracefully;\n"
      "         docs/serving.md)\n"
      "  client --socket=PATH --session=NAME [log] [--batch-executions=N]\n"
      "         [--query | --query-out=FILE] [--close] [--ping] [--garbage]\n"
      "         (serve-protocol client; --garbage runs hostile-frame attacks\n"
      "          and exits 0 iff the server survives them all)\n"
      "global flags (any command): --trace-out=FILE (Chrome trace JSON +\n"
      "per-phase summary), --metrics-out=FILE (counter snapshot JSON),\n"
      "--log-level=debug|info|warning|error, --log-json (JSON-lines logs)\n"
      "telemetry flags (any command; docs/observability.md):\n"
      "--telemetry-out=FILE (JSONL time-series), --metrics-openmetrics=FILE\n"
      "(OpenMetrics 1.0 exposition, atomically rewritten each sample),\n"
      "--status-file=FILE (heartbeat/status JSON for `procmine top`),\n"
      "--telemetry-interval-ms=N (default 250)\n"
      "robustness flags (any log-reading command; docs/robustness.md):\n"
      "--recovery=strict|skip|quarantine, --quarantine-out=FILE,\n"
      "--deadline-ms=N, --max-memory-mb=N, --max-executions=N\n"
      "exit codes: 0 ok, 1 analysis mismatch, 2 usage, 3 data error,\n"
      "4 budget-degraded, 5 internal\n"
      "log formats by extension: .bin (binary), .xes (XES XML), .csv\n"
      "(export only), anything else = text event format\n";
}

/// Applies --log-level / --log-json / --trace-out / --metrics-out before the
/// command runs, and starts the background telemetry sampler when any of
/// --telemetry-out / --metrics-openmetrics / --status-file is present.
/// Returns false (after printing why) on a malformed value.
bool SetUpObservability(const std::string& command, const Args& args) {
  if (args.Has("log-level")) {
    LogLevel level;
    if (!ParseLogLevel(args.Get("log-level"), &level)) {
      std::cerr << "bad --log-level: " << args.Get("log-level")
                << " (want debug|info|warning|error)\n";
      return false;
    }
    SetLogLevel(level);
  }
  if (args.Has("log-json")) SetLogFormat(LogFormat::kJsonLines);
  if (args.Has("trace-out")) {
    obs::SetTracingEnabled(true);
    // A trace embeds counter totals, so tracing implies metrics.
    obs::SetMetricsEnabled(true);
  }
  if (args.Has("metrics-out")) obs::SetMetricsEnabled(true);
  // Run reports embed a metrics snapshot, so the flags imply recording.
  if (args.Has("report-out") || args.Has("report-dot")) {
    obs::SetMetricsEnabled(true);
  }
  if (args.Has("telemetry-out") || args.Has("metrics-openmetrics") ||
      args.Has("status-file")) {
    obs::TelemetryOptions topt;
    topt.jsonl_path = args.Get("telemetry-out");
    topt.openmetrics_path = args.Get("metrics-openmetrics");
    topt.status_path = args.Get("status-file");
    topt.command = command;
    if (!args.positional.empty()) topt.source = args.positional[0];
    if (args.Has("telemetry-interval-ms")) {
      auto interval = ParseInt64(args.Get("telemetry-interval-ms"));
      if (!interval.ok()) {
        std::cerr << interval.status().ToString() << "\n";
        return false;
      }
      topt.interval_ms = *interval;
    }
    // The sampler reads the registry, so telemetry implies metrics.
    obs::SetMetricsEnabled(true);
    Status st = obs::StartGlobalTelemetry(topt);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return false;
    }
  }
  return true;
}

/// Writes the telemetry / trace / metrics files after the command finished.
/// Failures are reported but do not change the command's exit code semantics
/// beyond 1. Runs on every exit path out of Dispatch — including the
/// budget-degraded one — so a run that dies on exit 4 still leaves its
/// artifacts behind.
int FlushObservability(const Args& args, int rc) {
  // Stop the sampler first: its final sample captures the end-of-run counter
  // totals, and the files must be sealed before we report them written.
  if (obs::GlobalTelemetry() != nullptr) {
    Status st = obs::StopGlobalTelemetry();
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      if (rc == 0) rc = ExitCodeForStatus(st);
    } else {
      for (const char* flag :
           {"telemetry-out", "metrics-openmetrics", "status-file"}) {
        if (args.Has(flag)) {
          std::fprintf(stderr, "wrote %s to %s\n", flag,
                       args.Get(flag).c_str());
        }
      }
    }
  }
  if (args.Has("trace-out")) {
    Status st = WriteFileAtomic(args.Get("trace-out"),
                                obs::TraceRecorder::Get().ChromeTraceJson());
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return rc == 0 ? ExitCodeForStatus(st) : rc;
    }
    std::fprintf(stderr, "wrote trace to %s\n%s",
                 args.Get("trace-out").c_str(),
                 obs::TraceRecorder::Get().SummaryText().c_str());
    obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
    for (const auto& h : snapshot.histograms) {
      std::fprintf(stderr, "%s: count=%lld p50=%.6g p95=%.6g p99=%.6g\n",
                   h.name.c_str(), static_cast<long long>(h.total_count),
                   h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
    }
  }
  if (args.Has("metrics-out")) {
    Status st = WriteFileAtomic(args.Get("metrics-out"),
                                obs::MetricsRegistry::Get().Snapshot().ToJson());
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return rc == 0 ? ExitCodeForStatus(st) : rc;
    }
    std::fprintf(stderr, "wrote metrics to %s\n",
                 args.Get("metrics-out").c_str());
  }
  return rc;
}

// ---------------------------------------------------------------------------
// serve / client — the streaming mining server (docs/serving.md).

std::atomic<bool> g_serve_stop{false};

void ServeStopHandler(int) { g_serve_stop.store(true); }

/// Builds the per-session spec from --threshold, --recovery, and the
/// --session-* budget flags (the plain --deadline-ms family is the GLOBAL
/// server budget on `serve`, so sessions get their own namespace).
Result<serve::SessionSpec> SessionSpecFromArgs(const Args& args) {
  serve::SessionSpec spec;
  if (args.Has("threshold")) {
    PROCMINE_ASSIGN_OR_RETURN(spec.noise_threshold,
                              ParseInt64(args.Get("threshold")));
  }
  if (args.Has("session-deadline-ms")) {
    PROCMINE_ASSIGN_OR_RETURN(spec.limits.deadline_ms,
                              ParseInt64(args.Get("session-deadline-ms")));
  }
  if (args.Has("session-max-memory-mb")) {
    PROCMINE_ASSIGN_OR_RETURN(int64_t mb,
                              ParseInt64(args.Get("session-max-memory-mb")));
    spec.limits.max_memory_bytes = mb * (int64_t{1} << 20);
  }
  if (args.Has("session-max-executions")) {
    PROCMINE_ASSIGN_OR_RETURN(spec.limits.max_executions,
                              ParseInt64(args.Get("session-max-executions")));
  }
  PROCMINE_ASSIGN_OR_RETURN(spec.recovery, RecoveryFlag(args));
  return spec;
}

int CommandServe(const Args& args) {
  if (!args.Has("socket")) {
    std::cerr << "serve requires --socket=PATH\n";
    return kExitUsage;
  }
  serve::ServeOptions options;
  options.journal_dir = args.Get("journal-dir");
  options.registry_root = args.Get("registry-root");
  options.threads = ThreadsFlag(args);
  options.fsync_journal = !args.Has("no-fsync");
  auto int_flag = [&args](const char* key, int64_t* out) -> Status {
    if (!args.Has(key)) return Status::OK();
    PROCMINE_ASSIGN_OR_RETURN(*out, ParseInt64(args.Get(key)));
    return Status::OK();
  };
  int64_t queue_batches = options.queue_batches;
  int64_t max_frame_mb = -1;
  int64_t max_queued_mb = -1;
  Status flags_ok = Status::OK();
  if (flags_ok.ok()) flags_ok = int_flag("queue-batches", &queue_batches);
  if (flags_ok.ok()) flags_ok = int_flag("max-frame-mb", &max_frame_mb);
  if (flags_ok.ok()) flags_ok = int_flag("max-queued-mb", &max_queued_mb);
  if (flags_ok.ok()) {
    flags_ok = int_flag("idle-timeout-ms", &options.idle_timeout_ms);
  }
  if (flags_ok.ok()) flags_ok = int_flag("max-sessions", &options.max_sessions);
  if (!flags_ok.ok()) {
    std::cerr << flags_ok.ToString() << "\n";
    return kExitUsage;
  }
  options.queue_batches = static_cast<int>(queue_batches);
  if (max_frame_mb >= 0) options.max_frame_bytes = max_frame_mb << 20;
  if (max_queued_mb >= 0) options.max_queued_bytes = max_queued_mb << 20;
  Result<RunBudget::Limits> global = BudgetLimitsFromArgs(args);
  if (!global.ok()) return Fail(global.status());
  options.global_limits = *global;
  Result<serve::SessionSpec> spec = SessionSpecFromArgs(args);
  if (!spec.ok()) return Fail(spec.status());
  options.default_spec = *spec;

  // A client vanishing mid-write must cost that connection an EPIPE, not
  // the process a SIGPIPE. SIGTERM/SIGINT flip the stop flag the accept and
  // connection loops poll, turning the signal into a graceful drain.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, ServeStopHandler);
  std::signal(SIGINT, ServeStopHandler);

  serve::ServeCore core(options);
  Result<int64_t> recovered = core.RecoverFromJournals();
  if (!recovered.ok()) return Fail(recovered.status());
  if (*recovered > 0 || core.stats().journals_skipped > 0) {
    std::fprintf(stderr,
                 "recovered %lld session(s) from journals "
                 "(%lld torn tail(s) truncated, %lld journal(s) skipped)\n",
                 static_cast<long long>(*recovered),
                 static_cast<long long>(core.stats().journals_torn),
                 static_cast<long long>(core.stats().journals_skipped));
  }

  serve::SocketServer server(&core, args.Get("socket"),
                             options.max_frame_bytes, &g_serve_stop);
  Status status = server.Start();
  if (!status.ok()) return Fail(status);
  std::fprintf(stderr, "serving on %s\n", args.Get("socket").c_str());
  status = server.Serve();
  if (!status.ok()) return Fail(status);
  Status drain = core.Drain();
  const serve::ServeStats& stats = core.stats();
  std::fprintf(
      stderr,
      "drained: %lld opened, %lld recovered, %lld closed, %lld applied, "
      "%lld degraded, %lld rejected, %lld shed, %lld published\n",
      static_cast<long long>(stats.sessions_opened),
      static_cast<long long>(stats.sessions_recovered),
      static_cast<long long>(stats.sessions_closed),
      static_cast<long long>(stats.batches_applied),
      static_cast<long long>(stats.batches_degraded),
      static_cast<long long>(stats.batches_rejected),
      static_cast<long long>(stats.batches_shed),
      static_cast<long long>(stats.models_published));
  if (!drain.ok()) return Fail(drain);
  return kExitOk;
}

/// Copies executions [begin, end) into a self-contained batch log with its
/// own dictionary (a kBatch body must decode standalone).
EventLog SliceLog(const EventLog& log, size_t begin, size_t end) {
  EventLog slice;
  for (size_t i = begin; i < end; ++i) {
    const Execution& exec = log.execution(i);
    Execution copy(exec.name());
    for (const ActivityInstance& instance : exec.instances()) {
      ActivityInstance mapped = instance;
      mapped.activity =
          slice.dictionary().Intern(log.dictionary().Name(instance.activity));
      copy.Append(std::move(mapped));
    }
    slice.AddExecution(std::move(copy));
  }
  return slice;
}

/// Maps a response code to the CLI exit taxonomy.
int ExitForResponseCode(serve::ResponseCode code) {
  switch (code) {
    case serve::ResponseCode::kOk:
      return kExitOk;
    case serve::ResponseCode::kBadFrame:
      return kExitUsage;
    case serve::ResponseCode::kDataError:
    case serve::ResponseCode::kSessionClosed:
      return kExitData;
    case serve::ResponseCode::kDegraded:
      return kExitDegraded;
    default:
      return kExitInternal;
  }
}

/// Severity order for combining per-request exit codes: hard errors beat
/// degraded beats ok (mirrors FinishWithDegradation's precedence).
int WorseExit(int a, int b) {
  auto rank = [](int code) {
    switch (code) {
      case kExitInternal: return 4;
      case kExitData: return 3;
      case kExitUsage: return 2;
      case kExitDegraded: return 1;
      default: return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

void PrintAck(const char* what, const serve::ResponseFrame& response) {
  std::fprintf(stderr, "%s: %s", what,
               std::string(serve::ResponseCodeName(response.code)).c_str());
  if (response.applied_executions > 0 || response.session_executions > 0) {
    std::fprintf(stderr, " applied=%lld total=%lld",
                 static_cast<long long>(response.applied_executions),
                 static_cast<long long>(response.session_executions));
  }
  if (response.degraded) {
    std::fprintf(stderr, " degraded(resource=%s phase=%s)",
                 std::string(BudgetResourceName(response.resource)).c_str(),
                 response.cut_phase.c_str());
  }
  if (!response.detail.empty()) {
    std::fprintf(stderr, " (%s)", response.detail.c_str());
  }
  std::fprintf(stderr, "\n");
}

/// The hostile client: four malformed-stream attacks, each on a fresh
/// connection, then a ping on yet another connection to prove the server
/// survived. Exit 0 = server isolated every attack.
int RunGarbageClient(const std::string& socket_path) {
  struct Attack {
    const char* name;
    std::string bytes;
  };
  std::vector<Attack> attacks;
  {
    std::string payload = "garbage-not-a-request";
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
    frame += payload;
    PutFixed32(&frame, 0xdeadbeefu);  // wrong checksum
    attacks.push_back({"bad_checksum", std::move(frame)});
  }
  {
    std::string frame;
    PutFixed32(&frame, 0x7fffffffu);  // declares a 2 GiB payload
    attacks.push_back({"oversize_declaration", std::move(frame)});
  }
  {
    std::string frame;
    PutFixed32(&frame, 100);  // declares 100 bytes, delivers 9, hangs up
    frame += "truncated";
    attacks.push_back({"torn_frame", std::move(frame)});
  }
  {
    std::string payload;
    payload.push_back('\xff');  // valid frame, unknown request type
    payload += "junk";
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
    frame += payload;
    PutFixed32(&frame, Crc32c(payload));
    attacks.push_back({"bad_request_type", std::move(frame)});
  }
  for (const Attack& attack : attacks) {
    Result<serve::ServeClient> client = serve::ServeClient::Connect(socket_path);
    if (!client.ok()) {
      std::fprintf(stderr, "garbage[%s]: connect failed — server down? %s\n",
                   attack.name, client.status().ToString().c_str());
      return kExitData;
    }
    // Errors here are fine: the server may hang up mid-send. Half-close our
    // write side so a deliberately torn frame reads as EOF server-side.
    (void)client->SendRaw(attack.bytes);
    ::shutdown(client->fd(), SHUT_WR);
    Result<serve::ResponseFrame> response = client->ReadResponse();
    if (response.ok()) {
      std::fprintf(
          stderr, "garbage[%s]: server answered %s\n", attack.name,
          std::string(serve::ResponseCodeName(response->code)).c_str());
    } else {
      std::fprintf(stderr, "garbage[%s]: server hung up (%s)\n", attack.name,
                   response.status().ToString().c_str());
    }
  }
  Result<serve::ServeClient> probe = serve::ServeClient::Connect(socket_path);
  if (!probe.ok()) return Fail(probe.status());
  Result<serve::ResponseFrame> pong =
      probe->Call(serve::FrameType::kPing, "");
  if (!pong.ok() || pong->code != serve::ResponseCode::kOk) {
    std::fprintf(stderr, "garbage client: server did NOT survive\n");
    return kExitData;
  }
  std::fprintf(stderr, "garbage client: server survived %zu attacks\n",
               attacks.size());
  return kExitOk;
}

int CommandClient(const Args& args) {
  if (!args.Has("socket")) {
    std::cerr << "client requires --socket=PATH\n";
    return kExitUsage;
  }
  std::signal(SIGPIPE, SIG_IGN);
  const std::string socket_path = args.Get("socket");
  if (args.Has("garbage")) return RunGarbageClient(socket_path);

  Result<serve::ServeClient> connected =
      serve::ServeClient::Connect(socket_path);
  if (!connected.ok()) return Fail(connected.status());
  serve::ServeClient client = connected.MoveValueOrDie();

  if (args.Has("ping") && !args.Has("session")) {
    Result<serve::ResponseFrame> pong =
        client.Call(serve::FrameType::kPing, "");
    if (!pong.ok()) return Fail(pong.status());
    PrintAck("ping", *pong);
    return ExitForResponseCode(pong->code);
  }
  if (!args.Has("session")) {
    std::cerr << "client requires --session=NAME (or --ping / --garbage)\n";
    return kExitUsage;
  }
  const std::string session = args.Get("session");
  int exit_code = kExitOk;

  Result<serve::SessionSpec> spec = SessionSpecFromArgs(args);
  if (!spec.ok()) return Fail(spec.status());
  Result<serve::ResponseFrame> open = client.Call(
      serve::FrameType::kOpen, session, serve::EncodeSessionSpec(*spec));
  if (!open.ok()) return Fail(open.status());
  PrintAck("open", *open);
  exit_code = WorseExit(exit_code, ExitForResponseCode(open->code));

  if (!args.positional.empty()) {
    Result<EventLog> log = ReadLogAuto(args.positional[0], args);
    if (!log.ok()) return Fail(log.status());
    int64_t batch_executions =
        static_cast<int64_t>(log->num_executions());
    if (args.Has("batch-executions")) {
      Result<int64_t> parsed = ParseInt64(args.Get("batch-executions"));
      if (!parsed.ok() || *parsed <= 0) {
        std::cerr << "--batch-executions must be a positive integer\n";
        return kExitUsage;
      }
      batch_executions = *parsed;
    }
    for (size_t begin = 0; begin < log->num_executions();
         begin += static_cast<size_t>(batch_executions)) {
      size_t end = std::min(log->num_executions(),
                            begin + static_cast<size_t>(batch_executions));
      std::string body = EncodeBinaryLog(SliceLog(*log, begin, end));
      Result<serve::ResponseFrame> ack =
          client.Call(serve::FrameType::kBatch, session, body);
      if (!ack.ok()) return Fail(ack.status());
      PrintAck("batch", *ack);
      exit_code = WorseExit(exit_code, ExitForResponseCode(ack->code));
    }
  }

  if (args.Has("query") || args.Has("query-out")) {
    Result<serve::ResponseFrame> model =
        client.Call(serve::FrameType::kQuery, session);
    if (!model.ok()) return Fail(model.status());
    PrintAck("query", *model);
    exit_code = WorseExit(exit_code, ExitForResponseCode(model->code));
    if (model->code == serve::ResponseCode::kOk ||
        model->code == serve::ResponseCode::kDegraded) {
      if (args.Has("query-out")) {
        Status written = WriteFileAtomic(args.Get("query-out"), model->body);
        if (!written.ok()) return Fail(written);
      } else {
        std::fwrite(model->body.data(), 1, model->body.size(), stdout);
      }
    }
  }

  if (args.Has("close")) {
    Result<serve::ResponseFrame> closed =
        client.Call(serve::FrameType::kClose, session);
    if (!closed.ok()) return Fail(closed.status());
    PrintAck("close", *closed);
    exit_code = WorseExit(exit_code, ExitForResponseCode(closed->code));
  }
  return exit_code;
}

int Dispatch(const std::string& command, const Args& args) {
  if (command == "mine") return CommandMine(args);
  if (command == "check") return CommandCheck(args);
  if (command == "diff") return CommandDiff(args);
  if (command == "stats") return CommandStats(args);
  if (command == "perf") return CommandPerf(args);
  if (command == "explain") return CommandExplain(args);
  if (command == "variants") return CommandVariants(args);
  if (command == "noise") return CommandNoise(args);
  if (command == "report") return CommandReport(args);
  if (command == "monitor") return CommandMonitor(args);
  if (command == "synth") return CommandSynth(args);
  if (command == "simulate") return CommandSimulate(args);
  if (command == "patterns") return CommandPatterns(args);
  if (command == "convert") return CommandConvert(args);
  if (command == "top") return CommandTop(args);
  if (command == "serve") return CommandServe(args);
  if (command == "client") return CommandClient(args);
  PrintUsage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Arm PROCMINE_FAILPOINTS sites first so fault-injection tests exercise
  // the whole binary, ingestion included.
  failpoint::ActivateFromEnv();
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string command = argv[1];
  Args args = ParseArgs(argc, argv);
  if (!SetUpObservability(command, args)) return 2;
  int rc = Dispatch(command, args);
  return FlushObservability(args, rc);
}
