# Empty compiler generated dependencies file for fdl_test.
# This may be replaced when dependencies are built.
