file(REMOVE_RECURSE
  "CMakeFiles/fdl_test.dir/fdl_test.cc.o"
  "CMakeFiles/fdl_test.dir/fdl_test.cc.o.d"
  "fdl_test"
  "fdl_test.pdb"
  "fdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
