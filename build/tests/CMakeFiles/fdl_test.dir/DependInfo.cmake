
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fdl_test.cc" "tests/CMakeFiles/fdl_test.dir/fdl_test.cc.o" "gcc" "tests/CMakeFiles/fdl_test.dir/fdl_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_mine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_flowmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
