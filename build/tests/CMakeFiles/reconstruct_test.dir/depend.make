# Empty dependencies file for reconstruct_test.
# This may be replaced when dependencies are built.
