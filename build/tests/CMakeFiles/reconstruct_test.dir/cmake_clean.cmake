file(REMOVE_RECURSE
  "CMakeFiles/reconstruct_test.dir/reconstruct_test.cc.o"
  "CMakeFiles/reconstruct_test.dir/reconstruct_test.cc.o.d"
  "reconstruct_test"
  "reconstruct_test.pdb"
  "reconstruct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
