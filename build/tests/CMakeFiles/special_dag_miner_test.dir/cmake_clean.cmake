file(REMOVE_RECURSE
  "CMakeFiles/special_dag_miner_test.dir/special_dag_miner_test.cc.o"
  "CMakeFiles/special_dag_miner_test.dir/special_dag_miner_test.cc.o.d"
  "special_dag_miner_test"
  "special_dag_miner_test.pdb"
  "special_dag_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_dag_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
