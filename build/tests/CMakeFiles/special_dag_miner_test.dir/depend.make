# Empty dependencies file for special_dag_miner_test.
# This may be replaced when dependencies are built.
