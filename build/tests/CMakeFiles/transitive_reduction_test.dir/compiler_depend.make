# Empty compiler generated dependencies file for transitive_reduction_test.
# This may be replaced when dependencies are built.
