file(REMOVE_RECURSE
  "CMakeFiles/transitive_reduction_test.dir/transitive_reduction_test.cc.o"
  "CMakeFiles/transitive_reduction_test.dir/transitive_reduction_test.cc.o.d"
  "transitive_reduction_test"
  "transitive_reduction_test.pdb"
  "transitive_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transitive_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
