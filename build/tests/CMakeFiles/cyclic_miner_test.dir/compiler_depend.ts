# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cyclic_miner_test.
