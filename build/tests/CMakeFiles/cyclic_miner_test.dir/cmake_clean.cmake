file(REMOVE_RECURSE
  "CMakeFiles/cyclic_miner_test.dir/cyclic_miner_test.cc.o"
  "CMakeFiles/cyclic_miner_test.dir/cyclic_miner_test.cc.o.d"
  "cyclic_miner_test"
  "cyclic_miner_test.pdb"
  "cyclic_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
