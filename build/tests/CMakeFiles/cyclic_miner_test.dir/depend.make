# Empty dependencies file for cyclic_miner_test.
# This may be replaced when dependencies are built.
