# Empty dependencies file for binary_log_test.
# This may be replaced when dependencies are built.
