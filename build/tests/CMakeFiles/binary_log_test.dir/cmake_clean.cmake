file(REMOVE_RECURSE
  "CMakeFiles/binary_log_test.dir/binary_log_test.cc.o"
  "CMakeFiles/binary_log_test.dir/binary_log_test.cc.o.d"
  "binary_log_test"
  "binary_log_test.pdb"
  "binary_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
