file(REMOVE_RECURSE
  "CMakeFiles/condition_miner_test.dir/condition_miner_test.cc.o"
  "CMakeFiles/condition_miner_test.dir/condition_miner_test.cc.o.d"
  "condition_miner_test"
  "condition_miner_test.pdb"
  "condition_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condition_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
