# Empty compiler generated dependencies file for condition_miner_test.
# This may be replaced when dependencies are built.
