file(REMOVE_RECURSE
  "CMakeFiles/activity_dictionary_test.dir/activity_dictionary_test.cc.o"
  "CMakeFiles/activity_dictionary_test.dir/activity_dictionary_test.cc.o.d"
  "activity_dictionary_test"
  "activity_dictionary_test.pdb"
  "activity_dictionary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
