# Empty dependencies file for activity_dictionary_test.
# This may be replaced when dependencies are built.
