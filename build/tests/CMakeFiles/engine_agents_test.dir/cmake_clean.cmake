file(REMOVE_RECURSE
  "CMakeFiles/engine_agents_test.dir/engine_agents_test.cc.o"
  "CMakeFiles/engine_agents_test.dir/engine_agents_test.cc.o.d"
  "engine_agents_test"
  "engine_agents_test.pdb"
  "engine_agents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_agents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
