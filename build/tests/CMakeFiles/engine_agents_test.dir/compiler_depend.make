# Empty compiler generated dependencies file for engine_agents_test.
# This may be replaced when dependencies are built.
