# Empty dependencies file for compare_test.
# This may be replaced when dependencies are built.
