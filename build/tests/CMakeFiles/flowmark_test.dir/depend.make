# Empty dependencies file for flowmark_test.
# This may be replaced when dependencies are built.
