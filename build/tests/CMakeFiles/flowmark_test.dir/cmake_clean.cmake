file(REMOVE_RECURSE
  "CMakeFiles/flowmark_test.dir/flowmark_test.cc.o"
  "CMakeFiles/flowmark_test.dir/flowmark_test.cc.o.d"
  "flowmark_test"
  "flowmark_test.pdb"
  "flowmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
