# Empty dependencies file for performance_test.
# This may be replaced when dependencies are built.
