file(REMOVE_RECURSE
  "CMakeFiles/performance_test.dir/performance_test.cc.o"
  "CMakeFiles/performance_test.dir/performance_test.cc.o.d"
  "performance_test"
  "performance_test.pdb"
  "performance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
