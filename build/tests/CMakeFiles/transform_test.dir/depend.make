# Empty dependencies file for transform_test.
# This may be replaced when dependencies are built.
