file(REMOVE_RECURSE
  "CMakeFiles/transform_test.dir/transform_test.cc.o"
  "CMakeFiles/transform_test.dir/transform_test.cc.o.d"
  "transform_test"
  "transform_test.pdb"
  "transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
