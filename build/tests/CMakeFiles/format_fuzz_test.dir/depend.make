# Empty dependencies file for format_fuzz_test.
# This may be replaced when dependencies are built.
