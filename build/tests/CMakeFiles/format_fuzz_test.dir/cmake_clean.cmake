file(REMOVE_RECURSE
  "CMakeFiles/format_fuzz_test.dir/format_fuzz_test.cc.o"
  "CMakeFiles/format_fuzz_test.dir/format_fuzz_test.cc.o.d"
  "format_fuzz_test"
  "format_fuzz_test.pdb"
  "format_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
