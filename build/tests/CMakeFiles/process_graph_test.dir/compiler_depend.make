# Empty compiler generated dependencies file for process_graph_test.
# This may be replaced when dependencies are built.
