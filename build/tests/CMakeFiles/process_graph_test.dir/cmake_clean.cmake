file(REMOVE_RECURSE
  "CMakeFiles/process_graph_test.dir/process_graph_test.cc.o"
  "CMakeFiles/process_graph_test.dir/process_graph_test.cc.o.d"
  "process_graph_test"
  "process_graph_test.pdb"
  "process_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
