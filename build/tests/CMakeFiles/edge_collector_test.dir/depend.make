# Empty dependencies file for edge_collector_test.
# This may be replaced when dependencies are built.
