file(REMOVE_RECURSE
  "CMakeFiles/edge_collector_test.dir/edge_collector_test.cc.o"
  "CMakeFiles/edge_collector_test.dir/edge_collector_test.cc.o.d"
  "edge_collector_test"
  "edge_collector_test.pdb"
  "edge_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
