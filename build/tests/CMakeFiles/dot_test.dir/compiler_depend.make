# Empty compiler generated dependencies file for dot_test.
# This may be replaced when dependencies are built.
