file(REMOVE_RECURSE
  "CMakeFiles/relations_test.dir/relations_test.cc.o"
  "CMakeFiles/relations_test.dir/relations_test.cc.o.d"
  "relations_test"
  "relations_test.pdb"
  "relations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
