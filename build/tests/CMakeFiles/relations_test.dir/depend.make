# Empty dependencies file for relations_test.
# This may be replaced when dependencies are built.
