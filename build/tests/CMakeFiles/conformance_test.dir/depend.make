# Empty dependencies file for conformance_test.
# This may be replaced when dependencies are built.
