file(REMOVE_RECURSE
  "CMakeFiles/coding_test.dir/coding_test.cc.o"
  "CMakeFiles/coding_test.dir/coding_test.cc.o.d"
  "coding_test"
  "coding_test.pdb"
  "coding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
