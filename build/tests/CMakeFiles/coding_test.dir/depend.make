# Empty dependencies file for coding_test.
# This may be replaced when dependencies are built.
