# Empty dependencies file for process_definition_test.
# This may be replaced when dependencies are built.
