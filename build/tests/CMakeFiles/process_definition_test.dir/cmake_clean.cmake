file(REMOVE_RECURSE
  "CMakeFiles/process_definition_test.dir/process_definition_test.cc.o"
  "CMakeFiles/process_definition_test.dir/process_definition_test.cc.o.d"
  "process_definition_test"
  "process_definition_test.pdb"
  "process_definition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_definition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
