file(REMOVE_RECURSE
  "CMakeFiles/graph_algorithms_test.dir/graph_algorithms_test.cc.o"
  "CMakeFiles/graph_algorithms_test.dir/graph_algorithms_test.cc.o.d"
  "graph_algorithms_test"
  "graph_algorithms_test.pdb"
  "graph_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
