# Empty dependencies file for graph_algorithms_test.
# This may be replaced when dependencies are built.
