file(REMOVE_RECURSE
  "CMakeFiles/noise_estimate_test.dir/noise_estimate_test.cc.o"
  "CMakeFiles/noise_estimate_test.dir/noise_estimate_test.cc.o.d"
  "noise_estimate_test"
  "noise_estimate_test.pdb"
  "noise_estimate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
