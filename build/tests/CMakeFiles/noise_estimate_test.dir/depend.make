# Empty dependencies file for noise_estimate_test.
# This may be replaced when dependencies are built.
