# Empty compiler generated dependencies file for evaluation_test.
# This may be replaced when dependencies are built.
