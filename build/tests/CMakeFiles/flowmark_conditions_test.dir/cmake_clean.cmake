file(REMOVE_RECURSE
  "CMakeFiles/flowmark_conditions_test.dir/flowmark_conditions_test.cc.o"
  "CMakeFiles/flowmark_conditions_test.dir/flowmark_conditions_test.cc.o.d"
  "flowmark_conditions_test"
  "flowmark_conditions_test.pdb"
  "flowmark_conditions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowmark_conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
