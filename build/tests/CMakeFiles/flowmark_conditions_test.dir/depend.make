# Empty dependencies file for flowmark_conditions_test.
# This may be replaced when dependencies are built.
