# Empty dependencies file for noise_injector_test.
# This may be replaced when dependencies are built.
