file(REMOVE_RECURSE
  "CMakeFiles/noise_injector_test.dir/noise_injector_test.cc.o"
  "CMakeFiles/noise_injector_test.dir/noise_injector_test.cc.o.d"
  "noise_injector_test"
  "noise_injector_test.pdb"
  "noise_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
