# Empty compiler generated dependencies file for log_generator_test.
# This may be replaced when dependencies are built.
