file(REMOVE_RECURSE
  "CMakeFiles/ascii_test.dir/ascii_test.cc.o"
  "CMakeFiles/ascii_test.dir/ascii_test.cc.o.d"
  "ascii_test"
  "ascii_test.pdb"
  "ascii_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascii_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
