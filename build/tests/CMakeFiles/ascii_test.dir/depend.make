# Empty dependencies file for ascii_test.
# This may be replaced when dependencies are built.
