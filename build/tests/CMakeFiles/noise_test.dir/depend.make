# Empty dependencies file for noise_test.
# This may be replaced when dependencies are built.
