file(REMOVE_RECURSE
  "CMakeFiles/streaming_reader_test.dir/streaming_reader_test.cc.o"
  "CMakeFiles/streaming_reader_test.dir/streaming_reader_test.cc.o.d"
  "streaming_reader_test"
  "streaming_reader_test.pdb"
  "streaming_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
