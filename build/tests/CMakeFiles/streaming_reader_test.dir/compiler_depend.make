# Empty compiler generated dependencies file for streaming_reader_test.
# This may be replaced when dependencies are built.
