# Empty dependencies file for general_dag_miner_test.
# This may be replaced when dependencies are built.
