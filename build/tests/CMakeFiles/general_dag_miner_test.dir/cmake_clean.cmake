file(REMOVE_RECURSE
  "CMakeFiles/general_dag_miner_test.dir/general_dag_miner_test.cc.o"
  "CMakeFiles/general_dag_miner_test.dir/general_dag_miner_test.cc.o.d"
  "general_dag_miner_test"
  "general_dag_miner_test.pdb"
  "general_dag_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_dag_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
