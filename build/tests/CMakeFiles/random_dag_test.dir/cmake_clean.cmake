file(REMOVE_RECURSE
  "CMakeFiles/random_dag_test.dir/random_dag_test.cc.o"
  "CMakeFiles/random_dag_test.dir/random_dag_test.cc.o.d"
  "random_dag_test"
  "random_dag_test.pdb"
  "random_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
