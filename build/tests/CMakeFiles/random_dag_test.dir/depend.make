# Empty dependencies file for random_dag_test.
# This may be replaced when dependencies are built.
