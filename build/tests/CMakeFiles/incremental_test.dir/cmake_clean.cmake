file(REMOVE_RECURSE
  "CMakeFiles/incremental_test.dir/incremental_test.cc.o"
  "CMakeFiles/incremental_test.dir/incremental_test.cc.o.d"
  "incremental_test"
  "incremental_test.pdb"
  "incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
