# Empty dependencies file for sequential_patterns_test.
# This may be replaced when dependencies are built.
