file(REMOVE_RECURSE
  "CMakeFiles/sequential_patterns_test.dir/sequential_patterns_test.cc.o"
  "CMakeFiles/sequential_patterns_test.dir/sequential_patterns_test.cc.o.d"
  "sequential_patterns_test"
  "sequential_patterns_test.pdb"
  "sequential_patterns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
