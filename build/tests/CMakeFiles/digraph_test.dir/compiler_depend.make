# Empty compiler generated dependencies file for digraph_test.
# This may be replaced when dependencies are built.
