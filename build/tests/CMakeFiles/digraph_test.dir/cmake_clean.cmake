file(REMOVE_RECURSE
  "CMakeFiles/digraph_test.dir/digraph_test.cc.o"
  "CMakeFiles/digraph_test.dir/digraph_test.cc.o.d"
  "digraph_test"
  "digraph_test.pdb"
  "digraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
