file(REMOVE_RECURSE
  "CMakeFiles/condition_parser_test.dir/condition_parser_test.cc.o"
  "CMakeFiles/condition_parser_test.dir/condition_parser_test.cc.o.d"
  "condition_parser_test"
  "condition_parser_test.pdb"
  "condition_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condition_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
