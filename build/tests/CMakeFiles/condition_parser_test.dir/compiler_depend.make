# Empty compiler generated dependencies file for condition_parser_test.
# This may be replaced when dependencies are built.
