file(REMOVE_RECURSE
  "CMakeFiles/fsm_baseline_test.dir/fsm_baseline_test.cc.o"
  "CMakeFiles/fsm_baseline_test.dir/fsm_baseline_test.cc.o.d"
  "fsm_baseline_test"
  "fsm_baseline_test.pdb"
  "fsm_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
