# Empty dependencies file for fsm_baseline_test.
# This may be replaced when dependencies are built.
