# Empty dependencies file for xes_test.
# This may be replaced when dependencies are built.
