file(REMOVE_RECURSE
  "CMakeFiles/xes_test.dir/xes_test.cc.o"
  "CMakeFiles/xes_test.dir/xes_test.cc.o.d"
  "xes_test"
  "xes_test.pdb"
  "xes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
