# Empty compiler generated dependencies file for decision_tree_test.
# This may be replaced when dependencies are built.
