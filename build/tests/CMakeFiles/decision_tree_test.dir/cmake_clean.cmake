file(REMOVE_RECURSE
  "CMakeFiles/decision_tree_test.dir/decision_tree_test.cc.o"
  "CMakeFiles/decision_tree_test.dir/decision_tree_test.cc.o.d"
  "decision_tree_test"
  "decision_tree_test.pdb"
  "decision_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
