# Empty compiler generated dependencies file for structured_process_test.
# This may be replaced when dependencies are built.
