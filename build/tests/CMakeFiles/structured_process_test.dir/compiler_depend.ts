# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for structured_process_test.
