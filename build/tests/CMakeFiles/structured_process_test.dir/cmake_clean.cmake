file(REMOVE_RECURSE
  "CMakeFiles/structured_process_test.dir/structured_process_test.cc.o"
  "CMakeFiles/structured_process_test.dir/structured_process_test.cc.o.d"
  "structured_process_test"
  "structured_process_test.pdb"
  "structured_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
