# Empty dependencies file for condition_test.
# This may be replaced when dependencies are built.
