# Empty dependencies file for reader_writer_test.
# This may be replaced when dependencies are built.
