file(REMOVE_RECURSE
  "CMakeFiles/reader_writer_test.dir/reader_writer_test.cc.o"
  "CMakeFiles/reader_writer_test.dir/reader_writer_test.cc.o.d"
  "reader_writer_test"
  "reader_writer_test.pdb"
  "reader_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reader_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
