# Empty compiler generated dependencies file for log_stats_test.
# This may be replaced when dependencies are built.
