file(REMOVE_RECURSE
  "CMakeFiles/log_stats_test.dir/log_stats_test.cc.o"
  "CMakeFiles/log_stats_test.dir/log_stats_test.cc.o.d"
  "log_stats_test"
  "log_stats_test.pdb"
  "log_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
