# Empty dependencies file for bitset_test.
# This may be replaced when dependencies are built.
