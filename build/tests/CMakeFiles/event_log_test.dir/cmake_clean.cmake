file(REMOVE_RECURSE
  "CMakeFiles/event_log_test.dir/event_log_test.cc.o"
  "CMakeFiles/event_log_test.dir/event_log_test.cc.o.d"
  "event_log_test"
  "event_log_test.pdb"
  "event_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
