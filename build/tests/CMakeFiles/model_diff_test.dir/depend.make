# Empty dependencies file for model_diff_test.
# This may be replaced when dependencies are built.
