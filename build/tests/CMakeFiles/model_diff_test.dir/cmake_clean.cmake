file(REMOVE_RECURSE
  "CMakeFiles/model_diff_test.dir/model_diff_test.cc.o"
  "CMakeFiles/model_diff_test.dir/model_diff_test.cc.o.d"
  "model_diff_test"
  "model_diff_test.pdb"
  "model_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
