file(REMOVE_RECURSE
  "CMakeFiles/miner_test.dir/miner_test.cc.o"
  "CMakeFiles/miner_test.dir/miner_test.cc.o.d"
  "miner_test"
  "miner_test.pdb"
  "miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
