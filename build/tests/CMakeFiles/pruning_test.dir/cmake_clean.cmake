file(REMOVE_RECURSE
  "CMakeFiles/pruning_test.dir/pruning_test.cc.o"
  "CMakeFiles/pruning_test.dir/pruning_test.cc.o.d"
  "pruning_test"
  "pruning_test.pdb"
  "pruning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
