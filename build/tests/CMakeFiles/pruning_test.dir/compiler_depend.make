# Empty compiler generated dependencies file for pruning_test.
# This may be replaced when dependencies are built.
