# Empty dependencies file for bench_noise_sweep.
# This may be replaced when dependencies are built.
