file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_sweep.dir/bench_noise_sweep.cc.o"
  "CMakeFiles/bench_noise_sweep.dir/bench_noise_sweep.cc.o.d"
  "bench_noise_sweep"
  "bench_noise_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
