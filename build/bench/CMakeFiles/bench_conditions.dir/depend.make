# Empty dependencies file for bench_conditions.
# This may be replaced when dependencies are built.
