file(REMOVE_RECURSE
  "CMakeFiles/bench_conditions.dir/bench_conditions.cc.o"
  "CMakeFiles/bench_conditions.dir/bench_conditions.cc.o.d"
  "bench_conditions"
  "bench_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
