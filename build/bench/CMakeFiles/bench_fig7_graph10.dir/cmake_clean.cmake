file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_graph10.dir/bench_fig7_graph10.cc.o"
  "CMakeFiles/bench_fig7_graph10.dir/bench_fig7_graph10.cc.o.d"
  "bench_fig7_graph10"
  "bench_fig7_graph10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_graph10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
