# Empty compiler generated dependencies file for bench_fig7_graph10.
# This may be replaced when dependencies are built.
