# Empty compiler generated dependencies file for bench_baseline.
# This may be replaced when dependencies are built.
