file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_edges.dir/bench_table2_edges.cc.o"
  "CMakeFiles/bench_table2_edges.dir/bench_table2_edges.cc.o.d"
  "bench_table2_edges"
  "bench_table2_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
