file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_runtime.dir/bench_table1_runtime.cc.o"
  "CMakeFiles/bench_table1_runtime.dir/bench_table1_runtime.cc.o.d"
  "bench_table1_runtime"
  "bench_table1_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
