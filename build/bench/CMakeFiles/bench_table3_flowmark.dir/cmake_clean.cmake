file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_flowmark.dir/bench_table3_flowmark.cc.o"
  "CMakeFiles/bench_table3_flowmark.dir/bench_table3_flowmark.cc.o.d"
  "bench_table3_flowmark"
  "bench_table3_flowmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_flowmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
