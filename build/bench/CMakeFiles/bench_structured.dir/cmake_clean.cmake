file(REMOVE_RECURSE
  "CMakeFiles/bench_structured.dir/bench_structured.cc.o"
  "CMakeFiles/bench_structured.dir/bench_structured.cc.o.d"
  "bench_structured"
  "bench_structured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
