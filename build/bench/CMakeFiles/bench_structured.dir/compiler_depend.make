# Empty compiler generated dependencies file for bench_structured.
# This may be replaced when dependencies are built.
