# Empty compiler generated dependencies file for bench_incremental.
# This may be replaced when dependencies are built.
