# Empty compiler generated dependencies file for order_fulfillment.
# This may be replaced when dependencies are built.
