file(REMOVE_RECURSE
  "CMakeFiles/order_fulfillment.dir/order_fulfillment.cpp.o"
  "CMakeFiles/order_fulfillment.dir/order_fulfillment.cpp.o.d"
  "order_fulfillment"
  "order_fulfillment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_fulfillment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
