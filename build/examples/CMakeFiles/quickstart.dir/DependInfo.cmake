
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_mine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_flowmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
