# Empty dependencies file for insurance_claim.
# This may be replaced when dependencies are built.
