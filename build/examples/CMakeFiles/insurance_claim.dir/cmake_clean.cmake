file(REMOVE_RECURSE
  "CMakeFiles/insurance_claim.dir/insurance_claim.cpp.o"
  "CMakeFiles/insurance_claim.dir/insurance_claim.cpp.o.d"
  "insurance_claim"
  "insurance_claim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insurance_claim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
