file(REMOVE_RECURSE
  "CMakeFiles/noise_robustness.dir/noise_robustness.cpp.o"
  "CMakeFiles/noise_robustness.dir/noise_robustness.cpp.o.d"
  "noise_robustness"
  "noise_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
