# Empty compiler generated dependencies file for noise_robustness.
# This may be replaced when dependencies are built.
