# Empty compiler generated dependencies file for paper_examples.
# This may be replaced when dependencies are built.
