file(REMOVE_RECURSE
  "CMakeFiles/paper_examples.dir/paper_examples.cpp.o"
  "CMakeFiles/paper_examples.dir/paper_examples.cpp.o.d"
  "paper_examples"
  "paper_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
