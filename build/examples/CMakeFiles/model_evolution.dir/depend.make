# Empty dependencies file for model_evolution.
# This may be replaced when dependencies are built.
