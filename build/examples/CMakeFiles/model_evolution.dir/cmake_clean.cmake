file(REMOVE_RECURSE
  "CMakeFiles/model_evolution.dir/model_evolution.cpp.o"
  "CMakeFiles/model_evolution.dir/model_evolution.cpp.o.d"
  "model_evolution"
  "model_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
