
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/dataset.cc" "src/CMakeFiles/procmine_classify.dir/classify/dataset.cc.o" "gcc" "src/CMakeFiles/procmine_classify.dir/classify/dataset.cc.o.d"
  "/root/repo/src/classify/decision_tree.cc" "src/CMakeFiles/procmine_classify.dir/classify/decision_tree.cc.o" "gcc" "src/CMakeFiles/procmine_classify.dir/classify/decision_tree.cc.o.d"
  "/root/repo/src/classify/evaluation.cc" "src/CMakeFiles/procmine_classify.dir/classify/evaluation.cc.o" "gcc" "src/CMakeFiles/procmine_classify.dir/classify/evaluation.cc.o.d"
  "/root/repo/src/classify/rules.cc" "src/CMakeFiles/procmine_classify.dir/classify/rules.cc.o" "gcc" "src/CMakeFiles/procmine_classify.dir/classify/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
