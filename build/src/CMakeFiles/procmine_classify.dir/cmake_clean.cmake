file(REMOVE_RECURSE
  "CMakeFiles/procmine_classify.dir/classify/dataset.cc.o"
  "CMakeFiles/procmine_classify.dir/classify/dataset.cc.o.d"
  "CMakeFiles/procmine_classify.dir/classify/decision_tree.cc.o"
  "CMakeFiles/procmine_classify.dir/classify/decision_tree.cc.o.d"
  "CMakeFiles/procmine_classify.dir/classify/evaluation.cc.o"
  "CMakeFiles/procmine_classify.dir/classify/evaluation.cc.o.d"
  "CMakeFiles/procmine_classify.dir/classify/rules.cc.o"
  "CMakeFiles/procmine_classify.dir/classify/rules.cc.o.d"
  "libprocmine_classify.a"
  "libprocmine_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
