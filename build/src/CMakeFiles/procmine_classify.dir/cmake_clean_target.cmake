file(REMOVE_RECURSE
  "libprocmine_classify.a"
)
