# Empty dependencies file for procmine_classify.
# This may be replaced when dependencies are built.
