file(REMOVE_RECURSE
  "CMakeFiles/procmine_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/procmine_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/procmine_graph.dir/graph/ascii.cc.o"
  "CMakeFiles/procmine_graph.dir/graph/ascii.cc.o.d"
  "CMakeFiles/procmine_graph.dir/graph/compare.cc.o"
  "CMakeFiles/procmine_graph.dir/graph/compare.cc.o.d"
  "CMakeFiles/procmine_graph.dir/graph/digraph.cc.o"
  "CMakeFiles/procmine_graph.dir/graph/digraph.cc.o.d"
  "CMakeFiles/procmine_graph.dir/graph/dot.cc.o"
  "CMakeFiles/procmine_graph.dir/graph/dot.cc.o.d"
  "CMakeFiles/procmine_graph.dir/graph/transitive_reduction.cc.o"
  "CMakeFiles/procmine_graph.dir/graph/transitive_reduction.cc.o.d"
  "libprocmine_graph.a"
  "libprocmine_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
