file(REMOVE_RECURSE
  "libprocmine_graph.a"
)
