# Empty compiler generated dependencies file for procmine_graph.
# This may be replaced when dependencies are built.
