
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/procmine_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/procmine_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/ascii.cc" "src/CMakeFiles/procmine_graph.dir/graph/ascii.cc.o" "gcc" "src/CMakeFiles/procmine_graph.dir/graph/ascii.cc.o.d"
  "/root/repo/src/graph/compare.cc" "src/CMakeFiles/procmine_graph.dir/graph/compare.cc.o" "gcc" "src/CMakeFiles/procmine_graph.dir/graph/compare.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/procmine_graph.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/procmine_graph.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/CMakeFiles/procmine_graph.dir/graph/dot.cc.o" "gcc" "src/CMakeFiles/procmine_graph.dir/graph/dot.cc.o.d"
  "/root/repo/src/graph/transitive_reduction.cc" "src/CMakeFiles/procmine_graph.dir/graph/transitive_reduction.cc.o" "gcc" "src/CMakeFiles/procmine_graph.dir/graph/transitive_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
