file(REMOVE_RECURSE
  "libprocmine_synth.a"
)
