# Empty compiler generated dependencies file for procmine_synth.
# This may be replaced when dependencies are built.
