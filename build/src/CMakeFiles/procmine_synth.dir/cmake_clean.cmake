file(REMOVE_RECURSE
  "CMakeFiles/procmine_synth.dir/synth/log_generator.cc.o"
  "CMakeFiles/procmine_synth.dir/synth/log_generator.cc.o.d"
  "CMakeFiles/procmine_synth.dir/synth/noise_injector.cc.o"
  "CMakeFiles/procmine_synth.dir/synth/noise_injector.cc.o.d"
  "CMakeFiles/procmine_synth.dir/synth/random_dag.cc.o"
  "CMakeFiles/procmine_synth.dir/synth/random_dag.cc.o.d"
  "CMakeFiles/procmine_synth.dir/synth/structured_process.cc.o"
  "CMakeFiles/procmine_synth.dir/synth/structured_process.cc.o.d"
  "libprocmine_synth.a"
  "libprocmine_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
