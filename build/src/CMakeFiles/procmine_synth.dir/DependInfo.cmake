
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/log_generator.cc" "src/CMakeFiles/procmine_synth.dir/synth/log_generator.cc.o" "gcc" "src/CMakeFiles/procmine_synth.dir/synth/log_generator.cc.o.d"
  "/root/repo/src/synth/noise_injector.cc" "src/CMakeFiles/procmine_synth.dir/synth/noise_injector.cc.o" "gcc" "src/CMakeFiles/procmine_synth.dir/synth/noise_injector.cc.o.d"
  "/root/repo/src/synth/random_dag.cc" "src/CMakeFiles/procmine_synth.dir/synth/random_dag.cc.o" "gcc" "src/CMakeFiles/procmine_synth.dir/synth/random_dag.cc.o.d"
  "/root/repo/src/synth/structured_process.cc" "src/CMakeFiles/procmine_synth.dir/synth/structured_process.cc.o" "gcc" "src/CMakeFiles/procmine_synth.dir/synth/structured_process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
