file(REMOVE_RECURSE
  "libprocmine_flowmark.a"
)
