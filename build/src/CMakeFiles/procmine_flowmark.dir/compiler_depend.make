# Empty compiler generated dependencies file for procmine_flowmark.
# This may be replaced when dependencies are built.
