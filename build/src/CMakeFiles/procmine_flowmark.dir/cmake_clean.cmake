file(REMOVE_RECURSE
  "CMakeFiles/procmine_flowmark.dir/flowmark/processes.cc.o"
  "CMakeFiles/procmine_flowmark.dir/flowmark/processes.cc.o.d"
  "libprocmine_flowmark.a"
  "libprocmine_flowmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_flowmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
