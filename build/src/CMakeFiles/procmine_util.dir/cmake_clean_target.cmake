file(REMOVE_RECURSE
  "libprocmine_util.a"
)
