file(REMOVE_RECURSE
  "CMakeFiles/procmine_util.dir/util/coding.cc.o"
  "CMakeFiles/procmine_util.dir/util/coding.cc.o.d"
  "CMakeFiles/procmine_util.dir/util/crc32c.cc.o"
  "CMakeFiles/procmine_util.dir/util/crc32c.cc.o.d"
  "CMakeFiles/procmine_util.dir/util/logging.cc.o"
  "CMakeFiles/procmine_util.dir/util/logging.cc.o.d"
  "CMakeFiles/procmine_util.dir/util/random.cc.o"
  "CMakeFiles/procmine_util.dir/util/random.cc.o.d"
  "CMakeFiles/procmine_util.dir/util/status.cc.o"
  "CMakeFiles/procmine_util.dir/util/status.cc.o.d"
  "CMakeFiles/procmine_util.dir/util/strings.cc.o"
  "CMakeFiles/procmine_util.dir/util/strings.cc.o.d"
  "libprocmine_util.a"
  "libprocmine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
