# Empty compiler generated dependencies file for procmine_util.
# This may be replaced when dependencies are built.
