
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/activity_dictionary.cc" "src/CMakeFiles/procmine_log.dir/log/activity_dictionary.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/activity_dictionary.cc.o.d"
  "/root/repo/src/log/binary_log.cc" "src/CMakeFiles/procmine_log.dir/log/binary_log.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/binary_log.cc.o.d"
  "/root/repo/src/log/event_log.cc" "src/CMakeFiles/procmine_log.dir/log/event_log.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/event_log.cc.o.d"
  "/root/repo/src/log/execution.cc" "src/CMakeFiles/procmine_log.dir/log/execution.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/execution.cc.o.d"
  "/root/repo/src/log/reader.cc" "src/CMakeFiles/procmine_log.dir/log/reader.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/reader.cc.o.d"
  "/root/repo/src/log/stats.cc" "src/CMakeFiles/procmine_log.dir/log/stats.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/stats.cc.o.d"
  "/root/repo/src/log/streaming_reader.cc" "src/CMakeFiles/procmine_log.dir/log/streaming_reader.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/streaming_reader.cc.o.d"
  "/root/repo/src/log/transform.cc" "src/CMakeFiles/procmine_log.dir/log/transform.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/transform.cc.o.d"
  "/root/repo/src/log/validate.cc" "src/CMakeFiles/procmine_log.dir/log/validate.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/validate.cc.o.d"
  "/root/repo/src/log/writer.cc" "src/CMakeFiles/procmine_log.dir/log/writer.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/writer.cc.o.d"
  "/root/repo/src/log/xes.cc" "src/CMakeFiles/procmine_log.dir/log/xes.cc.o" "gcc" "src/CMakeFiles/procmine_log.dir/log/xes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
