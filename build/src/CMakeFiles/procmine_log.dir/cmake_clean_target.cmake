file(REMOVE_RECURSE
  "libprocmine_log.a"
)
