file(REMOVE_RECURSE
  "CMakeFiles/procmine_log.dir/log/activity_dictionary.cc.o"
  "CMakeFiles/procmine_log.dir/log/activity_dictionary.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/binary_log.cc.o"
  "CMakeFiles/procmine_log.dir/log/binary_log.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/event_log.cc.o"
  "CMakeFiles/procmine_log.dir/log/event_log.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/execution.cc.o"
  "CMakeFiles/procmine_log.dir/log/execution.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/reader.cc.o"
  "CMakeFiles/procmine_log.dir/log/reader.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/stats.cc.o"
  "CMakeFiles/procmine_log.dir/log/stats.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/streaming_reader.cc.o"
  "CMakeFiles/procmine_log.dir/log/streaming_reader.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/transform.cc.o"
  "CMakeFiles/procmine_log.dir/log/transform.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/validate.cc.o"
  "CMakeFiles/procmine_log.dir/log/validate.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/writer.cc.o"
  "CMakeFiles/procmine_log.dir/log/writer.cc.o.d"
  "CMakeFiles/procmine_log.dir/log/xes.cc.o"
  "CMakeFiles/procmine_log.dir/log/xes.cc.o.d"
  "libprocmine_log.a"
  "libprocmine_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
