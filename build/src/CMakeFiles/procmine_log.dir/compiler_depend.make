# Empty compiler generated dependencies file for procmine_log.
# This may be replaced when dependencies are built.
