
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/condition.cc" "src/CMakeFiles/procmine_workflow.dir/workflow/condition.cc.o" "gcc" "src/CMakeFiles/procmine_workflow.dir/workflow/condition.cc.o.d"
  "/root/repo/src/workflow/condition_parser.cc" "src/CMakeFiles/procmine_workflow.dir/workflow/condition_parser.cc.o" "gcc" "src/CMakeFiles/procmine_workflow.dir/workflow/condition_parser.cc.o.d"
  "/root/repo/src/workflow/engine.cc" "src/CMakeFiles/procmine_workflow.dir/workflow/engine.cc.o" "gcc" "src/CMakeFiles/procmine_workflow.dir/workflow/engine.cc.o.d"
  "/root/repo/src/workflow/fdl.cc" "src/CMakeFiles/procmine_workflow.dir/workflow/fdl.cc.o" "gcc" "src/CMakeFiles/procmine_workflow.dir/workflow/fdl.cc.o.d"
  "/root/repo/src/workflow/process_definition.cc" "src/CMakeFiles/procmine_workflow.dir/workflow/process_definition.cc.o" "gcc" "src/CMakeFiles/procmine_workflow.dir/workflow/process_definition.cc.o.d"
  "/root/repo/src/workflow/process_graph.cc" "src/CMakeFiles/procmine_workflow.dir/workflow/process_graph.cc.o" "gcc" "src/CMakeFiles/procmine_workflow.dir/workflow/process_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
