file(REMOVE_RECURSE
  "CMakeFiles/procmine_workflow.dir/workflow/condition.cc.o"
  "CMakeFiles/procmine_workflow.dir/workflow/condition.cc.o.d"
  "CMakeFiles/procmine_workflow.dir/workflow/condition_parser.cc.o"
  "CMakeFiles/procmine_workflow.dir/workflow/condition_parser.cc.o.d"
  "CMakeFiles/procmine_workflow.dir/workflow/engine.cc.o"
  "CMakeFiles/procmine_workflow.dir/workflow/engine.cc.o.d"
  "CMakeFiles/procmine_workflow.dir/workflow/fdl.cc.o"
  "CMakeFiles/procmine_workflow.dir/workflow/fdl.cc.o.d"
  "CMakeFiles/procmine_workflow.dir/workflow/process_definition.cc.o"
  "CMakeFiles/procmine_workflow.dir/workflow/process_definition.cc.o.d"
  "CMakeFiles/procmine_workflow.dir/workflow/process_graph.cc.o"
  "CMakeFiles/procmine_workflow.dir/workflow/process_graph.cc.o.d"
  "libprocmine_workflow.a"
  "libprocmine_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
