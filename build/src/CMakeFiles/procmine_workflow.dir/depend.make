# Empty dependencies file for procmine_workflow.
# This may be replaced when dependencies are built.
