file(REMOVE_RECURSE
  "libprocmine_workflow.a"
)
