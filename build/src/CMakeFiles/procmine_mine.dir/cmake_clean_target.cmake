file(REMOVE_RECURSE
  "libprocmine_mine.a"
)
