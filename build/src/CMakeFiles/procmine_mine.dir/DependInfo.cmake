
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mine/condition_miner.cc" "src/CMakeFiles/procmine_mine.dir/mine/condition_miner.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/condition_miner.cc.o.d"
  "/root/repo/src/mine/conformance.cc" "src/CMakeFiles/procmine_mine.dir/mine/conformance.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/conformance.cc.o.d"
  "/root/repo/src/mine/cyclic_miner.cc" "src/CMakeFiles/procmine_mine.dir/mine/cyclic_miner.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/cyclic_miner.cc.o.d"
  "/root/repo/src/mine/edge_collector.cc" "src/CMakeFiles/procmine_mine.dir/mine/edge_collector.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/edge_collector.cc.o.d"
  "/root/repo/src/mine/fsm_baseline.cc" "src/CMakeFiles/procmine_mine.dir/mine/fsm_baseline.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/fsm_baseline.cc.o.d"
  "/root/repo/src/mine/general_dag_miner.cc" "src/CMakeFiles/procmine_mine.dir/mine/general_dag_miner.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/general_dag_miner.cc.o.d"
  "/root/repo/src/mine/incremental.cc" "src/CMakeFiles/procmine_mine.dir/mine/incremental.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/incremental.cc.o.d"
  "/root/repo/src/mine/metrics.cc" "src/CMakeFiles/procmine_mine.dir/mine/metrics.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/metrics.cc.o.d"
  "/root/repo/src/mine/miner.cc" "src/CMakeFiles/procmine_mine.dir/mine/miner.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/miner.cc.o.d"
  "/root/repo/src/mine/model_diff.cc" "src/CMakeFiles/procmine_mine.dir/mine/model_diff.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/model_diff.cc.o.d"
  "/root/repo/src/mine/noise.cc" "src/CMakeFiles/procmine_mine.dir/mine/noise.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/noise.cc.o.d"
  "/root/repo/src/mine/performance.cc" "src/CMakeFiles/procmine_mine.dir/mine/performance.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/performance.cc.o.d"
  "/root/repo/src/mine/reconstruct.cc" "src/CMakeFiles/procmine_mine.dir/mine/reconstruct.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/reconstruct.cc.o.d"
  "/root/repo/src/mine/relations.cc" "src/CMakeFiles/procmine_mine.dir/mine/relations.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/relations.cc.o.d"
  "/root/repo/src/mine/sequential_patterns.cc" "src/CMakeFiles/procmine_mine.dir/mine/sequential_patterns.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/sequential_patterns.cc.o.d"
  "/root/repo/src/mine/special_dag_miner.cc" "src/CMakeFiles/procmine_mine.dir/mine/special_dag_miner.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/special_dag_miner.cc.o.d"
  "/root/repo/src/mine/trace.cc" "src/CMakeFiles/procmine_mine.dir/mine/trace.cc.o" "gcc" "src/CMakeFiles/procmine_mine.dir/mine/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/procmine_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/procmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
