# Empty dependencies file for procmine_mine.
# This may be replaced when dependencies are built.
