file(REMOVE_RECURSE
  "CMakeFiles/procmine_cli.dir/procmine_cli.cc.o"
  "CMakeFiles/procmine_cli.dir/procmine_cli.cc.o.d"
  "procmine"
  "procmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
