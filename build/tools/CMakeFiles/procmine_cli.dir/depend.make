# Empty dependencies file for procmine_cli.
# This may be replaced when dependencies are built.
